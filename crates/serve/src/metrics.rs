//! The serving layer's metrics registry: counters, gauges, and histograms
//! under dimensioned names, exposed as a text exposition page and embedded
//! in `stats` control responses.
//!
//! Names follow the Prometheus convention the wp-reactor runtime-metrics
//! design uses: `family{label="value",...}`. The registry is deliberately
//! schema-free — the server registers series as traffic creates them
//! (per-tenant, per-query, per-source) — and keys are `BTreeMap`-ordered so
//! the exposition page is stable across scrapes.
//!
//! Counters and gauges are shared `AtomicU64`s: hot paths (the ingest
//! threads, the pump loop) hold on to the `Arc` handle and bump it without
//! touching the registry lock again. Histograms wrap
//! [`saql_analytics::Histogram`] behind the registry lock — recording is a
//! lock + push, which the pump loop amortizes by recording per alert, not
//! per event.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use saql_analytics::Histogram;

/// A shared counter/gauge cell.
pub type Cell = Arc<AtomicU64>;

/// The registry. Cheap to clone handles out of; one per server.
#[derive(Default)]
pub struct Metrics {
    counters: Mutex<BTreeMap<String, Cell>>,
    gauges: Mutex<BTreeMap<String, Cell>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

/// Quantiles a histogram series expands to on the exposition page.
const HIST_QUANTILES: &[(&str, f64)] = &[("p50", 0.50), ("p95", 0.95), ("p99", 0.99)];

impl Metrics {
    pub fn new() -> Arc<Metrics> {
        Arc::new(Metrics::default())
    }

    /// The counter cell under `name`, created at zero on first use. Hold
    /// the handle on hot paths; `fetch_add` to bump.
    pub fn counter(&self, name: &str) -> Cell {
        let mut map = self.counters.lock().unwrap();
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// Bump a counter by `n` without keeping the handle.
    pub fn add(&self, name: &str, n: u64) {
        if n > 0 {
            self.counter(name).fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value of a counter (zero if never touched).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters
            .lock()
            .unwrap()
            .get(name)
            .map_or(0, |c| c.load(Ordering::Relaxed))
    }

    /// Set a gauge to an absolute value.
    pub fn set_gauge(&self, name: &str, value: u64) {
        let mut map = self.gauges.lock().unwrap();
        map.entry(name.to_string())
            .or_default()
            .store(value, Ordering::Relaxed);
    }

    /// Record one observation into a histogram series.
    pub fn record(&self, name: &str, value: u64) {
        let mut map = self.histograms.lock().unwrap();
        map.entry(name.to_string()).or_default().record(value);
    }

    /// Observation count of a histogram series (zero if absent).
    pub fn histogram_count(&self, name: &str) -> u64 {
        self.histograms
            .lock()
            .unwrap()
            .get(name)
            .map_or(0, Histogram::count)
    }

    /// Render the whole registry as a text exposition page: one
    /// `name value` line per counter/gauge, histograms expanded into
    /// `count`/`mean`/quantile/`max` sub-series via a `stat` label.
    pub fn render_text(&self) -> String {
        let mut out = String::with_capacity(1024);
        for (name, cell) in self.counters.lock().unwrap().iter() {
            push_line(&mut out, name, cell.load(Ordering::Relaxed).to_string());
        }
        for (name, cell) in self.gauges.lock().unwrap().iter() {
            push_line(&mut out, name, cell.load(Ordering::Relaxed).to_string());
        }
        for (name, hist) in self.histograms.lock().unwrap().iter() {
            push_line(
                &mut out,
                &with_label(name, "stat", "count"),
                hist.count().to_string(),
            );
            if let Some(mean) = hist.mean() {
                push_line(
                    &mut out,
                    &with_label(name, "stat", "mean"),
                    format!("{mean:.1}"),
                );
            }
            for &(stat, q) in HIST_QUANTILES {
                if let Some(v) = hist.quantile(q) {
                    push_line(&mut out, &with_label(name, "stat", stat), v.to_string());
                }
            }
            if let Some(max) = hist.max() {
                push_line(&mut out, &with_label(name, "stat", "max"), max.to_string());
            }
        }
        out
    }
}

fn push_line(out: &mut String, name: &str, value: String) {
    out.push_str(name);
    out.push(' ');
    out.push_str(&value);
    out.push('\n');
}

/// Add one `label="value"` pair to a series name, merging into an existing
/// `{...}` suffix when present.
fn with_label(name: &str, label: &str, value: &str) -> String {
    match name.strip_suffix('}') {
        Some(head) => format!("{head},{label}=\"{value}\"}}"),
        None => format!("{name}{{{label}=\"{value}\"}}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_render_sorted() {
        let m = Metrics::new();
        m.add("b_total", 2);
        m.add("a_total{tenant=\"t\"}", 1);
        m.set_gauge("lag_ms", 7);
        m.set_gauge("lag_ms", 9);
        let page = m.render_text();
        let lines: Vec<&str> = page.lines().collect();
        assert_eq!(
            lines,
            vec!["a_total{tenant=\"t\"} 1", "b_total 2", "lag_ms 9"]
        );
    }

    #[test]
    fn counter_handles_share_the_cell() {
        let m = Metrics::new();
        let h = m.counter("x_total");
        h.fetch_add(5, Ordering::Relaxed);
        assert_eq!(m.counter_value("x_total"), 5);
    }

    #[test]
    fn histograms_expand_with_stat_label() {
        let m = Metrics::new();
        for v in [1, 2, 3, 100] {
            m.record("lat_us{query=\"q\"}", v);
        }
        assert_eq!(m.histogram_count("lat_us{query=\"q\"}"), 4);
        let page = m.render_text();
        assert!(
            page.contains("lat_us{query=\"q\",stat=\"count\"} 4"),
            "{page}"
        );
        assert!(
            page.contains("lat_us{query=\"q\",stat=\"max\"} 100"),
            "{page}"
        );
    }
}
