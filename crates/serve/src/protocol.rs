//! The newline-delimited JSON wire protocol.
//!
//! Every connection opens with one **hello** line declaring its role:
//!
//! ```json
//! {"role":"ingest","tenant":"acme","source":"agent-7","lossless":true}
//! {"role":"control","tenant":"acme"}
//! {"role":"subscribe","tenant":"acme","query":"exfil"}
//! ```
//!
//! * **ingest** — every following line is one event in the
//!   `saql_model::json` schema; the server answers the hello with
//!   `{"ok":true}` and, after the client half-closes, a final summary line
//!   once the events are drained (and durably synced, when the server runs
//!   a durable store). `"order":"arrival"` trusts the connection's own
//!   ordering (no reordering, no late drops); the default is the
//!   watermarked merge under the server's lateness bound. `"lossless":true`
//!   blocks the *connection* (never the pump) on a full ingest buffer
//!   instead of shedding.
//! * **control** — request/response lines (`cmd`:
//!   `register`/`deregister`/`pause`/`resume`/`list`/`stats`/`checkpoint`/
//!   `shutdown`); query names are namespaced per tenant.
//! * **subscribe** — after an `{"ok":true}` ack the server streams the
//!   named query's alerts as JSONL (the `JsonLinesSink` shape) until the
//!   query is gone or the client hangs up.
//!
//! A first line starting with `GET ` is answered as a minimal HTTP text
//! exposition of the metrics registry instead (so `curl` works).
//!
//! Parsing reuses [`saql_model::json::parse_json`] — the workspace's one
//! hand-rolled JSON reader — and all responses are built through the same
//! escaper the event codec uses.

use saql_model::json::{parse_json, push_json_string, JsonValue};

/// Tenant used when a hello omits the field.
pub const DEFAULT_TENANT: &str = "default";

/// A connection's declared role.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Hello {
    Ingest {
        tenant: String,
        source: String,
        /// Trust the connection's own event order (no late drops).
        arrival_order: bool,
        /// Block the connection on a full ingest buffer instead of
        /// shedding.
        lossless: bool,
    },
    Control {
        tenant: String,
    },
    Subscribe {
        tenant: String,
        query: String,
    },
}

/// One control request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ControlCmd {
    Register { name: String, query: String },
    Deregister { name: String },
    Pause { name: String },
    Resume { name: String },
    List,
    Stats,
    Checkpoint,
    Shutdown,
}

fn field_str(v: &JsonValue, key: &str) -> Option<String> {
    v.get(key).and_then(JsonValue::as_str).map(str::to_string)
}

fn tenant_of(v: &JsonValue) -> Result<String, String> {
    let tenant = field_str(v, "tenant").unwrap_or_else(|| DEFAULT_TENANT.to_string());
    if tenant.is_empty() || tenant.contains('/') {
        return Err("tenant must be non-empty and must not contain `/`".into());
    }
    Ok(tenant)
}

/// Parse a hello line.
pub fn parse_hello(line: &str) -> Result<Hello, String> {
    let v = parse_json(line.trim()).map_err(|e| e.to_string())?;
    let role = field_str(&v, "role").ok_or("hello needs a string `role` field")?;
    let tenant = tenant_of(&v)?;
    match role.as_str() {
        "ingest" => Ok(Hello::Ingest {
            source: field_str(&v, "source").unwrap_or_else(|| "ingest".to_string()),
            arrival_order: matches!(v.get("order").and_then(JsonValue::as_str), Some("arrival")),
            lossless: v
                .get("lossless")
                .and_then(JsonValue::as_bool)
                .unwrap_or(false),
            tenant,
        }),
        "control" => Ok(Hello::Control { tenant }),
        "subscribe" => Ok(Hello::Subscribe {
            query: field_str(&v, "query").ok_or("subscribe hello needs `query`")?,
            tenant,
        }),
        other => Err(format!(
            "unknown role `{other}` (expected ingest, control, or subscribe)"
        )),
    }
}

/// Parse one control request line.
pub fn parse_control(line: &str) -> Result<ControlCmd, String> {
    let v = parse_json(line.trim()).map_err(|e| e.to_string())?;
    let cmd = field_str(&v, "cmd").ok_or("control request needs a string `cmd` field")?;
    let name = || field_str(&v, "name").ok_or_else(|| format!("`{cmd}` needs `name`"));
    match cmd.as_str() {
        "register" => Ok(ControlCmd::Register {
            name: name()?,
            query: field_str(&v, "query").ok_or("`register` needs `query` (SAQL text)")?,
        }),
        "deregister" => Ok(ControlCmd::Deregister { name: name()? }),
        "pause" => Ok(ControlCmd::Pause { name: name()? }),
        "resume" => Ok(ControlCmd::Resume { name: name()? }),
        "list" => Ok(ControlCmd::List),
        "stats" => Ok(ControlCmd::Stats),
        "checkpoint" => Ok(ControlCmd::Checkpoint),
        "shutdown" => Ok(ControlCmd::Shutdown),
        other => Err(format!("unknown command `{other}`")),
    }
}

// ---------------------------------------------------------------------
// Response building
// ---------------------------------------------------------------------

/// Incremental single-line JSON object writer (no nesting bookkeeping —
/// nested values go in through [`field_raw`](Self::field_raw)).
pub struct JsonObj {
    out: String,
    first: bool,
}

impl JsonObj {
    pub fn new() -> JsonObj {
        JsonObj {
            out: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, key: &str) {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        push_json_string(&mut self.out, key);
        self.out.push(':');
    }

    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.key(key);
        push_json_string(&mut self.out, value);
        self
    }

    pub fn u64(mut self, key: &str, value: u64) -> Self {
        self.key(key);
        self.out.push_str(&value.to_string());
        self
    }

    pub fn bool(mut self, key: &str, value: bool) -> Self {
        self.key(key);
        self.out.push_str(if value { "true" } else { "false" });
        self
    }

    /// A pre-rendered JSON value (array, object, …).
    pub fn raw(mut self, key: &str, value: &str) -> Self {
        self.key(key);
        self.out.push_str(value);
        self
    }

    /// Optional string: emits `null` when absent.
    pub fn opt_str(mut self, key: &str, value: Option<&str>) -> Self {
        self.key(key);
        match value {
            Some(s) => push_json_string(&mut self.out, s),
            None => self.out.push_str("null"),
        }
        self
    }

    pub fn finish(mut self) -> String {
        self.out.push('}');
        self.out
    }
}

impl Default for JsonObj {
    fn default() -> Self {
        JsonObj::new()
    }
}

/// Render a JSON array from pre-rendered element strings.
pub fn json_array(items: impl IntoIterator<Item = String>) -> String {
    let mut out = String::from("[");
    for (i, item) in items.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&item);
    }
    out.push(']');
    out
}

/// `{"ok":true}` — the plain ack.
pub fn ok_line() -> String {
    JsonObj::new().bool("ok", true).finish()
}

/// `{"ok":false,"error":...}`.
pub fn err_line(message: &str) -> String {
    JsonObj::new()
        .bool("ok", false)
        .str("error", message)
        .finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hello_roles_parse() {
        assert_eq!(
            parse_hello(r#"{"role":"ingest","tenant":"t1","source":"a","order":"arrival"}"#),
            Ok(Hello::Ingest {
                tenant: "t1".into(),
                source: "a".into(),
                arrival_order: true,
                lossless: false,
            })
        );
        assert_eq!(
            parse_hello(r#"{"role":"control"}"#),
            Ok(Hello::Control {
                tenant: DEFAULT_TENANT.into()
            })
        );
        assert_eq!(
            parse_hello(r#"{"role":"subscribe","tenant":"t","query":"q"}"#),
            Ok(Hello::Subscribe {
                tenant: "t".into(),
                query: "q".into()
            })
        );
        assert!(parse_hello(r#"{"role":"mystery"}"#).is_err());
        assert!(parse_hello(r#"{"role":"control","tenant":"a/b"}"#).is_err());
        assert!(parse_hello("not json").is_err());
    }

    #[test]
    fn control_commands_parse() {
        assert_eq!(
            parse_control(r#"{"cmd":"register","name":"q","query":"agg ..."}"#),
            Ok(ControlCmd::Register {
                name: "q".into(),
                query: "agg ...".into()
            })
        );
        assert_eq!(parse_control(r#"{"cmd":"list"}"#), Ok(ControlCmd::List));
        assert!(parse_control(r#"{"cmd":"pause"}"#).is_err(), "missing name");
        assert!(parse_control(r#"{"cmd":"evaporate"}"#).is_err());
    }

    #[test]
    fn json_obj_builds_escaped_lines() {
        let line = JsonObj::new()
            .bool("ok", false)
            .str("error", "bad \"thing\"\n")
            .u64("at", 7)
            .opt_str("extra", None)
            .finish();
        assert_eq!(
            line,
            r#"{"ok":false,"error":"bad \"thing\"\n","at":7,"extra":null}"#
        );
        // Round-trips through the model parser.
        assert!(saql_model::json::parse_json(&line).is_ok());
    }
}
