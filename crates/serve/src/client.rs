//! A thin line-protocol client for `saql serve`, used by the `saql client`
//! subcommand and the integration tests. One connection per call; blocking
//! std networking, no retries — the server's summaries and error lines are
//! returned verbatim so callers can make their own decisions.

use std::fmt;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::path::Path;

use saql_model::json::{parse_json, JsonValue};

use crate::protocol::JsonObj;

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Socket / file IO.
    Io(io::Error),
    /// The server answered with `{"ok":false,...}` or closed early.
    Server(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Server(msg) => write!(f, "server: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// What an [`ingest_file`] call pushed, plus the server's final summary.
#[derive(Debug)]
pub struct IngestReport {
    /// Non-blank lines sent.
    pub sent: u64,
    /// The server's final summary line, verbatim JSON
    /// (`events`/`decode_errors`/`shed_quota`/`shed_buffer`/`durable`/...).
    pub summary: String,
}

impl IngestReport {
    /// A `u64` field from the summary line, when present.
    pub fn field(&self, key: &str) -> Option<u64> {
        parse_json(&self.summary)
            .ok()?
            .get(key)
            .and_then(JsonValue::as_u64)
    }

    /// The server acknowledged the events as durably stored.
    pub fn durable(&self) -> bool {
        parse_json(&self.summary)
            .ok()
            .and_then(|v| v.get("durable").and_then(JsonValue::as_bool))
            .unwrap_or(false)
    }
}

fn connect(addr: &str) -> Result<(BufReader<TcpStream>, TcpStream), ClientError> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true).ok();
    let reader = BufReader::new(stream.try_clone()?);
    Ok((reader, stream))
}

fn send_line(stream: &mut TcpStream, line: &str) -> Result<(), ClientError> {
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")?;
    Ok(())
}

fn recv_line(reader: &mut BufReader<TcpStream>) -> Result<String, ClientError> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Err(ClientError::Server("connection closed".into()));
    }
    Ok(line.trim_end().to_string())
}

/// Bail on a `{"ok":false,"error":...}` line, pass anything else through.
fn expect_ok(line: String) -> Result<String, ClientError> {
    if let Ok(v) = parse_json(&line) {
        if v.get("ok").and_then(JsonValue::as_bool) == Some(false) {
            let msg = v
                .get("error")
                .and_then(JsonValue::as_str)
                .unwrap_or("request refused")
                .to_string();
            return Err(ClientError::Server(msg));
        }
    }
    Ok(line)
}

fn ingest_hello(tenant: &str, source: &str, lossless: bool, arrival_order: bool) -> String {
    let mut hello = JsonObj::new()
        .str("role", "ingest")
        .str("tenant", tenant)
        .str("source", source);
    if lossless {
        hello = hello.bool("lossless", true);
    }
    if arrival_order {
        hello = hello.str("order", "arrival");
    }
    hello.finish()
}

/// Stream a JSONL event file (or any reader) into the server, half-close,
/// and wait for the drain acknowledgement.
pub fn ingest_reader(
    addr: &str,
    tenant: &str,
    source: &str,
    input: &mut dyn Read,
    lossless: bool,
    arrival_order: bool,
) -> Result<IngestReport, ClientError> {
    let (mut reader, mut stream) = connect(addr)?;
    send_line(
        &mut stream,
        &ingest_hello(tenant, source, lossless, arrival_order),
    )?;
    expect_ok(recv_line(&mut reader)?)?;

    let mut sent = 0u64;
    for line in BufReader::new(input).lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        send_line(&mut stream, line.trim())?;
        sent += 1;
    }
    // Half-close: EOF to the server, response channel stays open.
    stream.shutdown(Shutdown::Write)?;
    let summary = expect_ok(recv_line(&mut reader)?)?;
    Ok(IngestReport { sent, summary })
}

/// [`ingest_reader`] over a file path.
pub fn ingest_file(
    addr: &str,
    tenant: &str,
    source: &str,
    path: &Path,
    lossless: bool,
    arrival_order: bool,
) -> Result<IngestReport, ClientError> {
    let mut file = std::fs::File::open(path)?;
    ingest_reader(addr, tenant, source, &mut file, lossless, arrival_order)
}

/// Subscribe to a query and copy its alert JSONL to `out` until the server
/// ends the stream (or `max` alerts arrived). Returns the alert count.
pub fn tail_alerts(
    addr: &str,
    tenant: &str,
    query: &str,
    out: &mut dyn Write,
    max: Option<u64>,
) -> Result<u64, ClientError> {
    let (mut reader, mut stream) = connect(addr)?;
    let hello = JsonObj::new()
        .str("role", "subscribe")
        .str("tenant", tenant)
        .str("query", query)
        .finish();
    send_line(&mut stream, &hello)?;
    expect_ok(recv_line(&mut reader)?)?;
    let mut count = 0u64;
    let mut line = String::new();
    loop {
        if max.is_some_and(|m| count >= m) {
            break;
        }
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        out.write_all(line.as_bytes())?;
        count += 1;
    }
    Ok(count)
}

/// Send one control command line (already-formed JSON) and return the
/// response line.
pub fn ctl(addr: &str, tenant: &str, command: &str) -> Result<String, ClientError> {
    let (mut reader, mut stream) = connect(addr)?;
    let hello = JsonObj::new()
        .str("role", "control")
        .str("tenant", tenant)
        .finish();
    send_line(&mut stream, &hello)?;
    expect_ok(recv_line(&mut reader)?)?;
    send_line(&mut stream, command.trim())?;
    recv_line(&mut reader)
}
