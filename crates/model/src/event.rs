//! System events: ⟨subject, operation, object⟩ (SVO) records.

use std::fmt;
use std::sync::Arc;

use crate::attr::AttrValue;
use crate::attr_ref::{AttrId, AttrRef};
use crate::entity::{Entity, EntityType, ProcessInfo};
use crate::time::Timestamp;

/// Globally unique, monotonically increasing event id assigned by the
/// collection layer.
pub type EventId = u64;

/// The operation of an SVO event.
///
/// Events are categorized into three families by their object: *process
/// events* (`start`, `end`, `execute`), *file events* (`read`, `write`,
/// `delete`, `rename`), and *network events* (`read`/`write` on a connection,
/// plus `connect`/`accept` for the handshake itself).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Operation {
    /// Subject spawns the object process.
    Start,
    /// Subject terminates the object process.
    End,
    /// Subject loads/executes the object (file as program image).
    Execute,
    /// Subject reads from the object (file contents or inbound network data).
    Read,
    /// Subject writes to the object (file contents or outbound network data).
    Write,
    /// Subject deletes the object file.
    Delete,
    /// Subject renames the object file.
    Rename,
    /// Subject initiates the object connection.
    Connect,
    /// Subject accepts the object connection.
    Accept,
    /// A query emitted a detection alert (pipeline-internal derived
    /// events: the subject is the emitting query, the object carries the
    /// alert's group). Collectors never produce this operation; the
    /// alert→event adapter does.
    Alert,
}

impl Operation {
    /// All operations, in a stable order (used by the codec and by tests).
    /// `Alert` is appended last so the positional codec tags of the nine
    /// collector operations are unchanged on the wire.
    pub const ALL: [Operation; 10] = [
        Operation::Start,
        Operation::End,
        Operation::Execute,
        Operation::Read,
        Operation::Write,
        Operation::Delete,
        Operation::Rename,
        Operation::Connect,
        Operation::Accept,
        Operation::Alert,
    ];

    /// SAQL keyword for the operation.
    pub fn keyword(&self) -> &'static str {
        match self {
            Operation::Start => "start",
            Operation::End => "end",
            Operation::Execute => "execute",
            Operation::Read => "read",
            Operation::Write => "write",
            Operation::Delete => "delete",
            Operation::Rename => "rename",
            Operation::Connect => "connect",
            Operation::Accept => "accept",
            Operation::Alert => "alert",
        }
    }

    /// Parse a SAQL operation keyword.
    pub fn from_keyword(kw: &str) -> Option<Self> {
        Operation::ALL.iter().copied().find(|op| op.keyword() == kw)
    }

    /// Whether this operation is legal for the given object entity type.
    /// The collector and the semantic checker both enforce this.
    pub fn valid_for(&self, object: EntityType) -> bool {
        match object {
            EntityType::Process => {
                matches!(
                    self,
                    Operation::Start | Operation::End | Operation::Execute | Operation::Alert
                )
            }
            EntityType::File => matches!(
                self,
                Operation::Read
                    | Operation::Write
                    | Operation::Delete
                    | Operation::Rename
                    | Operation::Execute
            ),
            EntityType::Network => matches!(
                self,
                Operation::Read | Operation::Write | Operation::Connect | Operation::Accept
            ),
        }
    }
}

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

/// A system event in SVO form, as collected from a monitoring agent.
///
/// Events are immutable once produced; the stream layer passes them around as
/// `Arc<Event>` so that concurrent queries sharing a stream (the
/// master–dependent-query scheme) never copy event payloads.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Unique id assigned at collection time (monotone per stream).
    pub id: EventId,
    /// Host that produced the event (the paper's `agentid`).
    pub agent_id: Arc<str>,
    /// Event time in milliseconds since the epoch of the trace.
    pub ts: Timestamp,
    /// The acting process.
    pub subject: ProcessInfo,
    /// What the subject did.
    pub op: Operation,
    /// The entity acted upon.
    pub object: Entity,
    /// Data amount in bytes (network send/recv and file I/O sizes); zero for
    /// events without a data payload (process start etc.).
    pub amount: u64,
}

impl Event {
    /// Resolve an *event-level* attribute (`evt.amount`, `evt.agentid`,
    /// `evt.ts`, `evt.op`, `evt.id`).
    pub fn attr(&self, name: &str) -> Option<AttrValue> {
        match name {
            "amount" => Some(AttrValue::Int(self.amount as i64)),
            "agentid" | "agent_id" | "host" => Some(AttrValue::Str(self.agent_id.clone())),
            "ts" | "time" | "starttime" => Some(AttrValue::Int(self.ts.as_millis() as i64)),
            "op" | "operation" => Some(AttrValue::str(self.op.keyword())),
            "id" => Some(AttrValue::Int(self.id as i64)),
            _ => None,
        }
    }

    /// Borrowed view of an *event-level* attribute by resolved id — the
    /// per-event counterpart of [`Event::attr`]: no string compare, no
    /// clone. Entity-level ids yield `None` (ask the subject/object).
    pub fn attr_ref(&self, id: AttrId) -> Option<AttrRef<'_>> {
        match id {
            AttrId::Amount => Some(AttrRef::Int(self.amount as i64)),
            AttrId::AgentId => Some(AttrRef::Str(&self.agent_id)),
            AttrId::Ts => Some(AttrRef::Int(self.ts.as_millis() as i64)),
            AttrId::Op => Some(AttrRef::Str(self.op.keyword())),
            AttrId::EventId => Some(AttrRef::Int(self.id as i64)),
            _ => None,
        }
    }

    /// Owned event-level attribute by resolved id. Strings clone only the
    /// shared `Arc<str>` handle (except `op`, whose keyword is static).
    pub fn attr_value(&self, id: AttrId) -> Option<AttrValue> {
        match id {
            AttrId::Amount => Some(AttrValue::Int(self.amount as i64)),
            AttrId::AgentId => Some(AttrValue::Str(self.agent_id.clone())),
            AttrId::Ts => Some(AttrValue::Int(self.ts.as_millis() as i64)),
            AttrId::Op => Some(AttrValue::str(self.op.keyword())),
            AttrId::EventId => Some(AttrValue::Int(self.id as i64)),
            _ => None,
        }
    }

    /// The event family by object type: `file`, `process` or `network`.
    pub fn family(&self) -> EntityType {
        self.object.entity_type()
    }

    /// Dense code for the event's *shape* — the `(operation, object type)`
    /// pair that master-query admission and pattern shape tests key on.
    /// Codes are `< Operation::ALL.len() * 3 = 30`, so a set of shapes fits
    /// a `u64` bitmask (see `shape_mask` users in the engine).
    pub fn shape_code(&self) -> u8 {
        shape_code(self.op, self.object.entity_type())
    }
}

/// The shape code for an `(operation, object type)` pair (see
/// [`Event::shape_code`]).
pub fn shape_code(op: Operation, object: EntityType) -> u8 {
    op as u8 * 3 + object as u8
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{} @{}ms {}] proc({}, pid={}) {} {}",
            self.id,
            self.ts.as_millis(),
            self.agent_id,
            self.subject.exe_name,
            self.subject.pid,
            self.op,
            self.object
        )?;
        if self.amount > 0 {
            write!(f, " amount={}", self.amount)?;
        }
        Ok(())
    }
}

/// Fluent builder for [`Event`], used by tests, examples and the collector.
///
/// ```
/// use saql_model::event::EventBuilder;
/// use saql_model::{Operation, ProcessInfo};
///
/// let evt = EventBuilder::new(1, "host-1", 1_000)
///     .subject(ProcessInfo::new(100, "cmd.exe", "alice"))
///     .starts_process(ProcessInfo::new(101, "osql.exe", "alice"))
///     .build();
/// assert_eq!(evt.op, Operation::Start);
/// ```
#[derive(Debug, Clone)]
pub struct EventBuilder {
    id: EventId,
    agent_id: Arc<str>,
    ts: Timestamp,
    subject: Option<ProcessInfo>,
    op: Option<Operation>,
    object: Option<Entity>,
    amount: u64,
}

impl EventBuilder {
    /// Start building an event with the mandatory spatial/temporal tags.
    pub fn new(id: EventId, agent_id: impl AsRef<str>, ts_millis: u64) -> Self {
        EventBuilder {
            id,
            agent_id: Arc::from(agent_id.as_ref()),
            ts: Timestamp::from_millis(ts_millis),
            subject: None,
            op: None,
            object: None,
            amount: 0,
        }
    }

    /// Set the acting process.
    pub fn subject(mut self, p: ProcessInfo) -> Self {
        self.subject = Some(p);
        self
    }

    /// Set operation and object explicitly.
    pub fn action(mut self, op: Operation, object: Entity) -> Self {
        self.op = Some(op);
        self.object = Some(object);
        self
    }

    /// Shortcut: the subject starts a child process.
    pub fn starts_process(self, child: ProcessInfo) -> Self {
        self.action(Operation::Start, Entity::Process(child))
    }

    /// Shortcut: the subject reads a file.
    pub fn reads_file(self, file: crate::entity::FileInfo) -> Self {
        self.action(Operation::Read, Entity::File(file))
    }

    /// Shortcut: the subject writes a file.
    pub fn writes_file(self, file: crate::entity::FileInfo) -> Self {
        self.action(Operation::Write, Entity::File(file))
    }

    /// Shortcut: the subject sends data over a connection.
    pub fn sends(self, conn: crate::entity::NetworkInfo) -> Self {
        self.action(Operation::Write, Entity::Network(conn))
    }

    /// Shortcut: the subject receives data over a connection.
    pub fn receives(self, conn: crate::entity::NetworkInfo) -> Self {
        self.action(Operation::Read, Entity::Network(conn))
    }

    /// Set the data amount in bytes.
    pub fn amount(mut self, bytes: u64) -> Self {
        self.amount = bytes;
        self
    }

    /// Finish the event.
    ///
    /// # Panics
    /// Panics if subject, operation, or object is missing, or if the
    /// operation is invalid for the object type — builders are only used by
    /// code we control (tests/collector), so malformed construction is a bug.
    pub fn build(self) -> Event {
        let subject = self.subject.expect("event subject not set");
        let op = self.op.expect("event operation not set");
        let object = self.object.expect("event object not set");
        assert!(
            op.valid_for(object.entity_type()),
            "operation {op} is invalid for {} objects",
            object.entity_type()
        );
        Event {
            id: self.id,
            agent_id: self.agent_id,
            ts: self.ts,
            subject,
            op,
            object,
            amount: self.amount,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entity::{FileInfo, NetworkInfo};

    fn sample() -> Event {
        EventBuilder::new(7, "db-server", 123_456)
            .subject(ProcessInfo::new(501, "sqlservr.exe", "svc-sql"))
            .writes_file(FileInfo::new("backup1.dmp"))
            .amount(1 << 20)
            .build()
    }

    #[test]
    fn event_attr_resolution() {
        let e = sample();
        assert_eq!(e.attr("amount"), Some(AttrValue::Int(1 << 20)));
        assert_eq!(e.attr("agentid"), Some(AttrValue::str("db-server")));
        assert_eq!(e.attr("ts"), Some(AttrValue::Int(123_456)));
        assert_eq!(e.attr("op"), Some(AttrValue::str("write")));
        assert_eq!(e.attr("nope"), None);
    }

    #[test]
    fn event_family_is_object_type() {
        assert_eq!(sample().family(), EntityType::File);
    }

    #[test]
    fn operation_keyword_roundtrip() {
        for op in Operation::ALL {
            assert_eq!(Operation::from_keyword(op.keyword()), Some(op));
        }
        assert_eq!(Operation::from_keyword("levitate"), None);
    }

    #[test]
    fn operation_validity_matrix() {
        assert!(Operation::Start.valid_for(EntityType::Process));
        assert!(!Operation::Start.valid_for(EntityType::File));
        assert!(Operation::Read.valid_for(EntityType::Network));
        assert!(!Operation::Delete.valid_for(EntityType::Network));
        assert!(Operation::Execute.valid_for(EntityType::File));
        assert!(!Operation::Connect.valid_for(EntityType::Process));
    }

    #[test]
    #[should_panic(expected = "invalid for")]
    fn builder_rejects_invalid_op_object_combo() {
        EventBuilder::new(1, "h", 0)
            .subject(ProcessInfo::new(1, "a", "u"))
            .action(
                Operation::Delete,
                Entity::Network(NetworkInfo::new("a", 1, "b", 2, "tcp")),
            )
            .build();
    }

    #[test]
    fn display_includes_amount_only_when_nonzero() {
        let shown = sample().to_string();
        assert!(shown.contains("amount=1048576"), "{shown}");
        let e = EventBuilder::new(1, "h", 0)
            .subject(ProcessInfo::new(1, "cmd.exe", "u"))
            .starts_process(ProcessInfo::new(2, "osql.exe", "u"))
            .build();
        assert!(!e.to_string().contains("amount"), "{e}");
    }
}
