//! Dynamically typed attribute values.
//!
//! SAQL queries reference event and entity attributes by name
//! (`evt.amount`, `p1.exe_name`, `i1.dstip`, `agentid`). The engine resolves
//! such references against events at runtime, producing [`AttrValue`]s that
//! flow through constraint checks, aggregations, and alert expressions.

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// A dynamically typed attribute value.
///
/// Strings are reference counted (`Arc<str>`) because the same value (an
/// executable name, a host id) is typically shared by many events; cloning an
/// `AttrValue` is always cheap.
#[derive(Debug, Clone)]
pub enum AttrValue {
    /// Signed integer (pids, ports, counts).
    Int(i64),
    /// Floating point (aggregate results, amounts in derived units).
    Float(f64),
    /// String (names, ips, host ids).
    Str(Arc<str>),
    /// Boolean (alert sub-expressions, cluster flags).
    Bool(bool),
}

impl AttrValue {
    /// Build a string value from anything string-like.
    pub fn str(s: impl AsRef<str>) -> Self {
        AttrValue::Str(Arc::from(s.as_ref()))
    }

    /// Numeric view of the value, if it has one.
    ///
    /// Integers widen to `f64`; booleans map to 0.0 / 1.0 (convenient for
    /// counting alert conditions); strings have no numeric view.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            AttrValue::Int(i) => Some(*i as f64),
            AttrValue::Float(f) => Some(*f),
            AttrValue::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            AttrValue::Str(_) => None,
        }
    }

    /// Integer view of the value, if exact.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            AttrValue::Int(i) => Some(*i),
            AttrValue::Float(f) if f.fract() == 0.0 => Some(*f as i64),
            _ => None,
        }
    }

    /// String view of the value (strings only).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            AttrValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view. Numbers are truthy when non-zero, strings when non-empty.
    pub fn truthy(&self) -> bool {
        match self {
            AttrValue::Bool(b) => *b,
            AttrValue::Int(i) => *i != 0,
            AttrValue::Float(f) => *f != 0.0,
            AttrValue::Str(s) => !s.is_empty(),
        }
    }

    /// Type name used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            AttrValue::Int(_) => "int",
            AttrValue::Float(_) => "float",
            AttrValue::Str(_) => "string",
            AttrValue::Bool(_) => "bool",
        }
    }

    /// SAQL equality: numeric types compare by value (`1 == 1.0`), strings
    /// and booleans compare within their own type. Cross-kind comparisons
    /// (string vs number) are `false`, never an error — monitoring data is
    /// heterogeneous and queries should not abort mid-stream.
    pub fn loose_eq(&self, other: &AttrValue) -> bool {
        match (self, other) {
            (AttrValue::Str(a), AttrValue::Str(b)) => a == b,
            (AttrValue::Bool(a), AttrValue::Bool(b)) => a == b,
            _ => match (self.as_f64(), other.as_f64()) {
                (Some(a), Some(b)) => a == b,
                _ => false,
            },
        }
    }

    /// SAQL ordering: numbers order numerically, strings lexicographically.
    /// Returns `None` for incomparable kinds.
    pub fn loose_cmp(&self, other: &AttrValue) -> Option<Ordering> {
        match (self, other) {
            (AttrValue::Str(a), AttrValue::Str(b)) => Some(a.as_ref().cmp(b.as_ref())),
            _ => {
                let (a, b) = (self.as_f64()?, other.as_f64()?);
                a.partial_cmp(&b)
            }
        }
    }
}

impl PartialEq for AttrValue {
    fn eq(&self, other: &Self) -> bool {
        self.loose_eq(other)
    }
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrValue::Int(i) => write!(f, "{i}"),
            AttrValue::Float(x) => {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    write!(f, "{:.1}", x)
                } else {
                    write!(f, "{x}")
                }
            }
            AttrValue::Str(s) => write!(f, "{s}"),
            AttrValue::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::Int(v)
    }
}

impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::Int(v as i64)
    }
}

impl From<u32> for AttrValue {
    fn from(v: u32) -> Self {
        AttrValue::Int(v as i64)
    }
}

impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::Float(v)
    }
}

impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::Bool(v)
    }
}

impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::str(v)
    }
}

impl From<Arc<str>> for AttrValue {
    fn from(v: Arc<str>) -> Self {
        AttrValue::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_loose_eq_crosses_int_float() {
        assert_eq!(AttrValue::Int(3), AttrValue::Float(3.0));
        assert_ne!(AttrValue::Int(3), AttrValue::Float(3.5));
    }

    #[test]
    fn string_and_number_never_equal() {
        assert_ne!(AttrValue::str("3"), AttrValue::Int(3));
    }

    #[test]
    fn bool_numeric_view() {
        assert_eq!(AttrValue::Bool(true).as_f64(), Some(1.0));
        assert_eq!(AttrValue::Bool(false).as_f64(), Some(0.0));
    }

    #[test]
    fn as_i64_rejects_fractional() {
        assert_eq!(AttrValue::Float(2.0).as_i64(), Some(2));
        assert_eq!(AttrValue::Float(2.5).as_i64(), None);
    }

    #[test]
    fn cmp_orders_numbers_and_strings() {
        use std::cmp::Ordering::*;
        assert_eq!(
            AttrValue::Int(1).loose_cmp(&AttrValue::Float(2.0)),
            Some(Less)
        );
        assert_eq!(
            AttrValue::str("b").loose_cmp(&AttrValue::str("a")),
            Some(Greater)
        );
        assert_eq!(AttrValue::str("a").loose_cmp(&AttrValue::Int(1)), None);
    }

    #[test]
    fn truthiness() {
        assert!(AttrValue::Int(1).truthy());
        assert!(!AttrValue::Int(0).truthy());
        assert!(AttrValue::str("x").truthy());
        assert!(!AttrValue::str("").truthy());
        assert!(!AttrValue::Float(0.0).truthy());
    }

    #[test]
    fn display_formats() {
        assert_eq!(AttrValue::Int(7).to_string(), "7");
        assert_eq!(AttrValue::Float(7.0).to_string(), "7.0");
        assert_eq!(AttrValue::str("x").to_string(), "x");
        assert_eq!(AttrValue::Bool(true).to_string(), "true");
    }
}
