//! String interner.
//!
//! System monitoring streams are dominated by a small vocabulary of strings —
//! executable names, host ids, file-path prefixes. The collector interns these
//! so every event shares one `Arc<str>` per distinct string instead of
//! carrying its own allocation, which both shrinks resident memory and makes
//! equality checks in the matcher pointer-comparison-fast in the common case.

use std::collections::HashMap;
use std::sync::Arc;

/// An interned string handle: a dense index into the interner's table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(pub u32);

/// A string interner mapping strings to dense [`Symbol`]s and shared
/// `Arc<str>` values.
///
/// Not internally synchronized: each producer thread owns its interner (the
/// collector creates one per agent), or callers wrap it in a lock.
#[derive(Debug, Default)]
pub struct Interner {
    map: HashMap<Arc<str>, Symbol>,
    strings: Vec<Arc<str>>,
}

impl Interner {
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a string, returning its symbol. Idempotent.
    pub fn intern(&mut self, s: &str) -> Symbol {
        if let Some(&sym) = self.map.get(s) {
            return sym;
        }
        let arc: Arc<str> = Arc::from(s);
        let sym = Symbol(self.strings.len() as u32);
        self.strings.push(arc.clone());
        self.map.insert(arc, sym);
        sym
    }

    /// Intern and return the shared `Arc<str>` (what event fields store).
    pub fn get_or_intern_arc(&mut self, s: &str) -> Arc<str> {
        let sym = self.intern(s);
        self.strings[sym.0 as usize].clone()
    }

    /// Resolve a symbol back to its string.
    pub fn resolve(&self, sym: Symbol) -> Option<&str> {
        self.strings.get(sym.0 as usize).map(|a| a.as_ref())
    }

    /// Look up a string without interning it.
    pub fn lookup(&self, s: &str) -> Option<Symbol> {
        self.map.get(s).copied()
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("cmd.exe");
        let b = i.intern("cmd.exe");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn symbols_are_dense_and_resolvable() {
        let mut i = Interner::new();
        let a = i.intern("a");
        let b = i.intern("b");
        assert_eq!(a, Symbol(0));
        assert_eq!(b, Symbol(1));
        assert_eq!(i.resolve(a), Some("a"));
        assert_eq!(i.resolve(b), Some("b"));
        assert_eq!(i.resolve(Symbol(99)), None);
    }

    #[test]
    fn arc_is_shared() {
        let mut i = Interner::new();
        let x = i.get_or_intern_arc("host-1");
        let y = i.get_or_intern_arc("host-1");
        assert!(Arc::ptr_eq(&x, &y));
    }

    #[test]
    fn lookup_does_not_intern() {
        let mut i = Interner::new();
        assert_eq!(i.lookup("ghost"), None);
        assert!(i.is_empty());
        i.intern("ghost");
        assert_eq!(i.lookup("ghost"), Some(Symbol(0)));
    }
}
