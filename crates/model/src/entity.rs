//! System entities: processes, files, and network connections.
//!
//! Following the convention established by the system-monitoring literature
//! (BackTracker, SAQL, AIQL), subjects are always processes, and objects can
//! be files, processes, or network connections.

use std::fmt;
use std::sync::Arc;

use crate::attr::AttrValue;
use crate::attr_ref::{AttrId, AttrRef};

/// The kind of a system entity, as written in SAQL queries
/// (`proc`, `file`, `ip`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EntityType {
    Process,
    File,
    Network,
}

impl EntityType {
    /// The SAQL keyword for this entity type.
    pub fn keyword(&self) -> &'static str {
        match self {
            EntityType::Process => "proc",
            EntityType::File => "file",
            EntityType::Network => "ip",
        }
    }

    /// The *default attribute* used by the context-aware syntax shortcuts of
    /// the SAQL `return` clause: `p1` means `p1.exe_name`, `f1` means
    /// `f1.name`, `i1` means `i1.dstip`.
    pub fn default_attr(&self) -> &'static str {
        match self {
            EntityType::Process => "exe_name",
            EntityType::File => "name",
            EntityType::Network => "dstip",
        }
    }

    /// Parse a SAQL entity-type keyword.
    pub fn from_keyword(kw: &str) -> Option<Self> {
        match kw {
            "proc" | "process" => Some(EntityType::Process),
            "file" => Some(EntityType::File),
            "ip" | "conn" | "network" => Some(EntityType::Network),
            _ => None,
        }
    }
}

impl fmt::Display for EntityType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

/// A process entity. Processes are the only possible event subjects.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ProcessInfo {
    /// OS process id.
    pub pid: u32,
    /// Executable name (e.g. `C:\Windows\System32\cmd.exe` or `cmd.exe`).
    pub exe_name: Arc<str>,
    /// User account the process runs as.
    pub user: Arc<str>,
}

impl ProcessInfo {
    pub fn new(pid: u32, exe_name: impl AsRef<str>, user: impl AsRef<str>) -> Self {
        ProcessInfo {
            pid,
            exe_name: Arc::from(exe_name.as_ref()),
            user: Arc::from(user.as_ref()),
        }
    }

    /// Resolve a named attribute of this process.
    pub fn attr(&self, name: &str) -> Option<AttrValue> {
        match name {
            "pid" => Some(AttrValue::Int(self.pid as i64)),
            "exe_name" | "name" => Some(AttrValue::Str(self.exe_name.clone())),
            "user" => Some(AttrValue::Str(self.user.clone())),
            _ => None,
        }
    }

    /// Borrowed attribute view by resolved id (no string compare, no
    /// clone). Non-process ids yield `None`.
    pub fn attr_ref(&self, id: AttrId) -> Option<AttrRef<'_>> {
        match id {
            AttrId::Pid => Some(AttrRef::Int(self.pid as i64)),
            AttrId::ExeName => Some(AttrRef::Str(&self.exe_name)),
            AttrId::User => Some(AttrRef::Str(&self.user)),
            _ => None,
        }
    }

    /// Owned attribute by resolved id (strings clone the `Arc` handle).
    pub fn attr_value(&self, id: AttrId) -> Option<AttrValue> {
        match id {
            AttrId::Pid => Some(AttrValue::Int(self.pid as i64)),
            AttrId::ExeName => Some(AttrValue::Str(self.exe_name.clone())),
            AttrId::User => Some(AttrValue::Str(self.user.clone())),
            _ => None,
        }
    }

    /// A stable identity key for joins: two event patterns binding the same
    /// process variable must observe the same pid + executable.
    pub fn identity(&self) -> (u32, &str) {
        (self.pid, &self.exe_name)
    }
}

/// A file entity.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FileInfo {
    /// Absolute path or file name.
    pub name: Arc<str>,
}

impl FileInfo {
    pub fn new(name: impl AsRef<str>) -> Self {
        FileInfo {
            name: Arc::from(name.as_ref()),
        }
    }

    /// Resolve a named attribute of this file.
    pub fn attr(&self, name: &str) -> Option<AttrValue> {
        match name {
            "name" | "path" => Some(AttrValue::Str(self.name.clone())),
            _ => None,
        }
    }

    /// Borrowed attribute view by resolved id.
    pub fn attr_ref(&self, id: AttrId) -> Option<AttrRef<'_>> {
        match id {
            AttrId::FileName => Some(AttrRef::Str(&self.name)),
            _ => None,
        }
    }

    /// Owned attribute by resolved id (strings clone the `Arc` handle).
    pub fn attr_value(&self, id: AttrId) -> Option<AttrValue> {
        match id {
            AttrId::FileName => Some(AttrValue::Str(self.name.clone())),
            _ => None,
        }
    }
}

/// A network-connection entity (the `ip` entity type in SAQL).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct NetworkInfo {
    pub src_ip: Arc<str>,
    pub src_port: u16,
    pub dst_ip: Arc<str>,
    pub dst_port: u16,
    /// Transport protocol, e.g. `tcp` / `udp`.
    pub protocol: Arc<str>,
}

impl NetworkInfo {
    pub fn new(
        src_ip: impl AsRef<str>,
        src_port: u16,
        dst_ip: impl AsRef<str>,
        dst_port: u16,
        protocol: impl AsRef<str>,
    ) -> Self {
        NetworkInfo {
            src_ip: Arc::from(src_ip.as_ref()),
            src_port,
            dst_ip: Arc::from(dst_ip.as_ref()),
            dst_port,
            protocol: Arc::from(protocol.as_ref()),
        }
    }

    /// Resolve a named attribute of this connection.
    pub fn attr(&self, name: &str) -> Option<AttrValue> {
        match name {
            "srcip" | "src_ip" => Some(AttrValue::Str(self.src_ip.clone())),
            "srcport" | "src_port" => Some(AttrValue::Int(self.src_port as i64)),
            "dstip" | "dst_ip" => Some(AttrValue::Str(self.dst_ip.clone())),
            "dstport" | "dst_port" => Some(AttrValue::Int(self.dst_port as i64)),
            "protocol" | "proto" => Some(AttrValue::Str(self.protocol.clone())),
            _ => None,
        }
    }

    /// Borrowed attribute view by resolved id.
    pub fn attr_ref(&self, id: AttrId) -> Option<AttrRef<'_>> {
        match id {
            AttrId::SrcIp => Some(AttrRef::Str(&self.src_ip)),
            AttrId::SrcPort => Some(AttrRef::Int(self.src_port as i64)),
            AttrId::DstIp => Some(AttrRef::Str(&self.dst_ip)),
            AttrId::DstPort => Some(AttrRef::Int(self.dst_port as i64)),
            AttrId::Protocol => Some(AttrRef::Str(&self.protocol)),
            _ => None,
        }
    }

    /// Owned attribute by resolved id (strings clone the `Arc` handle).
    pub fn attr_value(&self, id: AttrId) -> Option<AttrValue> {
        match id {
            AttrId::SrcIp => Some(AttrValue::Str(self.src_ip.clone())),
            AttrId::SrcPort => Some(AttrValue::Int(self.src_port as i64)),
            AttrId::DstIp => Some(AttrValue::Str(self.dst_ip.clone())),
            AttrId::DstPort => Some(AttrValue::Int(self.dst_port as i64)),
            AttrId::Protocol => Some(AttrValue::Str(self.protocol.clone())),
            _ => None,
        }
    }
}

/// A system entity: the object of an SVO event (subjects are always
/// [`ProcessInfo`]).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Entity {
    Process(ProcessInfo),
    File(FileInfo),
    Network(NetworkInfo),
}

impl Entity {
    /// The type tag of this entity.
    pub fn entity_type(&self) -> EntityType {
        match self {
            Entity::Process(_) => EntityType::Process,
            Entity::File(_) => EntityType::File,
            Entity::Network(_) => EntityType::Network,
        }
    }

    /// Resolve a named attribute.
    pub fn attr(&self, name: &str) -> Option<AttrValue> {
        match self {
            Entity::Process(p) => p.attr(name),
            Entity::File(f) => f.attr(name),
            Entity::Network(n) => n.attr(name),
        }
    }

    /// Borrowed attribute view by resolved id. Ids of a different entity
    /// kind yield `None`, matching [`Entity::attr`] on unknown names.
    pub fn attr_ref(&self, id: AttrId) -> Option<AttrRef<'_>> {
        match self {
            Entity::Process(p) => p.attr_ref(id),
            Entity::File(f) => f.attr_ref(id),
            Entity::Network(n) => n.attr_ref(id),
        }
    }

    /// Owned attribute by resolved id (strings clone the `Arc` handle).
    pub fn attr_value(&self, id: AttrId) -> Option<AttrValue> {
        match self {
            Entity::Process(p) => p.attr_value(id),
            Entity::File(f) => f.attr_value(id),
            Entity::Network(n) => n.attr_value(id),
        }
    }

    /// The default attribute value of the entity (see
    /// [`EntityType::default_attr`]). Always present.
    pub fn default_attr_value(&self) -> AttrValue {
        self.attr(self.entity_type().default_attr())
            .expect("default attribute is always defined")
    }
}

impl fmt::Display for Entity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Entity::Process(p) => write!(f, "proc({}, pid={})", p.exe_name, p.pid),
            Entity::File(x) => write!(f, "file({})", x.name),
            Entity::Network(n) => write!(
                f,
                "ip({}:{} -> {}:{}/{})",
                n.src_ip, n.src_port, n.dst_ip, n.dst_port, n.protocol
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_attrs_match_paper_shortcuts() {
        assert_eq!(EntityType::Process.default_attr(), "exe_name");
        assert_eq!(EntityType::File.default_attr(), "name");
        assert_eq!(EntityType::Network.default_attr(), "dstip");
    }

    #[test]
    fn process_attr_resolution() {
        let p = ProcessInfo::new(42, "cmd.exe", "alice");
        assert_eq!(p.attr("pid"), Some(AttrValue::Int(42)));
        assert_eq!(p.attr("exe_name"), Some(AttrValue::str("cmd.exe")));
        assert_eq!(p.attr("user"), Some(AttrValue::str("alice")));
        assert_eq!(p.attr("bogus"), None);
    }

    #[test]
    fn network_attr_resolution() {
        let n = NetworkInfo::new("10.0.0.1", 55000, "10.0.0.129", 443, "tcp");
        assert_eq!(n.attr("dstip"), Some(AttrValue::str("10.0.0.129")));
        assert_eq!(n.attr("dstport"), Some(AttrValue::Int(443)));
        assert_eq!(n.attr("srcport"), Some(AttrValue::Int(55000)));
        assert_eq!(n.attr("proto"), Some(AttrValue::str("tcp")));
    }

    #[test]
    fn entity_default_attr_value() {
        let e = Entity::File(FileInfo::new("/tmp/backup1.dmp"));
        assert_eq!(e.default_attr_value(), AttrValue::str("/tmp/backup1.dmp"));
        let e = Entity::Network(NetworkInfo::new("a", 1, "b", 2, "tcp"));
        assert_eq!(e.default_attr_value(), AttrValue::str("b"));
    }

    #[test]
    fn keyword_roundtrip() {
        for t in [EntityType::Process, EntityType::File, EntityType::Network] {
            assert_eq!(EntityType::from_keyword(t.keyword()), Some(t));
        }
        assert_eq!(EntityType::from_keyword("widget"), None);
    }
}
