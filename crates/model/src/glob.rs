//! SQL-`LIKE` style wildcard matching for SAQL attribute patterns.
//!
//! SAQL entity declarations constrain attributes with patterns such as
//! `proc p1["%cmd.exe"]`, where `%` matches any (possibly empty) substring
//! and `_` matches exactly one character. Matching is case-insensitive for
//! ASCII, mirroring Windows path semantics in the paper's queries
//! (`%osql.exe` must match `C:\...\OSQL.EXE`).

/// Returns `true` if `text` matches the `LIKE`-style `pattern`.
///
/// * `%` — any run of characters (including empty);
/// * `_` — exactly one character;
/// * everything else matches itself, ASCII case-insensitively.
///
/// The implementation is the classic two-pointer algorithm with backtracking
/// to the most recent `%`; it runs in O(|text| · |pattern|) worst case and
/// O(|text|) for patterns with a single `%`, and allocates nothing.
pub fn like_match(pattern: &str, text: &str) -> bool {
    let p: Vec<char> = pattern.chars().collect();
    let t: Vec<char> = text.chars().collect();

    let (mut pi, mut ti) = (0usize, 0usize);
    // Position of the last `%` seen in the pattern, and the text position the
    // star is currently assumed to cover up to.
    let mut star: Option<usize> = None;
    let mut star_ti = 0usize;

    while ti < t.len() {
        if pi < p.len() && (p[pi] == '_' || eq_ci(p[pi], t[ti])) {
            pi += 1;
            ti += 1;
        } else if pi < p.len() && p[pi] == '%' {
            star = Some(pi);
            star_ti = ti;
            pi += 1;
        } else if let Some(sp) = star {
            // Grow the region the star covers by one character and retry.
            pi = sp + 1;
            star_ti += 1;
            ti = star_ti;
        } else {
            return false;
        }
    }
    // Remaining pattern must be all `%`.
    p[pi..].iter().all(|&c| c == '%')
}

#[inline]
fn eq_ci(a: char, b: char) -> bool {
    a == b || a.eq_ignore_ascii_case(&b)
}

/// Returns `true` if the pattern contains no wildcard characters, i.e. it is
/// an exact (case-insensitive) string constraint. The query compiler uses
/// this to pick a cheaper comparison.
pub fn is_exact(pattern: &str) -> bool {
    !pattern.contains(['%', '_'])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_match_case_insensitive() {
        assert!(like_match("cmd.exe", "cmd.exe"));
        assert!(like_match("cmd.exe", "CMD.EXE"));
        assert!(!like_match("cmd.exe", "cmd.ex"));
    }

    #[test]
    fn leading_percent_matches_path_prefix() {
        assert!(like_match("%cmd.exe", r"C:\Windows\System32\cmd.exe"));
        assert!(like_match("%osql.exe", "OSQL.EXE"));
        assert!(!like_match("%cmd.exe", r"C:\Windows\cmd.exe.bak"));
    }

    #[test]
    fn trailing_and_inner_percent() {
        assert!(like_match("backup%", "backup1.dmp"));
        assert!(like_match("%backup%.dmp", "db-backup1.dmp"));
        assert!(like_match("a%b%c", "aXXbYYc"));
        assert!(!like_match("a%b%c", "aXXcYYb"));
    }

    #[test]
    fn underscore_matches_single_char() {
        assert!(like_match("backup_.dmp", "backup1.dmp"));
        assert!(!like_match("backup_.dmp", "backup12.dmp"));
        assert!(!like_match("backup_.dmp", "backup.dmp"));
    }

    #[test]
    fn percent_matches_empty() {
        assert!(like_match("%", ""));
        assert!(like_match("%%", "abc"));
        assert!(like_match("a%", "a"));
    }

    #[test]
    fn empty_pattern_only_matches_empty_text() {
        assert!(like_match("", ""));
        assert!(!like_match("", "x"));
    }

    #[test]
    fn backtracking_stress() {
        // Pattern that forces the star to re-cover repeatedly.
        assert!(like_match("%a%a%a%", "bbabbabba"));
        assert!(!like_match("%a%a%a%a%", "bbabbabba"));
    }

    #[test]
    fn exactness_detection() {
        assert!(is_exact("cmd.exe"));
        assert!(!is_exact("%cmd.exe"));
        assert!(!is_exact("cmd_exe"));
    }
}
