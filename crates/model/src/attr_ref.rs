//! Resolved attribute identifiers and borrowed attribute access.
//!
//! [`crate::Event::attr`] and [`crate::Entity::attr`] resolve attribute
//! *names* per call: a string match against every spelling, and a cloned
//! [`AttrValue`] even when the caller only wants to compare. On the
//! per-event hot path of a stream engine both costs are pure waste — the
//! set of attribute names is fixed at deployment time.
//!
//! This module is the deploy-time half of the fix:
//!
//! * [`AttrId`] — a dense identifier for every attribute the data model
//!   exposes, resolved **once** when a query is compiled;
//! * [`AttrTable`] — the name → id resolution table, built on the existing
//!   [`Interner`] (one symbol per accepted spelling, a dense symbol-indexed
//!   id table per namespace);
//! * [`AttrRef`] — a borrowed view of an attribute value
//!   (`attr_ref(&self, AttrId) -> Option<AttrRef<'_>>` on events and
//!   entities), so constraint checks compare in place without cloning.
//!
//! Owned values are still available where they are genuinely needed (group
//! keys, alert rows) through `attr_value(AttrId)`, which clones only the
//! shared `Arc<str>` handle, never string bytes.

use std::cmp::Ordering;
use std::sync::OnceLock;

use crate::attr::AttrValue;
use crate::interner::Interner;

/// A resolved attribute identifier.
///
/// Ids are namespaced by what they can be asked of: event-level ids resolve
/// against [`crate::Event`], entity-level ids against the matching
/// [`crate::Entity`] variant (asking a file for `Pid` yields `None`, the
/// same as asking it for an unknown name).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AttrId {
    // --- event-level (`evt.amount`, `evt.agentid`, ...) ---
    /// Data amount in bytes (`amount`).
    Amount,
    /// Producing host (`agentid` / `agent_id` / `host`).
    AgentId,
    /// Event time in ms (`ts` / `time` / `starttime`).
    Ts,
    /// Operation keyword (`op` / `operation`).
    Op,
    /// Collection-time event id (`id`).
    EventId,
    // --- process entities ---
    /// OS process id (`pid`).
    Pid,
    /// Executable name (`exe_name` / `name` on processes).
    ExeName,
    /// Account the process runs as (`user`).
    User,
    // --- file entities ---
    /// File path (`name` / `path` on files).
    FileName,
    // --- network entities ---
    /// Source ip (`srcip` / `src_ip`).
    SrcIp,
    /// Source port (`srcport` / `src_port`).
    SrcPort,
    /// Destination ip (`dstip` / `dst_ip`).
    DstIp,
    /// Destination port (`dstport` / `dst_port`).
    DstPort,
    /// Transport protocol (`protocol` / `proto`).
    Protocol,
}

impl AttrId {
    /// Canonical spelling, as the explain output prints it.
    pub fn name(&self) -> &'static str {
        match self {
            AttrId::Amount => "amount",
            AttrId::AgentId => "agentid",
            AttrId::Ts => "ts",
            AttrId::Op => "op",
            AttrId::EventId => "id",
            AttrId::Pid => "pid",
            AttrId::ExeName => "exe_name",
            AttrId::User => "user",
            AttrId::FileName => "name",
            AttrId::SrcIp => "srcip",
            AttrId::SrcPort => "srcport",
            AttrId::DstIp => "dstip",
            AttrId::DstPort => "dstport",
            AttrId::Protocol => "protocol",
        }
    }
}

/// The namespace an attribute name is resolved in. Names overlap across
/// namespaces (`name` is `exe_name` on a process but the path on a file),
/// so resolution is always `(namespace, name) → id`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttrNs {
    /// Event-level attributes (`evt.amount`, global constraints).
    Event,
    Process,
    File,
    Network,
}

impl AttrNs {
    /// The namespace of an entity type.
    pub fn of_entity(etype: crate::entity::EntityType) -> AttrNs {
        match etype {
            crate::entity::EntityType::Process => AttrNs::Process,
            crate::entity::EntityType::File => AttrNs::File,
            crate::entity::EntityType::Network => AttrNs::Network,
        }
    }
}

/// Every accepted spelling, with its namespace and id — the single source
/// of truth the table is built from (mirrors the legacy string matchers in
/// `event.rs` / `entity.rs`).
const SPELLINGS: &[(AttrNs, &str, AttrId)] = &[
    (AttrNs::Event, "amount", AttrId::Amount),
    (AttrNs::Event, "agentid", AttrId::AgentId),
    (AttrNs::Event, "agent_id", AttrId::AgentId),
    (AttrNs::Event, "host", AttrId::AgentId),
    (AttrNs::Event, "ts", AttrId::Ts),
    (AttrNs::Event, "time", AttrId::Ts),
    (AttrNs::Event, "starttime", AttrId::Ts),
    (AttrNs::Event, "op", AttrId::Op),
    (AttrNs::Event, "operation", AttrId::Op),
    (AttrNs::Event, "id", AttrId::EventId),
    (AttrNs::Process, "pid", AttrId::Pid),
    (AttrNs::Process, "exe_name", AttrId::ExeName),
    (AttrNs::Process, "name", AttrId::ExeName),
    (AttrNs::Process, "user", AttrId::User),
    (AttrNs::File, "name", AttrId::FileName),
    (AttrNs::File, "path", AttrId::FileName),
    (AttrNs::Network, "srcip", AttrId::SrcIp),
    (AttrNs::Network, "src_ip", AttrId::SrcIp),
    (AttrNs::Network, "srcport", AttrId::SrcPort),
    (AttrNs::Network, "src_port", AttrId::SrcPort),
    (AttrNs::Network, "dstip", AttrId::DstIp),
    (AttrNs::Network, "dst_ip", AttrId::DstIp),
    (AttrNs::Network, "dstport", AttrId::DstPort),
    (AttrNs::Network, "dst_port", AttrId::DstPort),
    (AttrNs::Network, "protocol", AttrId::Protocol),
    (AttrNs::Network, "proto", AttrId::Protocol),
];

/// The deploy-time name → [`AttrId`] resolution table.
///
/// Built on the [`Interner`]: every accepted spelling is interned once, and
/// each namespace keeps a dense symbol-indexed id column. Resolving a name
/// is one interner lookup plus one array index — and it happens only at
/// query-compile time; the per-event path deals exclusively in ids.
#[derive(Debug)]
pub struct AttrTable {
    interner: Interner,
    /// `columns[ns][symbol]` → id, dense by symbol index.
    columns: [Vec<Option<AttrId>>; 4],
}

impl AttrTable {
    fn column(ns: AttrNs) -> usize {
        match ns {
            AttrNs::Event => 0,
            AttrNs::Process => 1,
            AttrNs::File => 2,
            AttrNs::Network => 3,
        }
    }

    /// Build the table (interning every accepted spelling).
    pub fn new() -> AttrTable {
        let mut interner = Interner::new();
        let mut columns: [Vec<Option<AttrId>>; 4] = Default::default();
        for &(ns, spelling, id) in SPELLINGS {
            let sym = interner.intern(spelling);
            let col = &mut columns[Self::column(ns)];
            if col.len() <= sym.0 as usize {
                col.resize(sym.0 as usize + 1, None);
            }
            col[sym.0 as usize] = Some(id);
        }
        AttrTable { interner, columns }
    }

    /// The process-wide table. Resolution state is immutable after
    /// construction, so one shared instance serves every deployment.
    pub fn global() -> &'static AttrTable {
        static TABLE: OnceLock<AttrTable> = OnceLock::new();
        TABLE.get_or_init(AttrTable::new)
    }

    /// Resolve a name in a namespace. `None` for unknown names — the
    /// compiled counterpart of the legacy string matchers returning `None`.
    pub fn resolve(&self, ns: AttrNs, name: &str) -> Option<AttrId> {
        let sym = self.interner.lookup(name)?;
        self.columns[Self::column(ns)]
            .get(sym.0 as usize)
            .copied()
            .flatten()
    }
}

impl Default for AttrTable {
    fn default() -> Self {
        AttrTable::new()
    }
}

/// A borrowed attribute value: what [`crate::Event::attr_ref`] and
/// [`crate::Entity::attr_ref`] hand out. Comparisons against owned
/// [`AttrValue`]s (the constants baked into compiled predicates) follow the
/// same loose SAQL semantics, without cloning anything.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AttrRef<'a> {
    Int(i64),
    Float(f64),
    Str(&'a str),
    Bool(bool),
}

impl<'a> AttrRef<'a> {
    /// Numeric view (see [`AttrValue::as_f64`]).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            AttrRef::Int(i) => Some(*i as f64),
            AttrRef::Float(f) => Some(*f),
            AttrRef::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            AttrRef::Str(_) => None,
        }
    }

    /// String view (strings only).
    pub fn as_str(&self) -> Option<&'a str> {
        match self {
            AttrRef::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Loose SAQL equality against an owned value (see
    /// [`AttrValue::loose_eq`]).
    pub fn loose_eq(&self, other: &AttrValue) -> bool {
        match (self, other) {
            (AttrRef::Str(a), AttrValue::Str(b)) => *a == b.as_ref(),
            (AttrRef::Bool(a), AttrValue::Bool(b)) => a == b,
            _ => match (self.as_f64(), other.as_f64()) {
                (Some(a), Some(b)) => a == b,
                _ => false,
            },
        }
    }

    /// Loose SAQL ordering against an owned value (see
    /// [`AttrValue::loose_cmp`]).
    pub fn loose_cmp(&self, other: &AttrValue) -> Option<Ordering> {
        match (self, other) {
            (AttrRef::Str(a), AttrValue::Str(b)) => Some(a.cmp(&b.as_ref())),
            _ => {
                let (a, b) = (self.as_f64()?, other.as_f64()?);
                a.partial_cmp(&b)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entity::EntityType;

    #[test]
    fn resolves_every_spelling() {
        let t = AttrTable::global();
        for &(ns, spelling, id) in SPELLINGS {
            assert_eq!(t.resolve(ns, spelling), Some(id), "{ns:?} {spelling}");
        }
    }

    #[test]
    fn namespaces_disambiguate_name() {
        let t = AttrTable::global();
        assert_eq!(t.resolve(AttrNs::Process, "name"), Some(AttrId::ExeName));
        assert_eq!(t.resolve(AttrNs::File, "name"), Some(AttrId::FileName));
        assert_eq!(t.resolve(AttrNs::Network, "name"), None);
        assert_eq!(t.resolve(AttrNs::Event, "pid"), None);
    }

    #[test]
    fn unknown_names_resolve_to_none() {
        let t = AttrTable::global();
        assert_eq!(t.resolve(AttrNs::Event, "bogus"), None);
        assert_eq!(t.resolve(AttrNs::Network, ""), None);
    }

    #[test]
    fn entity_namespace_mapping() {
        assert_eq!(AttrNs::of_entity(EntityType::Process), AttrNs::Process);
        assert_eq!(AttrNs::of_entity(EntityType::File), AttrNs::File);
        assert_eq!(AttrNs::of_entity(EntityType::Network), AttrNs::Network);
    }

    #[test]
    fn borrowed_loose_eq_matches_owned_semantics() {
        assert!(AttrRef::Int(3).loose_eq(&AttrValue::Float(3.0)));
        assert!(!AttrRef::Str("3").loose_eq(&AttrValue::Int(3)));
        assert!(AttrRef::Str("cmd.exe").loose_eq(&AttrValue::str("cmd.exe")));
        assert!(AttrRef::Bool(true).loose_eq(&AttrValue::Bool(true)));
        assert!(!AttrRef::Bool(true).loose_eq(&AttrValue::Bool(false)));
    }

    #[test]
    fn borrowed_loose_cmp_matches_owned_semantics() {
        use std::cmp::Ordering::*;
        assert_eq!(
            AttrRef::Int(1).loose_cmp(&AttrValue::Float(2.0)),
            Some(Less)
        );
        assert_eq!(
            AttrRef::Str("b").loose_cmp(&AttrValue::str("a")),
            Some(Greater)
        );
        assert_eq!(AttrRef::Str("a").loose_cmp(&AttrValue::Int(1)), None);
    }
}
