//! JSON-lines codec for events: the text mirror of the binary [`crate::codec`].
//!
//! The binary codec feeds the event store; this codec feeds the *interchange*
//! boundary — agents on other platforms, shell pipelines, and test fixtures
//! speak one JSON object per line. The workspace takes no JSON dependency, so
//! both directions are hand-rolled against the fixed event schema (the same
//! policy as the engine's `JsonLinesSink` for alerts).
//!
//! One event per line:
//!
//! ```json
//! {"id":1,"host":"db-server","ts_ms":9000,
//!  "subject":{"pid":501,"exe":"sqlservr.exe","user":"svc"},
//!  "op":"write","object":{"kind":"file","name":"backup1.dmp"},
//!  "amount":123456789}
//! ```
//!
//! `object.kind` selects the entity variant: `process` (pid/exe/user),
//! `file` (name), or `network` (src_ip/src_port/dst_ip/dst_port/protocol).
//! Decoding accepts any field order and arbitrary whitespace, and rejects —
//! with a positioned message — anything that does not round-trip.

use std::fmt;
use std::sync::Arc;

use crate::entity::{Entity, FileInfo, NetworkInfo, ProcessInfo};
use crate::event::{Event, Operation};
use crate::time::Timestamp;

/// Error decoding a JSON line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset in the line where decoding failed.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

/// Append one event as a single JSON line (including the trailing newline).
pub fn encode_event_json(out: &mut String, e: &Event) {
    out.push_str("{\"id\":");
    out.push_str(&e.id.to_string());
    out.push_str(",\"host\":");
    push_json_string(out, &e.agent_id);
    out.push_str(",\"ts_ms\":");
    out.push_str(&e.ts.as_millis().to_string());
    out.push_str(",\"subject\":");
    push_process(out, &e.subject);
    out.push_str(",\"op\":");
    push_json_string(out, e.op.keyword());
    out.push_str(",\"object\":");
    match &e.object {
        Entity::Process(p) => {
            out.push_str("{\"kind\":\"process\",");
            push_process_fields(out, p);
            out.push('}');
        }
        Entity::File(file) => {
            out.push_str("{\"kind\":\"file\",\"name\":");
            push_json_string(out, &file.name);
            out.push('}');
        }
        Entity::Network(n) => {
            out.push_str("{\"kind\":\"network\",\"src_ip\":");
            push_json_string(out, &n.src_ip);
            out.push_str(",\"src_port\":");
            out.push_str(&n.src_port.to_string());
            out.push_str(",\"dst_ip\":");
            push_json_string(out, &n.dst_ip);
            out.push_str(",\"dst_port\":");
            out.push_str(&n.dst_port.to_string());
            out.push_str(",\"protocol\":");
            push_json_string(out, &n.protocol);
            out.push('}');
        }
    }
    out.push_str(",\"amount\":");
    out.push_str(&e.amount.to_string());
    out.push_str("}\n");
}

/// Render one event as a standalone JSON line.
pub fn event_to_json(e: &Event) -> String {
    let mut out = String::with_capacity(192);
    encode_event_json(&mut out, e);
    out
}

fn push_process(out: &mut String, p: &ProcessInfo) {
    out.push('{');
    push_process_fields(out, p);
    out.push('}');
}

fn push_process_fields(out: &mut String, p: &ProcessInfo) {
    out.push_str("\"pid\":");
    out.push_str(&p.pid.to_string());
    out.push_str(",\"exe\":");
    push_json_string(out, &p.exe_name);
    out.push_str(",\"user\":");
    push_json_string(out, &p.user);
}

/// Escape a string into a JSON string literal appended to `out` — shared
/// with every hand-rolled JSON writer in the workspace.
pub fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

/// Parse one JSON event line.
pub fn decode_event_json(line: &str) -> Result<Event, JsonError> {
    let mut p = Parser {
        bytes: line.as_bytes(),
        pos: 0,
    };
    let value = p.value()?;
    p.skip_ws();
    if p.pos < p.bytes.len() {
        return Err(p.err("trailing data after the event object"));
    }
    let fields = match value {
        JsonValue::Object(fields) => fields,
        _ => {
            return Err(JsonError {
                at: 0,
                message: "event line must be a JSON object".into(),
            })
        }
    };
    event_from_fields(fields)
}

/// A parsed JSON value — the workspace's one hand-rolled JSON reader,
/// shared by the event codec and the serving layer's wire protocol.
///
/// Numbers are unsigned 64-bit integers: every schema in this system (event
/// fields, protocol counters, offsets, timestamps) is non-negative and
/// integral, so fractions, exponents, and signs are rejected rather than
/// silently rounded. Object fields keep their arrival order and duplicates;
/// [`get`](Self::get) returns the first match.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JsonValue {
    Str(String),
    Num(u64),
    Bool(bool),
    Null,
    Array(Vec<JsonValue>),
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// The value's type name, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            JsonValue::Str(_) => "string",
            JsonValue::Num(_) => "number",
            JsonValue::Bool(_) => "boolean",
            JsonValue::Null => "null",
            JsonValue::Array(_) => "array",
            JsonValue::Object(_) => "object",
        }
    }

    /// First value of an object field, if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The field list, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(fields) => Some(fields),
            _ => None,
        }
    }
}

/// Parse one line as a standalone JSON value (rejecting trailing data) —
/// the entry point protocol layers build on.
pub fn parse_json(line: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: line.as_bytes(),
        pos: 0,
    };
    let value = p.value()?;
    p.skip_ws();
    if p.pos < p.bytes.len() {
        return Err(p.err("trailing data after the JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            at: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\r' | b'\n'))
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        match self.peek() {
            Some(b) if b == byte => {
                self.pos += 1;
                Ok(())
            }
            _ => Err(self.err(format!("expected `{}`", byte as char))),
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'0'..=b'9') => Ok(JsonValue::Num(self.number()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(other) => Err(self.err(format!(
                "expected a JSON value (object, array, string, unsigned number, \
                 true/false/null), found `{}`",
                other as char
            ))),
            None => Err(self.err("unexpected end of line")),
        }
    }

    fn literal(&mut self, word: &'static str, value: JsonValue) -> Result<JsonValue, JsonError> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogates never appear in our own output; map
                            // unpaired ones to the replacement character.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(self.err(format!("bad escape `\\{}`", other as char))),
                    }
                }
                _ => {
                    // Re-borrow as UTF-8 from the byte before `pos`: multi-byte
                    // characters arrive here one leading byte at a time.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len()
                        && !matches!(self.bytes[end], b'"' | b'\\')
                        && self.bytes[end] >= 0x20
                    {
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("string is not valid UTF-8"))?;
                    if chunk.bytes().next().is_some_and(|b| b < 0x20) {
                        return Err(self.err("raw control character in string"));
                    }
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<u64, JsonError> {
        self.skip_ws();
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(self.err("expected digits"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .unwrap()
            .parse()
            .map_err(|_| self.err("number out of range for u64"))
    }
}

fn event_from_fields(fields: Vec<(String, JsonValue)>) -> Result<Event, JsonError> {
    let mut id = None;
    let mut host = None;
    let mut ts_ms = None;
    let mut subject = None;
    let mut op = None;
    let mut object = None;
    let mut amount = 0u64;
    for (key, value) in fields {
        match key.as_str() {
            "id" => id = Some(num(&key, value)?),
            "host" => host = Some(string(&key, value)?),
            "ts_ms" => ts_ms = Some(num(&key, value)?),
            "amount" => amount = num(&key, value)?,
            "op" => {
                let kw = string(&key, value)?;
                let parsed = Operation::from_keyword(&kw).ok_or_else(|| JsonError {
                    at: 0,
                    message: format!("unknown operation `{kw}`"),
                })?;
                // `alert` events exist only inside a pipeline: the
                // alert→event adapter synthesizes them, and downstream
                // stages identify their upstream purely by `op == alert` +
                // subject identity. Accepting them from a collector line
                // would let any producer spoof a query's alert stream (or
                // force-advance a stage's clock), so the JSON boundary —
                // serve ingest and file/replay sources alike — rejects
                // them outright.
                if parsed == Operation::Alert {
                    return Err(JsonError {
                        at: 0,
                        message: "operation `alert` is reserved for \
                                  pipeline-derived events and cannot be ingested"
                            .into(),
                    });
                }
                op = Some(parsed);
            }
            "subject" => subject = Some(process_from(value, "subject")?),
            "object" => object = Some(entity_from(value)?),
            other => {
                return Err(JsonError {
                    at: 0,
                    message: format!("unknown event field `{other}`"),
                })
            }
        }
    }
    let op = require(op, "op")?;
    let object = require(object, "object")?;
    if !op.valid_for(object.entity_type()) {
        return Err(JsonError {
            at: 0,
            message: format!(
                "operation `{op}` is invalid for {} objects",
                object.entity_type()
            ),
        });
    }
    Ok(Event {
        id: require(id, "id")?,
        agent_id: Arc::from(require(host, "host")?.as_str()),
        ts: Timestamp::from_millis(require(ts_ms, "ts_ms")?),
        subject: require(subject, "subject")?,
        op,
        object,
        amount,
    })
}

fn require<T>(value: Option<T>, field: &str) -> Result<T, JsonError> {
    value.ok_or_else(|| JsonError {
        at: 0,
        message: format!("missing required field `{field}`"),
    })
}

fn num(key: &str, value: JsonValue) -> Result<u64, JsonError> {
    match value {
        JsonValue::Num(n) => Ok(n),
        other => Err(JsonError {
            at: 0,
            message: format!("field `{key}` must be a number, found {}", other.kind()),
        }),
    }
}

fn string(key: &str, value: JsonValue) -> Result<String, JsonError> {
    match value {
        JsonValue::Str(s) => Ok(s),
        other => Err(JsonError {
            at: 0,
            message: format!("field `{key}` must be a string, found {}", other.kind()),
        }),
    }
}

fn fields_of(value: JsonValue, what: &str) -> Result<Vec<(String, JsonValue)>, JsonError> {
    match value {
        JsonValue::Object(fields) => Ok(fields),
        other => Err(JsonError {
            at: 0,
            message: format!("`{what}` must be an object, found {}", other.kind()),
        }),
    }
}

fn process_from(value: JsonValue, what: &str) -> Result<ProcessInfo, JsonError> {
    let mut pid = None;
    let mut exe = None;
    let mut user = None;
    for (key, value) in fields_of(value, what)? {
        match key.as_str() {
            "pid" => pid = Some(num(&key, value)?),
            "exe" => exe = Some(string(&key, value)?),
            "user" => user = Some(string(&key, value)?),
            "kind" => {} // allowed (and checked) on object entities
            other => {
                return Err(JsonError {
                    at: 0,
                    message: format!("unknown process field `{other}`"),
                })
            }
        }
    }
    Ok(ProcessInfo {
        pid: require(pid, "pid")? as u32,
        exe_name: Arc::from(require(exe, "exe")?.as_str()),
        user: Arc::from(require(user, "user")?.as_str()),
    })
}

fn entity_from(value: JsonValue) -> Result<Entity, JsonError> {
    let fields = fields_of(value, "object")?;
    let kind = fields
        .iter()
        .find_map(|(k, v)| match (k.as_str(), v) {
            ("kind", JsonValue::Str(s)) => Some(s.clone()),
            _ => None,
        })
        .ok_or_else(|| JsonError {
            at: 0,
            message: "object entity needs a string `kind` field".into(),
        })?;
    match kind.as_str() {
        "process" => process_from(JsonValue::Object(fields), "object").map(Entity::Process),
        "file" => {
            let mut name = None;
            for (key, value) in fields {
                match key.as_str() {
                    "kind" => {}
                    "name" => name = Some(string(&key, value)?),
                    other => {
                        return Err(JsonError {
                            at: 0,
                            message: format!("unknown file field `{other}`"),
                        })
                    }
                }
            }
            Ok(Entity::File(FileInfo {
                name: Arc::from(require(name, "name")?.as_str()),
            }))
        }
        "network" => {
            let mut src_ip = None;
            let mut src_port = None;
            let mut dst_ip = None;
            let mut dst_port = None;
            let mut protocol = None;
            for (key, value) in fields {
                match key.as_str() {
                    "kind" => {}
                    "src_ip" => src_ip = Some(string(&key, value)?),
                    "src_port" => src_port = Some(num(&key, value)?),
                    "dst_ip" => dst_ip = Some(string(&key, value)?),
                    "dst_port" => dst_port = Some(num(&key, value)?),
                    "protocol" => protocol = Some(string(&key, value)?),
                    other => {
                        return Err(JsonError {
                            at: 0,
                            message: format!("unknown network field `{other}`"),
                        })
                    }
                }
            }
            Ok(Entity::Network(NetworkInfo {
                src_ip: Arc::from(require(src_ip, "src_ip")?.as_str()),
                src_port: require(src_port, "src_port")? as u16,
                dst_ip: Arc::from(require(dst_ip, "dst_ip")?.as_str()),
                dst_port: require(dst_port, "dst_port")? as u16,
                protocol: Arc::from(require(protocol, "protocol")?.as_str()),
            }))
        }
        other => Err(JsonError {
            at: 0,
            message: format!("unknown object kind `{other}`"),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventBuilder;

    fn samples() -> Vec<Event> {
        vec![
            EventBuilder::new(1, "client-3", 5_000)
                .subject(ProcessInfo::new(400, "outlook.exe", "victim"))
                .starts_process(ProcessInfo::new(401, "excel.exe", "victim"))
                .build(),
            EventBuilder::new(2, "db-server", 9_000)
                .subject(ProcessInfo::new(501, "sqlservr.exe", "svc"))
                .writes_file(FileInfo::new("C:\\dump\\a \"b\".bin"))
                .amount(123_456_789)
                .build(),
            EventBuilder::new(3, "db-server", 9_500)
                .subject(ProcessInfo::new(502, "sbblv.exe", "svc"))
                .sends(NetworkInfo::new(
                    "10.0.0.5",
                    50000,
                    "172.16.0.129",
                    443,
                    "tcp",
                ))
                .amount(1 << 30)
                .build(),
        ]
    }

    #[test]
    fn roundtrip_all_entity_kinds() {
        for e in samples() {
            let line = event_to_json(&e);
            assert!(line.ends_with('\n'), "one event per line: {line}");
            let back = decode_event_json(line.trim_end()).unwrap();
            assert_eq!(back, e, "line: {line}");
        }
    }

    #[test]
    fn decode_accepts_field_reordering_and_whitespace() {
        let line = r#" { "op" : "start" ,
            "object": {"user":"u","exe":"b.exe","kind":"process","pid":2},
            "subject": {"pid":1,"exe":"a.exe","user":"u"},
            "ts_ms": 10, "host": "h", "id": 7, "amount": 0 } "#;
        let e = decode_event_json(line).unwrap();
        assert_eq!(e.id, 7);
        assert_eq!(e.op, Operation::Start);
        assert_eq!(&*e.agent_id, "h");
    }

    #[test]
    fn decode_rejects_malformed_lines() {
        let cases = [
            ("", "unexpected end"),
            ("[]", "object"),
            ("{\"id\":1}", "missing required field"),
            ("{\"id\":-1}", "number"),
            ("{\"id\":1,\"bogus\":2}", "unknown event field"),
            (
                r#"{"id":1,"host":"h","ts_ms":0,"subject":{"pid":1,"exe":"a","user":"u"},"op":"teleport","object":{"kind":"file","name":"f"},"amount":0}"#,
                "unknown operation",
            ),
            (
                r#"{"id":1,"host":"h","ts_ms":0,"subject":{"pid":1,"exe":"a","user":"u"},"op":"delete","object":{"kind":"network","src_ip":"a","src_port":1,"dst_ip":"b","dst_port":2,"protocol":"tcp"},"amount":0}"#,
                "invalid for",
            ),
            (
                r#"{"id":1,"host":"h","ts_ms":0,"subject":{"pid":1,"exe":"acme/q","user":"saql"},"op":"alert","object":{"kind":"process","pid":0,"exe":"g","user":""},"amount":0}"#,
                "reserved for pipeline-derived events",
            ),
        ];
        for (line, needle) in cases {
            let err = decode_event_json(line).unwrap_err();
            assert!(
                err.to_string().contains(needle),
                "`{line}` -> {err} (wanted `{needle}`)"
            );
        }
    }

    #[test]
    fn escapes_round_trip() {
        let e = EventBuilder::new(9, "h\nost\t\"x\"", 1)
            .subject(ProcessInfo::new(1, "exe\\with\\slashes", "u\u{1}"))
            .writes_file(FileInfo::new("naïve – file.txt"))
            .build();
        let line = event_to_json(&e);
        assert_eq!(decode_event_json(line.trim_end()).unwrap(), e);
    }

    #[test]
    fn parse_json_value_surface() {
        let v = parse_json(r#"{"cmd":"register","live":true,"ids":[1,2,3],"none":null}"#).unwrap();
        assert_eq!(v.get("cmd").and_then(JsonValue::as_str), Some("register"));
        assert_eq!(v.get("live").and_then(JsonValue::as_bool), Some(true));
        assert_eq!(
            v.get("ids").and_then(JsonValue::as_array).map(<[_]>::len),
            Some(3)
        );
        assert_eq!(v.get("none"), Some(&JsonValue::Null));
        assert_eq!(v.get("missing"), None);
        assert!(parse_json("[1, 2] tail").is_err(), "trailing data rejected");
        assert!(parse_json("tru").is_err(), "truncated literal rejected");
        assert!(parse_json("-5").is_err(), "signed numbers rejected");
    }

    #[test]
    fn trailing_garbage_rejected() {
        let line = event_to_json(&samples()[0]);
        let bad = format!("{} extra", line.trim_end());
        assert!(decode_event_json(&bad)
            .unwrap_err()
            .message
            .contains("trailing"));
    }
}
