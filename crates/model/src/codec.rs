//! Compact binary codec for events.
//!
//! The stream replayer (paper Fig. 4) stores collected events in a local
//! store and replays them later as a stream. This codec defines the on-disk
//! record format: little-endian fixed-width integers, length-prefixed UTF-8
//! strings, and a one-byte tag per enum. A varint encoding is used for the
//! fields that are almost always small (pid, ports, amount, string lengths),
//! which keeps typical records around 60–90 bytes.
//!
//! The format is versioned with a leading magic byte so stores written by a
//! future revision fail loudly instead of decoding garbage.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::entity::{Entity, FileInfo, NetworkInfo, ProcessInfo};
use crate::event::{Event, Operation};
use crate::time::Timestamp;

/// Format version tag written before every record.
pub const FORMAT_VERSION: u8 = 1;

/// Errors produced while decoding a stored event record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Record began with an unknown version byte.
    BadVersion(u8),
    /// Buffer ended in the middle of a record.
    Truncated,
    /// An enum tag byte was out of range.
    BadTag(&'static str, u8),
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// A varint ran past its maximum width.
    BadVarint,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadVersion(v) => write!(f, "unknown record version {v}"),
            DecodeError::Truncated => write!(f, "record truncated"),
            DecodeError::BadTag(what, v) => write!(f, "invalid {what} tag {v}"),
            DecodeError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            DecodeError::BadVarint => write!(f, "varint too long"),
        }
    }
}

impl std::error::Error for DecodeError {}

fn put_varint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

fn get_varint(buf: &mut Bytes) -> Result<u64, DecodeError> {
    let mut v = 0u64;
    for shift in (0..64).step_by(7) {
        if !buf.has_remaining() {
            return Err(DecodeError::Truncated);
        }
        let byte = buf.get_u8();
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
    }
    Err(DecodeError::BadVarint)
}

fn put_str(buf: &mut BytesMut, s: &str) {
    put_varint(buf, s.len() as u64);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut Bytes) -> Result<std::sync::Arc<str>, DecodeError> {
    let len = get_varint(buf)? as usize;
    if buf.remaining() < len {
        return Err(DecodeError::Truncated);
    }
    // Validate in place and copy once straight into the Arc; an
    // intermediate `copy_to_bytes` would allocate a second time per field.
    let s = std::str::from_utf8(&buf.chunk()[..len]).map_err(|_| DecodeError::BadUtf8)?;
    let out = std::sync::Arc::from(s);
    buf.advance(len);
    Ok(out)
}

fn op_tag(op: Operation) -> u8 {
    Operation::ALL.iter().position(|&o| o == op).unwrap() as u8
}

fn op_from_tag(tag: u8) -> Result<Operation, DecodeError> {
    Operation::ALL
        .get(tag as usize)
        .copied()
        .ok_or(DecodeError::BadTag("operation", tag))
}

fn put_process(buf: &mut BytesMut, p: &ProcessInfo) {
    put_varint(buf, p.pid as u64);
    put_str(buf, &p.exe_name);
    put_str(buf, &p.user);
}

fn get_process(buf: &mut Bytes) -> Result<ProcessInfo, DecodeError> {
    let pid = get_varint(buf)? as u32;
    let exe_name = get_str(buf)?;
    let user = get_str(buf)?;
    Ok(ProcessInfo {
        pid,
        exe_name,
        user,
    })
}

const ENTITY_PROCESS: u8 = 0;
const ENTITY_FILE: u8 = 1;
const ENTITY_NETWORK: u8 = 2;

fn put_entity(buf: &mut BytesMut, e: &Entity) {
    match e {
        Entity::Process(p) => {
            buf.put_u8(ENTITY_PROCESS);
            put_process(buf, p);
        }
        Entity::File(f) => {
            buf.put_u8(ENTITY_FILE);
            put_str(buf, &f.name);
        }
        Entity::Network(n) => {
            buf.put_u8(ENTITY_NETWORK);
            put_str(buf, &n.src_ip);
            put_varint(buf, n.src_port as u64);
            put_str(buf, &n.dst_ip);
            put_varint(buf, n.dst_port as u64);
            put_str(buf, &n.protocol);
        }
    }
}

fn get_entity(buf: &mut Bytes) -> Result<Entity, DecodeError> {
    if !buf.has_remaining() {
        return Err(DecodeError::Truncated);
    }
    match buf.get_u8() {
        ENTITY_PROCESS => Ok(Entity::Process(get_process(buf)?)),
        ENTITY_FILE => Ok(Entity::File(FileInfo {
            name: get_str(buf)?,
        })),
        ENTITY_NETWORK => {
            let src_ip = get_str(buf)?;
            let src_port = get_varint(buf)? as u16;
            let dst_ip = get_str(buf)?;
            let dst_port = get_varint(buf)? as u16;
            let protocol = get_str(buf)?;
            Ok(Entity::Network(NetworkInfo {
                src_ip,
                src_port,
                dst_ip,
                dst_port,
                protocol,
            }))
        }
        t => Err(DecodeError::BadTag("entity", t)),
    }
}

/// Append one varint-encoded `u64` to `buf` (7-bit little-endian groups,
/// the same encoding every record field uses). Public so higher layers —
/// the engine's checkpoint codec, the durable store's WAL — speak one wire
/// dialect instead of inventing their own.
pub fn put_u64(buf: &mut BytesMut, v: u64) {
    put_varint(buf, v);
}

/// Decode one varint `u64` from the front of `buf`, advancing it.
pub fn get_u64(buf: &mut Bytes) -> Result<u64, DecodeError> {
    get_varint(buf)
}

/// Append one length-prefixed UTF-8 string to `buf`.
pub fn put_string(buf: &mut BytesMut, s: &str) {
    put_str(buf, s);
}

/// Decode one length-prefixed string from the front of `buf`.
pub fn get_string(buf: &mut Bytes) -> Result<std::sync::Arc<str>, DecodeError> {
    get_str(buf)
}

/// Append one encoded entity (tag + payload) to `buf`.
pub fn encode_entity(buf: &mut BytesMut, e: &Entity) {
    put_entity(buf, e);
}

/// Decode one entity from the front of `buf`, advancing it.
pub fn decode_entity(buf: &mut Bytes) -> Result<Entity, DecodeError> {
    get_entity(buf)
}

/// Append one encoded event record to `buf`.
pub fn encode_event(buf: &mut BytesMut, e: &Event) {
    buf.put_u8(FORMAT_VERSION);
    put_varint(buf, e.id);
    put_str(buf, &e.agent_id);
    put_varint(buf, e.ts.as_millis());
    put_process(buf, &e.subject);
    buf.put_u8(op_tag(e.op));
    put_entity(buf, &e.object);
    put_varint(buf, e.amount);
}

/// Decode one event record from the front of `buf`, advancing it.
pub fn decode_event(buf: &mut Bytes) -> Result<Event, DecodeError> {
    if !buf.has_remaining() {
        return Err(DecodeError::Truncated);
    }
    let version = buf.get_u8();
    if version != FORMAT_VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    let id = get_varint(buf)?;
    let agent_id = get_str(buf)?;
    let ts = Timestamp::from_millis(get_varint(buf)?);
    let subject = get_process(buf)?;
    if !buf.has_remaining() {
        return Err(DecodeError::Truncated);
    }
    let op = op_from_tag(buf.get_u8())?;
    let object = get_entity(buf)?;
    let amount = get_varint(buf)?;
    Ok(Event {
        id,
        agent_id,
        ts,
        subject,
        op,
        object,
        amount,
    })
}

/// Encode a batch of events into one buffer (records back to back).
pub fn encode_batch(events: &[Event]) -> Bytes {
    let mut buf = BytesMut::with_capacity(events.len() * 96);
    for e in events {
        encode_event(&mut buf, e);
    }
    buf.freeze()
}

/// Decode every record in `data`.
pub fn decode_batch(data: Bytes) -> Result<Vec<Event>, DecodeError> {
    let mut buf = data;
    let mut out = Vec::new();
    while buf.has_remaining() {
        out.push(decode_event(&mut buf)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventBuilder;

    fn events() -> Vec<Event> {
        vec![
            EventBuilder::new(1, "client-3", 5_000)
                .subject(ProcessInfo::new(400, "outlook.exe", "victim"))
                .starts_process(ProcessInfo::new(401, "excel.exe", "victim"))
                .build(),
            EventBuilder::new(2, "db-server", 9_000)
                .subject(ProcessInfo::new(501, "sqlservr.exe", "svc"))
                .writes_file(FileInfo::new("backup1.dmp"))
                .amount(123_456_789)
                .build(),
            EventBuilder::new(3, "db-server", 9_500)
                .subject(ProcessInfo::new(502, "sbblv.exe", "svc"))
                .sends(NetworkInfo::new(
                    "10.0.0.5",
                    50000,
                    "172.16.0.129",
                    443,
                    "tcp",
                ))
                .amount(1 << 30)
                .build(),
        ]
    }

    #[test]
    fn roundtrip_single() {
        for e in events() {
            let mut buf = BytesMut::new();
            encode_event(&mut buf, &e);
            let mut data = buf.freeze();
            let back = decode_event(&mut data).unwrap();
            assert_eq!(back, e);
            assert!(!data.has_remaining());
        }
    }

    #[test]
    fn roundtrip_batch() {
        let evts = events();
        let data = encode_batch(&evts);
        assert_eq!(decode_batch(data).unwrap(), evts);
    }

    #[test]
    fn truncated_record_errors() {
        let evts = events();
        let data = encode_batch(&evts[..1]);
        for cut in 1..data.len() - 1 {
            let mut short = data.slice(..cut);
            assert!(
                decode_event(&mut short).is_err(),
                "cut at {cut} should fail"
            );
        }
    }

    #[test]
    fn bad_version_detected() {
        let mut buf = BytesMut::new();
        encode_event(&mut buf, &events()[0]);
        let mut raw = buf.to_vec();
        raw[0] = 99;
        let mut data = Bytes::from(raw);
        assert_eq!(decode_event(&mut data), Err(DecodeError::BadVersion(99)));
    }

    #[test]
    fn bad_operation_tag_detected() {
        let mut buf = BytesMut::new();
        encode_event(&mut buf, &events()[0]);
        let mut raw = buf.to_vec();
        // Operation tag sits right after: version, id varint, agent str,
        // ts varint, subject (pid varint + 2 strings). Find it by decoding a
        // clean prefix: easier to corrupt the last byte of a known-position
        // field; instead rebuild with a direct scan for the op byte.
        // The subject's user string "victim" ends right before the op tag.
        let pos = raw.windows(6).position(|w| w == b"victim").unwrap() + 6;
        raw[pos] = 42;
        let mut data = Bytes::from(raw);
        assert_eq!(
            decode_event(&mut data),
            Err(DecodeError::BadTag("operation", 42))
        );
    }

    #[test]
    fn varint_boundaries() {
        let mut buf = BytesMut::new();
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u32::MAX as u64, u64::MAX] {
            buf.clear();
            put_varint(&mut buf, v);
            let mut data = buf.clone().freeze();
            assert_eq!(get_varint(&mut data).unwrap(), v);
        }
    }

    #[test]
    fn typical_record_is_compact() {
        let mut buf = BytesMut::new();
        encode_event(&mut buf, &events()[0]);
        assert!(
            buf.len() < 96,
            "record unexpectedly large: {} bytes",
            buf.len()
        );
    }
}
