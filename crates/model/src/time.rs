//! Trace time: timestamps and durations.
//!
//! SAQL operates on *event time* — the time recorded by the monitoring agent
//! — never wall-clock time, so that stored data replayed through the stream
//! replayer produces identical query results. Both types are thin wrappers
//! over milliseconds.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Event time in milliseconds since the start of the trace epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Timestamp(u64);

impl Timestamp {
    pub const ZERO: Timestamp = Timestamp(0);

    pub fn from_millis(ms: u64) -> Self {
        Timestamp(ms)
    }

    pub fn from_secs(s: u64) -> Self {
        Timestamp(s * 1000)
    }

    pub fn as_millis(&self) -> u64 {
        self.0
    }

    /// Saturating difference between two timestamps.
    pub fn delta(&self, earlier: Timestamp) -> Duration {
        Duration::from_millis(self.0.saturating_sub(earlier.0))
    }
}

impl Add<Duration> for Timestamp {
    type Output = Timestamp;
    fn add(self, d: Duration) -> Timestamp {
        Timestamp(self.0 + d.0)
    }
}

impl AddAssign<Duration> for Timestamp {
    fn add_assign(&mut self, d: Duration) {
        self.0 += d.0;
    }
}

impl Sub<Duration> for Timestamp {
    type Output = Timestamp;
    fn sub(self, d: Duration) -> Timestamp {
        Timestamp(self.0.saturating_sub(d.0))
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ms", self.0)
    }
}

/// A span of trace time in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Duration(u64);

impl Duration {
    pub const ZERO: Duration = Duration(0);

    pub fn from_millis(ms: u64) -> Self {
        Duration(ms)
    }

    pub fn from_secs(s: u64) -> Self {
        Duration(s * 1000)
    }

    pub fn from_mins(m: u64) -> Self {
        Duration(m * 60_000)
    }

    pub fn as_millis(&self) -> u64 {
        self.0
    }

    pub fn is_zero(&self) -> bool {
        self.0 == 0
    }

    /// Parse a SAQL duration: a number followed by a unit keyword, e.g.
    /// `10 min`, `30 s`, `500 ms`, `2 h`, `1 day`.
    ///
    /// Recognized units: `ms`, `s`/`sec`/`second`/`seconds`,
    /// `min`/`minute`/`minutes`, `h`/`hour`/`hours`, `day`/`days`.
    pub fn parse(value: u64, unit: &str) -> Option<Duration> {
        let scale = match unit {
            "ms" | "millis" | "millisecond" | "milliseconds" => 1,
            "s" | "sec" | "second" | "seconds" => 1_000,
            "min" | "minute" | "minutes" => 60_000,
            "h" | "hour" | "hours" => 3_600_000,
            "day" | "days" => 86_400_000,
            _ => return None,
        };
        Some(Duration(value.checked_mul(scale)?))
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, other: Duration) -> Duration {
        Duration(self.0 + other.0)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ms = self.0;
        if ms.is_multiple_of(60_000) && ms > 0 {
            write!(f, "{} min", ms / 60_000)
        } else if ms.is_multiple_of(1000) && ms > 0 {
            write!(f, "{} s", ms / 1000)
        } else {
            write!(f, "{} ms", ms)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_parse_units() {
        assert_eq!(Duration::parse(10, "min"), Some(Duration::from_mins(10)));
        assert_eq!(Duration::parse(10, "s"), Some(Duration::from_secs(10)));
        assert_eq!(Duration::parse(500, "ms"), Some(Duration::from_millis(500)));
        assert_eq!(
            Duration::parse(2, "h"),
            Some(Duration::from_millis(7_200_000))
        );
        assert_eq!(
            Duration::parse(1, "day"),
            Some(Duration::from_millis(86_400_000))
        );
        assert_eq!(Duration::parse(1, "fortnight"), None);
    }

    #[test]
    fn duration_parse_overflow_is_none() {
        assert_eq!(Duration::parse(u64::MAX, "day"), None);
    }

    #[test]
    fn timestamp_arithmetic() {
        let t = Timestamp::from_secs(10);
        assert_eq!(t + Duration::from_secs(5), Timestamp::from_secs(15));
        assert_eq!(t - Duration::from_secs(20), Timestamp::ZERO);
        assert_eq!(Timestamp::from_secs(15).delta(t), Duration::from_secs(5));
        assert_eq!(t.delta(Timestamp::from_secs(15)), Duration::ZERO);
    }

    #[test]
    fn display_picks_natural_unit() {
        assert_eq!(Duration::from_mins(10).to_string(), "10 min");
        assert_eq!(Duration::from_secs(90).to_string(), "90 s");
        assert_eq!(Duration::from_millis(250).to_string(), "250 ms");
    }
}
