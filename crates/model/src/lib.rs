//! # saql-model
//!
//! Data model for the SAQL anomaly query system (Gao et al., ICDE 2020).
//!
//! System monitoring observes kernel-level interactions among *system
//! entities* — processes, files, and network connections — and records them
//! as *system events* in ⟨subject, operation, object⟩ (SVO) form. Each event
//! occurs on a particular host (`agent_id`) at a particular time, exhibiting
//! the strong spatial and temporal properties the SAQL engine exploits.
//!
//! This crate defines:
//! * [`Entity`], [`ProcessInfo`], [`FileInfo`], [`NetworkInfo`] — system entities;
//! * [`Event`] and [`Operation`] — SVO events and their operation kinds;
//! * [`AttrValue`] — dynamically typed attribute values used by the query
//!   engine when evaluating constraints and expressions;
//! * [`Interner`] — a string interner used by data producers to deduplicate
//!   entity names;
//! * [`glob`] — SQL-`LIKE` style wildcard matching (`%`, `_`) used by entity
//!   attribute patterns such as `proc p["%cmd.exe"]`;
//! * [`time`] — timestamp and duration helpers (`10 min`, `10 s`, …);
//! * [`codec`] — a compact binary codec for events, used by the event store
//!   and the stream replayer.

pub mod attr;
pub mod attr_ref;
pub mod codec;
pub mod entity;
pub mod event;
pub mod glob;
pub mod interner;
pub mod json;
pub mod time;

pub use attr::AttrValue;
pub use attr_ref::{AttrId, AttrNs, AttrRef, AttrTable};
pub use entity::{Entity, EntityType, FileInfo, NetworkInfo, ProcessInfo};
pub use event::{Event, EventId, Operation};
pub use interner::{Interner, Symbol};
pub use time::{Duration, Timestamp};
