//! # saql-engine
//!
//! The SAQL anomaly query engine (paper Fig. 1): takes compiled SAQL queries
//! and a system event stream, and reports detection alerts.
//!
//! Pipeline stages, mirroring the paper's architecture:
//!
//! * **multievent matcher** ([`matcher`]) — matches stream events against the
//!   query's event patterns, maintaining partial matches for temporal
//!   relationships (`with evt1 -> evt2`) and attribute joins (shared
//!   variables);
//! * **state maintainer** ([`window`], [`state`]) — sliding-window management
//!   and per-group incremental aggregation with window history
//!   (`state[3] ss { ... }`);
//! * **invariant models** ([`invariant`]) — per-group invariant training and
//!   violation detection;
//! * **cluster stage** ([`cluster`]) — peer-group outlier detection via
//!   DBSCAN / k-means at window close;
//! * **alert evaluator** ([`eval`]) — expression evaluation over match
//!   bindings, window states, invariants, and cluster outcomes;
//! * **concurrent query scheduler** ([`scheduler`]) — the master–dependent-
//!   query scheme: semantically compatible queries share one copy of the
//!   stream; only group masters touch raw events;
//! * **parallel runtime** ([`runtime`], [`shard`]) — scheduler groups
//!   partitioned across worker threads with batched event dispatch over
//!   bounded channels and a merged alert channel;
//! * **run sessions** ([`session`]) — pump-driven ingestion from pluggable
//!   [`saql_stream::EventSource`]s fused by a watermarked K-way merge, with
//!   mid-stream source attach/detach and per-source stats;
//! * **error reporter** ([`error`]) — collects runtime anomalies (evaluation
//!   failures, partial-match overflow) without aborting the stream.
//!
//! Entry points: [`query::RunningQuery`] for a single query,
//! [`scheduler::Scheduler`] for concurrent queries, and the [`Engine`]
//! facade that wires parsing, scheduling and alert collection together —
//! including the live query control plane ([`Engine::register`] /
//! [`Engine::deregister`] / [`Engine::pause`] / [`Engine::subscribe`]),
//! which attaches and detaches queries mid-stream on both backends.

pub mod alert;
pub mod checkpoint;
pub mod cluster;
pub mod engine;
pub mod error;
pub mod eval;
pub mod invariant;
pub mod matcher;
pub mod pipeline;
pub mod plan;
pub mod query;
pub mod runtime;
pub mod scheduler;
pub mod session;
pub mod shard;
pub mod sink;
pub mod state;
pub mod value;
pub mod window;

pub use alert::Alert;
pub use checkpoint::Checkpoint;
pub use engine::{Engine, EngineConfig};
pub use error::{EngineError, ErrorReporter};
pub use pipeline::{
    deregister_pipeline, register_pipeline, register_pipeline_scoped, AlertAdapter, PipelineWiring,
};
pub use query::{QueryId, RunningQuery};
pub use runtime::{ParallelConfig, ParallelEngine};
pub use scheduler::Scheduler;
pub use session::{CheckpointConfig, Pump, RunSession, SessionStatus};
pub use sink::render_alert_json;
pub use value::Value;
