//! Alert sinks: where detections go after the engine raises them.
//!
//! The demo prints alerts on the command-line UI; deployments forward them
//! to SIEM pipelines. [`AlertSink`] abstracts the destination;
//! [`ChannelSink`] fans alerts out to consumer threads and
//! [`JsonLinesSink`] writes one JSON object per alert (hand-rolled
//! serialization — alerts are flat, and the workspace takes no JSON
//! dependency).

use std::io::Write;

use crossbeam::channel::{bounded, Receiver, Sender};

use crate::alert::{Alert, AlertOrigin};

/// A destination for alerts.
pub trait AlertSink {
    /// Deliver one alert. Failures must be absorbed (sinks never stop the
    /// stream); implementations track their own error counts.
    fn deliver(&mut self, alert: &Alert);

    /// Flush any buffering.
    fn flush(&mut self) {}
}

/// Collects alerts in memory (tests, small runs).
#[derive(Debug, Default)]
pub struct CollectSink {
    pub alerts: Vec<Alert>,
}

impl AlertSink for CollectSink {
    fn deliver(&mut self, alert: &Alert) {
        self.alerts.push(alert.clone());
    }
}

/// Forwards alerts into a bounded channel (blocking when full, dropping
/// when all receivers hung up). Cloning yields another producer into the
/// *same* channel (with its own `dropped` counters) — the parallel runtime
/// hands one clone to each shard worker to merge their alerts.
pub struct ChannelSink {
    tx: Sender<Alert>,
    pub dropped: u64,
    /// Drops attributed to the query that emitted the lost alert.
    pub dropped_by_query: std::collections::HashMap<crate::query::QueryId, u64>,
}

impl ChannelSink {
    /// Create a sink and its receiving half. A zero capacity clamps to one
    /// (the vendored crossbeam has no rendezvous channels).
    pub fn new(capacity: usize) -> (ChannelSink, Receiver<Alert>) {
        let (tx, rx) = bounded(capacity.max(1));
        (
            ChannelSink {
                tx,
                dropped: 0,
                dropped_by_query: std::collections::HashMap::new(),
            },
            rx,
        )
    }
}

impl Clone for ChannelSink {
    fn clone(&self) -> Self {
        ChannelSink {
            tx: self.tx.clone(),
            dropped: 0,
            dropped_by_query: std::collections::HashMap::new(),
        }
    }
}

impl AlertSink for ChannelSink {
    fn deliver(&mut self, alert: &Alert) {
        if self.tx.send(alert.clone()).is_err() {
            self.dropped += 1;
            *self.dropped_by_query.entry(alert.query_id).or_insert(0) += 1;
        }
    }
}

/// Writes one JSON object per alert to any `Write` (files, pipes).
pub struct JsonLinesSink<W: Write> {
    writer: W,
    pub write_errors: u64,
}

impl<W: Write> JsonLinesSink<W> {
    pub fn new(writer: W) -> Self {
        JsonLinesSink {
            writer,
            write_errors: 0,
        }
    }

    /// Recover the writer (flushes first).
    pub fn into_inner(mut self) -> W {
        let _ = self.writer.flush();
        self.writer
    }

    fn render(alert: &Alert) -> String {
        let mut out = render_alert_json(alert);
        out.push('\n');
        out
    }
}

/// Render one alert as a single-line JSON object (no trailing newline) —
/// the shape [`JsonLinesSink`] writes, shared with the serving layer's
/// subscribe streams so file sinks and sockets emit identical records.
pub fn render_alert_json(alert: &Alert) -> String {
    let mut out = String::with_capacity(160);
    out.push_str("{\"query\":");
    json_string(&mut out, &alert.query);
    // Standalone queries carry no id; omit the field rather than emit a
    // sentinel.
    if alert.query_id != crate::query::QueryId::UNASSIGNED {
        out.push_str(",\"query_id\":");
        out.push_str(&alert.query_id.index().to_string());
    }
    out.push_str(",\"ts_ms\":");
    out.push_str(&alert.ts.as_millis().to_string());
    match &alert.origin {
        AlertOrigin::Match { event_ids } => {
            out.push_str(",\"origin\":\"match\",\"event_ids\":[");
            for (i, id) in event_ids.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&id.to_string());
            }
            out.push(']');
        }
        AlertOrigin::Window { start, end, group } => {
            out.push_str(",\"origin\":\"window\",\"window_start_ms\":");
            out.push_str(&start.as_millis().to_string());
            out.push_str(",\"window_end_ms\":");
            out.push_str(&end.as_millis().to_string());
            out.push_str(",\"group\":");
            json_string(&mut out, group);
        }
    }
    out.push_str(",\"rows\":{");
    for (i, (label, value)) in alert.rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json_string(&mut out, label);
        out.push(':');
        json_string(&mut out, value);
    }
    out.push_str("}}");
    out
}

/// Escape a string into a JSON string literal appended to `out`.
fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl<W: Write> AlertSink for JsonLinesSink<W> {
    fn deliver(&mut self, alert: &Alert) {
        if self
            .writer
            .write_all(Self::render(alert).as_bytes())
            .is_err()
        {
            self.write_errors += 1;
        }
    }

    fn flush(&mut self) {
        let _ = self.writer.flush();
    }
}

/// Fan out to several sinks.
pub struct TeeSink<'a> {
    pub sinks: Vec<&'a mut dyn AlertSink>,
}

impl AlertSink for TeeSink<'_> {
    fn deliver(&mut self, alert: &Alert) {
        for sink in &mut self.sinks {
            sink.deliver(alert);
        }
    }

    fn flush(&mut self) {
        for sink in &mut self.sinks {
            sink.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saql_model::Timestamp;

    fn sample(query: &str) -> Alert {
        Alert {
            query: query.into(),
            query_id: crate::query::QueryId::UNASSIGNED,
            ts: Timestamp::from_secs(7),
            origin: AlertOrigin::Window {
                start: Timestamp::ZERO,
                end: Timestamp::from_secs(7),
                group: "sqlservr.exe".into(),
            },
            rows: vec![
                ("p".into(), "sqlservr.exe".into()),
                ("amt".into(), "1.5".into()),
            ],
        }
    }

    #[test]
    fn collect_sink_accumulates() {
        let mut sink = CollectSink::default();
        sink.deliver(&sample("a"));
        sink.deliver(&sample("b"));
        assert_eq!(sink.alerts.len(), 2);
        assert_eq!(sink.alerts[1].query, "b");
    }

    #[test]
    fn channel_sink_delivers_cross_thread() {
        let (mut sink, rx) = ChannelSink::new(4);
        sink.deliver(&sample("x"));
        drop(sink);
        let got: Vec<Alert> = rx.into_iter().collect();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].query, "x");
    }

    #[test]
    fn channel_sink_counts_drops_after_disconnect() {
        let (mut sink, rx) = ChannelSink::new(4);
        drop(rx);
        sink.deliver(&sample("x"));
        assert_eq!(sink.dropped, 1);
    }

    #[test]
    fn json_lines_output_shape() {
        let mut sink = JsonLinesSink::new(Vec::new());
        sink.deliver(&sample("exfil"));
        let match_alert = Alert {
            query: "rule \"q\"".into(),
            query_id: crate::query::QueryId::UNASSIGNED,
            ts: Timestamp::from_millis(9),
            origin: AlertOrigin::Match {
                event_ids: vec![1, 2],
            },
            rows: vec![("f".into(), "C:\\dump\\a.bin".into())],
        };
        sink.deliver(&match_alert);
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"origin\":\"window\""), "{}", lines[0]);
        assert!(
            lines[0].contains("\"group\":\"sqlservr.exe\""),
            "{}",
            lines[0]
        );
        assert!(lines[1].contains("\"event_ids\":[1,2]"), "{}", lines[1]);
        // Quotes and backslashes escape correctly.
        assert!(lines[1].contains("rule \\\"q\\\""), "{}", lines[1]);
        assert!(lines[1].contains("C:\\\\dump\\\\a.bin"), "{}", lines[1]);
    }

    #[test]
    fn json_escapes_control_chars() {
        let mut out = String::new();
        json_string(&mut out, "a\nb\tc\u{1}");
        assert_eq!(out, "\"a\\nb\\tc\\u0001\"");
    }

    #[test]
    fn tee_fans_out() {
        let mut a = CollectSink::default();
        let mut b = CollectSink::default();
        {
            let mut tee = TeeSink {
                sinks: vec![&mut a, &mut b],
            };
            tee.deliver(&sample("t"));
        }
        assert_eq!(a.alerts.len(), 1);
        assert_eq!(b.alerts.len(), 1);
    }
}
