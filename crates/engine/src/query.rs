//! A compiled, running SAQL query: the per-query pipeline tying the
//! multievent matcher, window driver, state maintainer, invariant runtime,
//! cluster stage, and alert evaluator together.
//!
//! Queries compile **once at registration**: names resolve to slots
//! ([`saql_lang::resolve`]), expressions lower to register programs
//! ([`crate::plan`]), and attribute constraints bind [`saql_model::AttrId`]s
//! — the per-event path then runs programs over fixed slot arrays. The
//! original tree-walking interpreter survives behind
//! [`ExecMode::Interpreted`] as the differential-testing oracle
//! (`compiled_plans_match_interpreter` pins the equivalence).

use std::collections::HashSet;

use saql_lang::ast::{Expr, Query, Ref};
use saql_lang::semantic::{CheckedQuery, QueryKind};
use saql_model::{Entity, Timestamp};
use saql_stream::{BatchView, SharedEvent};

use crate::alert::{Alert, AlertOrigin};
use crate::cluster::{run_cluster_with, ClusterScratch};
use crate::error::{EngineError, ErrorReporter};
use crate::eval::{eval, run_program, run_program_batch, ClusterOutcome, EventRow, NoSlots, Scope};
use crate::invariant::{InvariantRuntime, InvariantSnapshot};
use crate::matcher::{FullMatch, GlobalFilter, MatcherSnapshot, MultiMatcher, PatternMatcher};
use crate::plan::{EntityBind, ExecCtx, QueryPlan};
use crate::state::{
    partition_of, ClosedGroup, KeyAtom, StateMaintainer, StateSnapshot, StateView,
};
use crate::value::Value;
use crate::window::{WindowDriver, WindowSnapshot};

/// Handle to a registered query: the key of the engine's control plane.
///
/// Ids are assigned at registration ([`crate::Engine::register`]) and stay
/// valid for the engine's lifetime — they are never reused, even after the
/// query is deregistered. Every [`Alert`] carries the id of the query that
/// produced it, which is what makes per-query subscription routing possible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryId(usize);

impl QueryId {
    /// Placeholder carried by queries compiled outside an engine
    /// (standalone [`RunningQuery`]s in tests and benches).
    pub const UNASSIGNED: QueryId = QueryId(usize::MAX);

    /// An id from a raw registration index.
    pub fn new(index: usize) -> Self {
        QueryId(index)
    }

    /// The raw registration index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for QueryId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if *self == QueryId::UNASSIGNED {
            write!(f, "q#unassigned")
        } else {
            write!(f, "q#{}", self.0)
        }
    }
}

/// How a query evaluates its expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Compiled register programs over fixed slot arrays (the default).
    #[default]
    Compiled,
    /// The tree-walking interpreter over per-evaluation scopes — kept as
    /// the differential-testing oracle.
    Interpreted,
}

/// Tuning knobs for a running query.
#[derive(Debug, Clone, Copy)]
pub struct QueryConfig {
    /// Maximum live partial matches for the multievent matcher.
    pub partial_match_cap: usize,
    /// Out-of-order tolerance: windows stay open this long past their end
    /// so skewed agent feeds still land in their windows.
    pub allowed_lateness: saql_model::Duration,
    /// Expression execution strategy (see [`ExecMode`]).
    pub exec: ExecMode,
}

impl Default for QueryConfig {
    fn default() -> Self {
        QueryConfig {
            partial_match_cap: 65_536,
            allowed_lateness: saql_model::Duration::ZERO,
            exec: ExecMode::Compiled,
        }
    }
}

/// Execution counters, exposed for the CLI and the benchmarks.
#[derive(Debug, Clone, Copy, Default)]
pub struct QueryStats {
    /// Events offered to the query (including globally filtered ones).
    pub events_seen: u64,
    /// Events that passed global constraints and matched some pattern.
    pub events_matched: u64,
    /// Windows closed.
    pub windows_closed: u64,
    /// Alerts emitted.
    pub alerts: u64,
    /// Events arriving after their windows already closed.
    pub late_events: u64,
}

impl QueryStats {
    /// Fold one partition replica's counters into this one. Replica row
    /// slices are disjoint, so the per-event counters sum; window closures
    /// overlap across replicas (each closes the windows its owned rows
    /// opened, under one shared clock), so `windows_closed` merges as a
    /// maximum — a lower bound on the serial count, never a double-count.
    pub fn absorb_replica(&mut self, part: &QueryStats) {
        self.events_seen += part.events_seen;
        self.events_matched += part.events_matched;
        self.alerts += part.alerts;
        self.late_events += part.late_events;
        self.windows_closed = self.windows_closed.max(part.windows_closed);
    }
}

/// Full dynamic state of one [`RunningQuery`], exact under
/// [`RunningQuery::snapshot`] → [`RunningQuery::restore`]. Each component
/// is present iff the query family uses it (rule queries carry a matcher,
/// stateful ones a window/state, invariant ones the training groups).
#[derive(Debug, Clone)]
pub struct QuerySnapshot {
    pub matcher: Option<MatcherSnapshot>,
    pub window: Option<WindowSnapshot>,
    pub state: Option<StateSnapshot>,
    pub invariant: Option<InvariantSnapshot>,
    /// `return distinct` dedup rows, sorted.
    pub distinct_seen: Vec<Vec<String>>,
    pub stats: QueryStats,
    /// Whether the partial-match overflow was already reported (prevents a
    /// resumed query from double-reporting).
    pub overflow_reported: bool,
}

/// One slice of a key-partitioned query: this replica owns the groups whose
/// key tuple hashes to `index` under [`partition_of`]`(key, of)`. Rows whose
/// group key fails to resolve are owned by replica 0, so the serial run's
/// single key-resolution error is reported exactly once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Partition {
    /// This replica's slice, `0..of`.
    pub index: u32,
    /// Total partition count (the parallel runtime's worker count).
    pub of: u32,
}

impl QuerySnapshot {
    /// Split a canonical snapshot into `n` per-partition replica snapshots
    /// for the key-partitioned runtime. Keyed state splits disjointly by
    /// the routing hash; the window clock is replicated (every replica sees
    /// the full stream's time); replica 0 carries the accumulated stats,
    /// the matcher/invariant components (always `None` for partitionable
    /// queries, carried defensively), and the distinct-dedup rows.
    pub fn split(&self, n: usize) -> Vec<QuerySnapshot> {
        let n = n.max(1);
        let states: Vec<Option<StateSnapshot>> = match &self.state {
            Some(s) => s.split(n).into_iter().map(Some).collect(),
            None => vec![None; n],
        };
        states
            .into_iter()
            .enumerate()
            .map(|(i, state)| QuerySnapshot {
                matcher: (i == 0).then(|| self.matcher.clone()).flatten(),
                window: self.window.clone(),
                state,
                invariant: (i == 0).then(|| self.invariant.clone()).flatten(),
                distinct_seen: if i == 0 {
                    self.distinct_seen.clone()
                } else {
                    Vec::new()
                },
                stats: if i == 0 {
                    self.stats
                } else {
                    QueryStats::default()
                },
                overflow_reported: self.overflow_reported,
            })
            .collect()
    }

    /// Merge per-partition replica snapshots back into the canonical form a
    /// serial run would capture: disjoint keyed state re-gathered and
    /// key-sorted, the per-replica window views folded (union of open
    /// windows — each replica opens only the windows its owned rows landed
    /// in — under the shared broadcast watermark), per-event stats summed
    /// (each replica saw only its owned rows) and `windows_closed` taken as
    /// the max. `None` for an empty input.
    pub fn merge(parts: Vec<QuerySnapshot>) -> Option<QuerySnapshot> {
        let mut iter = parts.into_iter();
        let mut out = iter.next()?;
        let mut states: Vec<StateSnapshot> = out.state.take().into_iter().collect();
        for part in iter {
            states.extend(part.state);
            if out.matcher.is_none() {
                out.matcher = part.matcher;
            }
            match (&mut out.window, part.window) {
                (Some(w), Some(pw)) => w.absorb_replica(&pw),
                (w @ None, pw) => *w = pw,
                _ => {}
            }
            if out.invariant.is_none() {
                out.invariant = part.invariant;
            }
            out.distinct_seen.extend(part.distinct_seen);
            out.stats.absorb_replica(&part.stats);
            out.overflow_reported |= part.overflow_reported;
        }
        if !states.is_empty() {
            out.state = Some(StateSnapshot::merge(states));
        }
        out.distinct_seen.sort();
        out.distinct_seen.dedup();
        Some(out)
    }
}

/// Per-compatibility-group **shared sub-plan cache** for batched
/// execution: predicate-set columns (global-filter acceptance, per-pattern
/// match vectors) computed once per batch and shared by every member whose
/// predicate set has the same deterministic fingerprint. Dependent queries
/// in a group typically share their master's shapes and often whole
/// predicate sets — with the cache, those prefixes are evaluated once per
/// batch instead of once per member.
///
/// The cache is keyed by content fingerprint ([`GlobalFilter::fingerprint`]
/// / [`PatternMatcher::fingerprint`]), so equal fingerprints imply equal
/// columns; hits are linear scans over a handful of entries. Column buffers
/// recycle across batches.
#[derive(Debug, Default)]
pub struct BatchCache {
    globs: Vec<(u64, Vec<bool>)>,
    pats: Vec<(u64, Vec<bool>)>,
    /// Retired column buffers, recycled to keep batches allocation-free
    /// once warm.
    spare: Vec<Vec<bool>>,
    /// Cache hits this batch (columns reused instead of recomputed).
    shared_hits: u64,
}

impl BatchCache {
    /// Invalidate all columns (call once per incoming batch, before any
    /// member prepares).
    pub fn begin_batch(&mut self) {
        self.spare.extend(self.globs.drain(..).map(|(_, col)| col));
        self.spare.extend(self.pats.drain(..).map(|(_, col)| col));
    }

    /// Columns reused across members since the cache was created.
    pub fn shared_hits(&self) -> u64 {
        self.shared_hits
    }

    fn buffer(&mut self) -> Vec<bool> {
        self.spare.pop().unwrap_or_default()
    }

    /// Index of the acceptance column for this global filter, computing it
    /// on first demand within the batch.
    fn glob_column(&mut self, filter: &GlobalFilter, view: &BatchView<'_>) -> usize {
        let fp = filter.fingerprint();
        if let Some(i) = self.globs.iter().position(|(k, _)| *k == fp) {
            self.shared_hits += 1;
            return i;
        }
        let mut col = self.buffer();
        filter.fill_accepts(view, &mut col);
        self.globs.push((fp, col));
        self.globs.len() - 1
    }

    /// Index of the match column for this pattern, computing it on first
    /// demand within the batch.
    fn pat_column(&mut self, pattern: &PatternMatcher, view: &BatchView<'_>) -> usize {
        let fp = pattern.fingerprint();
        if let Some(i) = self.pats.iter().position(|(k, _)| *k == fp) {
            self.shared_hits += 1;
            return i;
        }
        let mut col = self.buffer();
        pattern.fill_matches(view, &mut col);
        self.pats.push((fp, col));
        self.pats.len() - 1
    }

    fn glob(&self, idx: usize) -> &[bool] {
        &self.globs[idx].1
    }

    fn pat(&self, idx: usize) -> &[bool] {
        &self.pats[idx].1
    }
}

/// Stateful-query batch precomputation: everything watermark-independent
/// about the rows (pattern dispatch, group keys, field-program values),
/// evaluated column-wise in [`RunningQuery::prepare_batch`]. Window
/// assignment and `state.observe` stay in the per-row drive loop — the
/// watermark advances mid-batch, so window membership cannot be hoisted.
#[derive(Debug, Default)]
struct StatefulPre {
    /// Per row: first matching pattern index, `u32::MAX` when none.
    slot: Vec<u32>,
    /// Per row: index into the compact arrays below (`u32::MAX` when the
    /// row didn't survive glob + pattern dispatch).
    pos: Vec<u32>,
    /// Compact, row-major group-key atoms (`n_keys` per surviving row).
    keys: Vec<KeyAtom>,
    /// Per surviving row: whether every group key resolved.
    key_ok: Vec<bool>,
    /// Compact, row-major field-program values (`n_fields` per row).
    fields: Vec<Value>,
    /// Per row (partitioned replicas only): which partition owns it —
    /// `hash(key) % of` for rows with a resolved key, 0 otherwise. The
    /// scheduler consults this through [`RunningQuery::owns_row`] before
    /// counting a delivery, so partitioned deliveries are disjoint.
    owner: Vec<u32>,
}

/// Per-query batched-execution state: resolved cache column indices plus
/// the stateful precomputation. Valid for the current batch only.
#[derive(Debug, Default)]
struct BatchState {
    glob_idx: usize,
    /// Cache column index per pattern, declaration order.
    pat_idx: Vec<usize>,
    pre: StatefulPre,
    /// Per-row pattern-hit scratch handed to the matcher.
    hits_buf: Vec<bool>,
    /// Register-column scratch for `run_program_batch`.
    cols_buf: Vec<Value>,
    /// Result-column scratch for `run_program_batch`.
    out_buf: Vec<Value>,
}

/// One running query instance.
pub struct RunningQuery {
    name: String,
    id: QueryId,
    paused: bool,
    mode: ExecMode,
    /// Retained build config, so [`Self::replicas`] can reconstruct
    /// plan-identical instances for the key-partitioned runtime.
    config: QueryConfig,
    /// `Some` when this instance is one replica of a key-partitioned query:
    /// it owns only the groups hashing to its slice and skips every other
    /// row before field programs and state folding.
    partition: Option<Partition>,
    checked: CheckedQuery,
    plan: QueryPlan,
    globals: GlobalFilter,
    matcher: Option<MultiMatcher>,
    window: Option<WindowDriver>,
    patterns: Vec<PatternMatcher>,
    state: Option<StateMaintainer>,
    invariant: Option<InvariantRuntime>,
    /// Interpreter-mode group-key expressions (pre-built once).
    interp_keys: Vec<Expr>,
    distinct_seen: HashSet<Vec<String>>,
    errors: ErrorReporter,
    overflow_reported: bool,
    stats: QueryStats,
    /// Reusable register file for program execution.
    scratch: Vec<Value>,
    /// Reusable per-event buffers (window ids, key atoms, field values) —
    /// the stateful hot path allocates nothing once warm.
    windows_buf: Vec<u64>,
    key_buf: Vec<KeyAtom>,
    fold_buf: Vec<Value>,
    /// Batched-execution state for the current batch (column indices into
    /// the group's [`BatchCache`] plus stateful precomputation).
    batch: BatchState,
    /// Cluster-stage buffers (DBSCAN working set, comparison points)
    /// recycled across window closes.
    cluster_scratch: ClusterScratch,
}

impl RunningQuery {
    /// Build a running instance from a checked query.
    pub fn new(name: impl Into<String>, checked: CheckedQuery, config: QueryConfig) -> Self {
        let plan = QueryPlan::compile(&checked);
        let plan_scratch = plan.scratch_regs;
        let globals = GlobalFilter::compile(&checked.ast.globals);
        let slot_names: Vec<String> = plan.entity_vars.iter().map(|(v, _)| v.clone()).collect();
        let patterns: Vec<PatternMatcher> = checked
            .ast
            .patterns
            .iter()
            .map(|p| PatternMatcher::compile(p, &slot_names))
            .collect();
        let matcher = (checked.kind == QueryKind::Rule)
            .then(|| MultiMatcher::compile(&checked.ast, config.partial_match_cap));
        let window = checked
            .window
            .map(|w| WindowDriver::with_lateness(w, config.allowed_lateness));
        let state = checked.ast.states.first().map(StateMaintainer::new);
        let invariant = checked.ast.invariants.first().map(|block| {
            InvariantRuntime::new(
                block,
                checked
                    .resolved
                    .invariant_stmts
                    .iter()
                    .map(|s| (s.slot, s.init))
                    .collect(),
                checked.resolved.invariant_vars.len(),
            )
        });
        let interp_keys: Vec<Expr> = checked
            .ast
            .states
            .first()
            .map(|s| {
                s.group_by
                    .iter()
                    .map(|gk| {
                        Expr::Ref(Ref {
                            base: gk.var.clone(),
                            index: None,
                            attr: gk.attr.clone(),
                            span: gk.span,
                        })
                    })
                    .collect()
            })
            .unwrap_or_default();
        RunningQuery {
            name: name.into(),
            id: QueryId::UNASSIGNED,
            paused: false,
            mode: config.exec,
            config,
            partition: None,
            checked,
            plan,
            globals,
            matcher,
            window,
            patterns,
            state,
            invariant,
            interp_keys,
            distinct_seen: HashSet::new(),
            errors: ErrorReporter::default(),
            overflow_reported: false,
            stats: QueryStats::default(),
            // Sized for the largest program up front (`run_program` only
            // ever resizes within this capacity).
            scratch: Vec::with_capacity(plan_scratch),
            windows_buf: Vec::new(),
            key_buf: Vec::new(),
            fold_buf: Vec::new(),
            batch: BatchState::default(),
            cluster_scratch: ClusterScratch::default(),
        }
    }

    /// Compile SAQL text directly into a running query.
    pub fn compile(
        name: impl Into<String>,
        source: &str,
        config: QueryConfig,
    ) -> Result<Self, saql_lang::LangError> {
        Ok(RunningQuery::new(name, saql_lang::compile(source)?, config))
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    /// The engine-assigned id ([`QueryId::UNASSIGNED`] for standalone
    /// instances). Stamped onto every alert this query emits.
    pub fn id(&self) -> QueryId {
        self.id
    }

    /// Assign the control-plane id (done once, at registration).
    pub fn set_id(&mut self, id: QueryId) {
        self.id = id;
    }

    /// Whether the query is detached from the stream (sees no events, no
    /// time, emits nothing) until resumed.
    pub fn is_paused(&self) -> bool {
        self.paused
    }

    /// Pause or resume this query. While paused a query's windows do not
    /// advance; events arriving during the pause are simply never seen.
    pub fn set_paused(&mut self, paused: bool) {
        self.paused = paused;
    }

    pub fn kind(&self) -> QueryKind {
        self.checked.kind
    }

    /// The execution strategy this instance runs with.
    pub fn exec_mode(&self) -> ExecMode {
        self.mode
    }

    /// The compiled execution plan (slot tables + programs).
    pub fn plan(&self) -> &QueryPlan {
        &self.plan
    }

    /// Scheduler-compatibility key (see
    /// [`saql_lang::semantic::CheckedQuery::compat_key`]).
    pub fn compat_key(&self) -> &str {
        &self.checked.compat_key
    }

    /// Upstream query whose alert stream this query consumes (`from query
    /// NAME`), if this is a pipeline stage.
    pub fn pipeline_input(&self) -> Option<&str> {
        self.checked
            .pipeline_input
            .as_ref()
            .map(|(n, _)| n.as_str())
    }

    /// Span of the `from query` clause within this query's source, for
    /// error reporting against the stage text.
    pub fn pipeline_input_span(&self) -> Option<saql_lang::Span> {
        self.checked.pipeline_input.as_ref().map(|(_, s)| *s)
    }

    /// Whether `event` advances this query's clock. Base queries run on
    /// stream time (every event). A pipeline stage runs on *its upstream's*
    /// time: only that upstream's adapted alert events (including watermark
    /// punctuations) tick the clock, so its windows close exactly as they
    /// would in a dedicated engine fed only the upstream's alerts —
    /// interleaved raw events never close a stage window early.
    pub fn accepts_time(&self, event: &saql_model::Event) -> bool {
        match &self.checked.pipeline_input {
            None => true,
            Some((up, _)) => {
                event.op == saql_model::Operation::Alert && &*event.subject.exe_name == up.as_str()
            }
        }
    }

    pub fn stats(&self) -> QueryStats {
        self.stats
    }

    // ------------------------------------------------------------------
    // Key-partitioned execution
    // ------------------------------------------------------------------

    /// The partitionability analysis: whether this query's state is keyed
    /// *purely* by its group key, so its groups can be hash-sharded across
    /// workers with no cross-shard coupling. `Err` carries the reason the
    /// query must stay group-sharded — `saql explain` reports it verbatim.
    ///
    /// The plan-shape half of the analysis lives with the plan
    /// ([`QueryPlan::key_partition_safe`]); this adds the query-level
    /// conditions the plan cannot see (kind, distinct, pipeline role,
    /// execution mode).
    pub fn partition_decision(&self) -> Result<(), &'static str> {
        if self.checked.kind == QueryKind::Rule {
            return Err("rule queries key partial matches by bindings, not group key");
        }
        if self.checked.pipeline_input.is_some() {
            return Err("pipeline stages run on upstream alert time");
        }
        if self.checked.ast.ret.as_ref().is_some_and(|r| r.distinct) {
            return Err("`return distinct` dedups across all groups");
        }
        if self.mode == ExecMode::Interpreted {
            return Err("interpreter oracle runs per event, unpartitioned");
        }
        self.plan.key_partition_safe()
    }

    /// Mark this instance as one replica of a key-partitioned query (the
    /// parallel runtime hosts one replica per worker). Only meaningful when
    /// [`partition_decision`](Self::partition_decision) allows it.
    pub fn set_partition(&mut self, index: u32, of: u32) {
        self.partition = Some(Partition { index, of });
    }

    /// This instance's partition slice, when it is a partitioned replica.
    pub fn partition(&self) -> Option<Partition> {
        self.partition
    }

    /// Build the `n` partitioned replicas of this query: plan-identical
    /// instances sharing its id, name, and paused state, each restored with
    /// the disjoint slice of dynamic state its partition owns (so a resumed
    /// query re-splits exactly) and stamped with its slice.
    pub fn replicas(&self, n: usize) -> Vec<RunningQuery> {
        let n = n.max(1);
        self.snapshot()
            .split(n)
            .into_iter()
            .enumerate()
            .map(|(i, part)| {
                let mut replica =
                    RunningQuery::new(self.name.clone(), self.checked.clone(), self.config);
                replica.set_id(self.id);
                replica.set_paused(self.paused);
                replica.set_partition(i as u32, n as u32);
                replica.restore(part);
                replica
            })
            .collect()
    }

    /// Whether this instance owns batch row `row` (valid after
    /// [`prepare_batch`](Self::prepare_batch)). Non-partitioned queries own
    /// every row; a partitioned replica owns exactly the rows whose group
    /// key hashes to its slice — the scheduler skips delivery (and the
    /// delivery counter) for the rest, so each row folds on one shard.
    pub(crate) fn owns_row(&self, row: usize) -> bool {
        match self.partition {
            None => true,
            Some(p) => self
                .batch
                .pre
                .owner
                .get(row)
                .map_or(p.index == 0, |&o| o == p.index),
        }
    }

    /// Per-event counterpart of [`owns_row`](Self::owns_row) for the
    /// unbatched path (latency tracking): resolve the event's group key and
    /// test the routing hash. Events that fail the global gate, match no
    /// pattern, or have an unresolvable key belong to replica 0, mirroring
    /// the batched owner column.
    pub(crate) fn owns_event(&mut self, event: &SharedEvent) -> bool {
        let Some(p) = self.partition else { return true };
        if !self.globals.accepts(event) {
            return p.index == 0;
        }
        let Some(idx) = self.patterns.iter().position(|pat| pat.matches(event)) else {
            return p.index == 0;
        };
        let plan = &self.plan;
        let mut ev_slots: Vec<Option<&saql_model::Event>> = vec![None; plan.aliases.len()];
        let mut ent_slots: Vec<Option<EntityBind<'_>>> = vec![None; plan.entity_vars.len()];
        ev_slots[idx] = Some(event.as_ref());
        let (subject_slot, object_slot) = plan.pattern_slots[idx];
        ent_slots[subject_slot] = Some(EntityBind::Subject(&event.subject));
        ent_slots[object_slot] = Some(EntityBind::Entity(&event.object));
        if !extract_keys(plan, &ev_slots, &ent_slots, &mut self.key_buf) {
            return p.index == 0;
        }
        partition_of(&self.key_buf, p.of as usize) as u32 == p.index
    }

    pub fn errors(&self) -> &ErrorReporter {
        &self.errors
    }

    /// Capture all of this query's dynamic state at the current stream
    /// position (engine checkpoints). Everything static — patterns, plans,
    /// programs — is recompiled from the retained query source on resume;
    /// the snapshot carries only what events have built up. Batch-transient
    /// scratch is excluded: checkpoints are taken at batch boundaries,
    /// where it is dead. Error history is intentionally not checkpointed —
    /// it is diagnostics, not stream state.
    pub fn snapshot(&self) -> QuerySnapshot {
        let mut distinct_seen: Vec<Vec<String>> = self.distinct_seen.iter().cloned().collect();
        distinct_seen.sort();
        QuerySnapshot {
            matcher: self.matcher.as_ref().map(MultiMatcher::snapshot),
            window: self.window.as_ref().map(WindowDriver::snapshot),
            state: self.state.as_ref().map(StateMaintainer::snapshot),
            invariant: self.invariant.as_ref().map(InvariantRuntime::snapshot),
            distinct_seen,
            stats: self.stats,
            overflow_reported: self.overflow_reported,
        }
    }

    /// Restore the state captured by [`snapshot`](Self::snapshot) onto a
    /// freshly compiled instance of the same query source and config. After
    /// this, feeding the stream suffix from the checkpoint position yields
    /// exactly the alerts the uninterrupted run would have produced.
    pub fn restore(&mut self, snap: QuerySnapshot) {
        if let (Some(m), Some(s)) = (self.matcher.as_mut(), snap.matcher) {
            m.restore(s);
        }
        if let (Some(w), Some(s)) = (self.window.as_mut(), snap.window) {
            w.restore(s);
        }
        if let (Some(st), Some(s)) = (self.state.as_mut(), snap.state) {
            st.restore(s);
        }
        if let (Some(inv), Some(s)) = (self.invariant.as_mut(), snap.invariant) {
            inv.restore(s);
        }
        self.distinct_seen = snap.distinct_seen.into_iter().collect();
        self.stats = snap.stats;
        self.overflow_reported = snap.overflow_reported;
    }

    /// Whether the event matches any of this query's pattern shapes —
    /// what the scheduler's master check performs once per group
    /// (constraint-free: dependents apply their own constraints).
    pub fn shape_matches(&self, event: &saql_model::Event) -> bool {
        self.patterns.iter().any(|p| p.shape_matches(event))
    }

    /// Combined shape mask over all patterns: bit `c` set iff an event with
    /// shape code `c` would pass [`Self::shape_matches`]. The batched master
    /// check tests this against the view's shape column.
    pub fn shape_mask(&self) -> u64 {
        self.patterns.iter().fold(0, |m, p| m | p.shape_mask())
    }

    /// Advance event time: closes due windows and may emit window alerts.
    /// Cheap when no window is due (one comparison).
    pub fn advance_time(&mut self, ts: Timestamp) -> Vec<Alert> {
        let Some(driver) = &mut self.window else {
            return Vec::new();
        };
        let due = driver.advance(ts);
        let mut alerts = Vec::new();
        for k in due {
            self.close_window(k, &mut alerts);
        }
        alerts
    }

    /// Process the event payload (global constraints, pattern matching,
    /// state folding). Does *not* advance time — callers pair this with
    /// [`Self::advance_time`] (the scheduler advances time for every event
    /// but offers payloads only to shape-matching groups).
    pub fn process_payload(&mut self, event: &SharedEvent) -> Vec<Alert> {
        self.stats.events_seen += 1;
        if !self.globals.accepts(event) {
            return Vec::new();
        }
        match self.checked.kind {
            QueryKind::Rule => self.process_rule(event),
            _ => {
                self.process_stateful(event);
                Vec::new()
            }
        }
    }

    /// Full per-event processing: time then payload.
    pub fn process(&mut self, event: &SharedEvent) -> Vec<Alert> {
        let mut alerts = self.advance_time(event.ts);
        alerts.extend(self.process_payload(event));
        alerts
    }

    // ------------------------------------------------------------------
    // Batched execution
    // ------------------------------------------------------------------

    /// Resolve this query's predicate columns against the group's shared
    /// [`BatchCache`] (computing any missing ones) and precompute the
    /// watermark-independent stateful work for the batch: pattern dispatch,
    /// group keys, and field-program values, all evaluated column-wise.
    ///
    /// Must be called once per batch, after [`BatchCache::begin_batch`] and
    /// before any [`Self::process_payload_row`] for that batch.
    pub(crate) fn prepare_batch(&mut self, view: &BatchView<'_>, cache: &mut BatchCache) {
        self.batch.glob_idx = cache.glob_column(&self.globals, view);
        self.batch.pat_idx.clear();
        for p in &self.patterns {
            self.batch.pat_idx.push(cache.pat_column(p, view));
        }
        if self.checked.kind == QueryKind::Rule || self.mode == ExecMode::Interpreted {
            return;
        }

        // Stateful compiled path: precompute everything the per-row drive
        // loop needs except window assignment (which depends on the
        // watermark advancing mid-batch).
        let n = view.len();
        let plan = &self.plan;
        let pre = &mut self.batch.pre;
        pre.slot.clear();
        pre.slot.resize(n, u32::MAX);
        for (k, &ci) in self.batch.pat_idx.iter().enumerate() {
            let col = cache.pat(ci);
            for (row, s) in pre.slot.iter_mut().enumerate() {
                if *s == u32::MAX && col[row] {
                    *s = k as u32;
                }
            }
        }

        // Compact the surviving rows (glob-accepted, some pattern matched),
        // extracting group keys as we go. A partitioned replica resolves
        // every row's owner here and keeps only its own rows, so field
        // programs and state folding below pay ~1/N of the serial work —
        // this early exclusion *is* the data parallelism. Keys are padded
        // when unresolvable so row-major indexing stays aligned; such rows
        // report instead of observing, and belong to replica 0 so the
        // serial run's single error is reported exactly once.
        let glob = cache.glob(self.batch.glob_idx);
        let events = view.events();
        let nk = plan.group_keys.len();
        let n_ev = plan.aliases.len();
        let n_ent = plan.entity_vars.len();
        let mut ev_slots: Vec<Option<&saql_model::Event>> = vec![None; n_ev];
        let mut ent_slots: Vec<Option<EntityBind<'_>>> = vec![None; n_ent];
        let part = self.partition;
        let mut rows: Vec<EventRow<'_>> = Vec::new();
        pre.pos.clear();
        pre.keys.clear();
        pre.key_ok.clear();
        pre.owner.clear();
        for (row, s) in pre.slot.iter().enumerate() {
            if *s == u32::MAX || !glob[row] {
                pre.pos.push(u32::MAX);
                pre.owner.push(0);
                continue;
            }
            let idx = *s as usize;
            let (subject_slot, object_slot) = plan.pattern_slots[idx];
            let event = events[row].as_ref();
            ev_slots.iter_mut().for_each(|s| *s = None);
            ent_slots.iter_mut().for_each(|s| *s = None);
            ev_slots[idx] = Some(event);
            ent_slots[subject_slot] = Some(EntityBind::Subject(&event.subject));
            ent_slots[object_slot] = Some(EntityBind::Entity(&event.object));
            let ok = extract_keys(plan, &ev_slots, &ent_slots, &mut self.key_buf);
            if let Some(p) = part {
                let owner = if ok {
                    partition_of(&self.key_buf, p.of as usize) as u32
                } else {
                    0
                };
                pre.owner.push(owner);
                if owner != p.index {
                    pre.pos.push(u32::MAX);
                    continue;
                }
            } else {
                pre.owner.push(0);
            }
            pre.pos.push(rows.len() as u32);
            rows.push(EventRow {
                event,
                ev_slot: idx,
                subject_slot,
                object_slot,
            });
            pre.key_ok.push(ok);
            if ok {
                pre.keys.append(&mut self.key_buf);
            } else {
                pre.keys
                    .extend(std::iter::repeat_with(|| KeyAtom::Int(0)).take(nk));
            }
        }

        // Field programs, batch-at-a-time over the compact rows, scattered
        // row-major.
        let nf = plan.field_programs.len();
        pre.fields.clear();
        pre.fields.resize(rows.len() * nf, Value::Missing);
        for (f, prog) in plan.field_programs.iter().enumerate() {
            run_program_batch(
                prog,
                &rows,
                &mut self.batch.cols_buf,
                &mut self.batch.out_buf,
            );
            for (r, v) in self.batch.out_buf.drain(..).enumerate() {
                pre.fields[r * nf + f] = v;
            }
        }
    }

    /// Batched counterpart of [`Self::process_payload`]: process row `row`
    /// of the batch this query was [prepared](Self::prepare_batch) for,
    /// reading predicate columns from the group's shared cache instead of
    /// re-probing the event.
    pub(crate) fn process_payload_row(
        &mut self,
        event: &SharedEvent,
        row: usize,
        cache: &BatchCache,
    ) -> Vec<Alert> {
        self.stats.events_seen += 1;
        if !cache.glob(self.batch.glob_idx)[row] {
            return Vec::new();
        }
        match self.checked.kind {
            QueryKind::Rule => {
                let mut hits = std::mem::take(&mut self.batch.hits_buf);
                hits.clear();
                hits.extend(self.batch.pat_idx.iter().map(|&ci| cache.pat(ci)[row]));
                let matcher = self.matcher.as_mut().expect("rule queries have a matcher");
                let fulls = matcher.feed_with_hits(event, &hits);
                self.batch.hits_buf = hits;
                self.process_rule_core(fulls)
            }
            _ => {
                match self.mode {
                    ExecMode::Compiled => self.process_stateful_row(event, row),
                    // Interpreter oracle: no columnar programs, fall back
                    // per event past the cached global gate.
                    ExecMode::Interpreted => self.process_stateful(event),
                }
                Vec::new()
            }
        }
    }

    /// Stateful drive step for one batch row: window assignment and state
    /// folding off the precomputed dispatch/keys/fields.
    fn process_stateful_row(&mut self, event: &SharedEvent, row: usize) {
        // `pos == MAX` covers rows that matched no pattern *and* rows a
        // partitioned replica does not own (the scheduler skips the latter
        // via `owns_row`; this guard keeps direct callers safe too).
        if self.batch.pre.pos[row] == u32::MAX {
            return;
        }
        self.stats.events_matched += 1;
        let Some(driver) = &mut self.window else {
            return;
        };
        driver.observe_into(event.ts, &mut self.windows_buf);
        if self.windows_buf.is_empty() {
            self.stats.late_events += 1;
            return;
        }
        let Some(state) = &mut self.state else { return };
        let pre = &self.batch.pre;
        let pos = pre.pos[row] as usize;
        if pre.key_ok[pos] {
            let nk = self.plan.group_keys.len();
            let nf = self.plan.field_programs.len();
            state.observe(
                &self.windows_buf,
                &pre.keys[pos * nk..(pos + 1) * nk],
                &pre.fields[pos * nf..(pos + 1) * nf],
            );
        } else {
            self.errors.report(EngineError::Eval(format!(
                "group key of state `{}` unresolvable for event {}",
                state.name(),
                event.id
            )));
        }
    }

    /// End of stream: close all remaining windows.
    pub fn finish(&mut self) -> Vec<Alert> {
        let mut alerts = Vec::new();
        if let Some(driver) = &mut self.window {
            for k in driver.drain() {
                self.close_window(k, &mut alerts);
            }
        }
        alerts
    }

    // ------------------------------------------------------------------
    // Rule pipeline
    // ------------------------------------------------------------------

    fn process_rule(&mut self, event: &SharedEvent) -> Vec<Alert> {
        let matcher = self.matcher.as_mut().expect("rule queries have a matcher");
        let fulls = matcher.feed(event);
        self.process_rule_core(fulls)
    }

    /// Everything after the matcher probe — shared by the per-event path
    /// ([`Self::process_rule`]) and the batched path, which feeds the
    /// matcher off precomputed pattern columns.
    fn process_rule_core(&mut self, fulls: Vec<FullMatch>) -> Vec<Alert> {
        let (overflowed, live) = {
            let matcher = self.matcher.as_ref().expect("rule queries have a matcher");
            (matcher.overflowed(), matcher.live_partials())
        };
        if overflowed && !self.overflow_reported {
            self.overflow_reported = true;
            self.errors.report(EngineError::PartialMatchOverflow {
                query: self.name.clone(),
                cap: live.max(1),
            });
        }
        if fulls.is_empty() {
            return Vec::new();
        }
        self.stats.events_matched += 1;
        let mut alerts = Vec::new();
        for full in fulls {
            if let Some(alert) = self.alert_from_match(&full) {
                alerts.push(alert);
            }
        }
        self.stats.alerts += alerts.len() as u64;
        alerts
    }

    fn alert_from_match(&mut self, full: &FullMatch) -> Option<Alert> {
        let rows = match self.mode {
            ExecMode::Compiled => {
                let events: Vec<Option<&saql_model::Event>> =
                    full.events.iter().map(|e| Some(e.as_ref())).collect();
                let entities: Vec<Option<EntityBind<'_>>> = full
                    .bindings
                    .iter()
                    .map(|b| b.as_ref().map(EntityBind::Entity))
                    .collect();
                let ctx = ExecCtx {
                    events: &events,
                    entities: &entities,
                    group_keys: &[],
                    states: &NoSlots,
                    invariants: &[],
                    cluster: None,
                };
                if let Some(prog) = &self.plan.alert {
                    if !run_program(prog, &ctx, &mut self.scratch).truthy() {
                        return None;
                    }
                }
                self.plan
                    .ret
                    .iter()
                    .map(|(label, prog)| {
                        (
                            label.clone(),
                            run_program(prog, &ctx, &mut self.scratch).to_string(),
                        )
                    })
                    .collect()
            }
            ExecMode::Interpreted => {
                let mut scope = Scope::empty();
                for (pattern, event) in self.checked.ast.patterns.iter().zip(&full.events) {
                    scope.events.insert(pattern.alias.as_str(), event);
                }
                for ((var, _), entity) in self.plan.entity_vars.iter().zip(&full.bindings) {
                    if let Some(entity) = entity {
                        scope.entities.insert(var.as_str(), entity);
                    }
                }
                if let Some(alert_expr) = &self.checked.ast.alert {
                    if !eval(alert_expr, &scope).truthy() {
                        return None;
                    }
                }
                eval_return_in(&self.checked.ast.ret, &scope, "")
            }
        };
        if !pass_distinct_in(
            &mut self.distinct_seen,
            self.checked.ast.ret.as_ref(),
            &rows,
        ) {
            return None;
        }
        let last_ts = full
            .events
            .iter()
            .map(|e| e.ts)
            .max()
            .unwrap_or(Timestamp::ZERO);
        Some(Alert {
            query: self.name.clone(),
            query_id: self.id,
            ts: last_ts,
            origin: AlertOrigin::Match {
                event_ids: full.events.iter().map(|e| e.id).collect(),
            },
            rows,
        })
    }

    // ------------------------------------------------------------------
    // Stateful pipeline
    // ------------------------------------------------------------------

    fn process_stateful(&mut self, event: &SharedEvent) {
        /// Slot counts up to this bind on the stack; larger queries fall
        /// back to a heap array (rare: >8 aliases or variables).
        const SLOT_STACK: usize = 8;

        let Some(idx) = self.patterns.iter().position(|p| p.matches(event)) else {
            return;
        };
        self.stats.events_matched += 1;
        let Some(driver) = &mut self.window else {
            return;
        };
        driver.observe_into(event.ts, &mut self.windows_buf);
        if self.windows_buf.is_empty() {
            self.stats.late_events += 1;
            return;
        }
        let Some(state) = &mut self.state else { return };
        let plan = &self.plan;
        let scratch = &mut self.scratch;
        let key_buf = &mut self.key_buf;
        let fold_buf = &mut self.fold_buf;
        let resolved = match self.mode {
            ExecMode::Compiled => {
                // Fixed slot arrays (stack-allocated for typical sizes);
                // the subject binds straight from the event — no `Entity`
                // clone, no `HashMap`, no string on the hot path.
                let (n_ev, n_ent) = (plan.aliases.len(), plan.entity_vars.len());
                let mut ev_stack: [Option<&saql_model::Event>; SLOT_STACK] = [None; SLOT_STACK];
                let mut ent_stack: [Option<EntityBind<'_>>; SLOT_STACK] = [None; SLOT_STACK];
                let mut ev_heap: Vec<Option<&saql_model::Event>>;
                let mut ent_heap: Vec<Option<EntityBind<'_>>>;
                let (events, entities) = if n_ev <= SLOT_STACK && n_ent <= SLOT_STACK {
                    (&mut ev_stack[..n_ev], &mut ent_stack[..n_ent])
                } else {
                    ev_heap = vec![None; n_ev];
                    ent_heap = vec![None; n_ent];
                    (ev_heap.as_mut_slice(), ent_heap.as_mut_slice())
                };
                events[idx] = Some(event.as_ref());
                let (subject_slot, object_slot) = plan.pattern_slots[idx];
                entities[subject_slot] = Some(EntityBind::Subject(&event.subject));
                entities[object_slot] = Some(EntityBind::Entity(&event.object));
                let ok = extract_keys(plan, events, entities, key_buf);
                if ok {
                    let ctx = ExecCtx {
                        events,
                        entities,
                        group_keys: &[],
                        states: &NoSlots,
                        invariants: &[],
                        cluster: None,
                    };
                    fold_buf.clear();
                    for prog in &plan.field_programs {
                        let v = run_program(prog, &ctx, scratch);
                        fold_buf.push(v);
                    }
                }
                ok
            }
            ExecMode::Interpreted => {
                let pattern = &self.checked.ast.patterns[idx];
                let subject_entity = Entity::Process(event.subject.clone());
                let mut scope = Scope::empty();
                scope.events.insert(pattern.alias.as_str(), event);
                scope
                    .entities
                    .insert(pattern.subject.var.as_str(), &subject_entity);
                scope
                    .entities
                    .insert(pattern.object.var.as_str(), &event.object);
                key_buf.clear();
                let mut ok = true;
                for expr in &self.interp_keys {
                    match eval(expr, &scope) {
                        Value::Attr(a) => key_buf.push(KeyAtom::of_owned(a)),
                        _ => {
                            ok = false;
                            break;
                        }
                    }
                }
                if ok {
                    fold_buf.clear();
                    let block = self
                        .checked
                        .ast
                        .states
                        .first()
                        .expect("stateful queries have a state block");
                    for field in &block.fields {
                        fold_buf.push(eval(&field.arg, &scope));
                    }
                }
                ok
            }
        };
        if resolved {
            // A partitioned replica folds only the groups it owns (the
            // scheduler already gates delivery via `owns_event`; this keeps
            // direct per-event callers consistent too).
            if let Some(p) = self.partition {
                if partition_of(key_buf, p.of as usize) as u32 != p.index {
                    return;
                }
            }
            state.observe(&self.windows_buf, key_buf, fold_buf);
        } else if self.partition.map_or(true, |p| p.index == 0) {
            self.errors.report(EngineError::Eval(format!(
                "group key of state `{}` unresolvable for event {}",
                state.name(),
                event.id
            )));
        }
    }

    fn close_window(&mut self, k: u64, alerts: &mut Vec<Alert>) {
        self.stats.windows_closed += 1;
        let Some(state) = &mut self.state else { return };
        let closed = state.close(k);
        if closed.is_empty() {
            return;
        }
        let state = &*state;
        let assigner = self
            .window
            .as_ref()
            .expect("stateful queries have a window")
            .assigner();
        let (w_start, w_end) = assigner.bounds(k);

        let mode = self.mode;
        let plan = &self.plan;
        let ast = &self.checked.ast;
        let scratch = &mut self.scratch;
        let cluster_scratch = &mut self.cluster_scratch;
        let mut inv_rt = self.invariant.as_mut();

        // Cluster stage: one comparison point per group that produced all
        // dimensions; outcomes align with `closed` by index. Working
        // buffers (DBSCAN visited flags/queue/neighbour lists, point
        // vectors) persist in `cluster_scratch` across closes.
        let mut outcomes: Vec<Option<ClusterOutcome>> = vec![None; closed.len()];
        if let Some(spec) = &ast.cluster {
            cluster_scratch.begin_close();
            for (i, group) in closed.iter().enumerate() {
                let ge = GroupEval::new(mode, plan, ast, state, k, group, None);
                if let Some(p) = ge.cluster_point(scratch) {
                    cluster_scratch.point_groups.push(i);
                    cluster_scratch.points.push(p);
                }
            }
            let labels = run_cluster_with(spec, k, cluster_scratch);
            for (i, outcome) in cluster_scratch.point_groups.iter().zip(labels) {
                outcomes[*i] = Some(outcome);
            }
        }

        for (i, group) in closed.iter().enumerate() {
            let ge = GroupEval::new(mode, plan, ast, state, k, group, outcomes[i]);

            // Invariant bookkeeping (training windows never alert).
            let (ready, inv_vars): (bool, Vec<Value>) = match inv_rt.as_deref_mut() {
                Some(inv) => {
                    let ready =
                        inv.on_window(&group.label, &mut |i, vars| ge.stmt(i, vars, scratch));
                    (ready, inv.vars(&group.label).to_vec())
                }
                None => (true, Vec::new()),
            };
            if !ready {
                continue;
            }

            // Alert condition; a stateful query without one emits every
            // group/window (continuous monitoring).
            let fired = ge.alert(&inv_vars, scratch).unwrap_or(true);
            if !fired {
                if let Some(inv) = inv_rt.as_deref_mut() {
                    inv.absorb_online(&group.label, &mut |i, vars| ge.stmt(i, vars, scratch));
                }
                continue;
            }
            let rows = ge.ret_rows(&inv_vars, scratch);
            if !pass_distinct_in(&mut self.distinct_seen, ast.ret.as_ref(), &rows) {
                continue;
            }
            self.stats.alerts += 1;
            alerts.push(Alert {
                query: self.name.clone(),
                query_id: self.id,
                ts: w_end,
                origin: AlertOrigin::Window {
                    start: w_start,
                    end: w_end,
                    group: group.label.clone(),
                },
                rows,
            });
        }
    }

    // ------------------------------------------------------------------
    // Explain
    // ------------------------------------------------------------------

    /// Human-readable dump of the compiled plan: resolved slots, predicate
    /// sets, and program listings (`saql explain`). Deterministic — the
    /// plan-dump golden tests diff this output.
    pub fn explain(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let plan = &self.plan;
        let _ = writeln!(out, "kind: {}", self.checked.kind.name());
        if let Some((up, _)) = &self.checked.pipeline_input {
            let _ = writeln!(out, "input: alert stream of query `{up}` (as `_in`)");
        }
        let _ = writeln!(out, "compat key: {}", self.compat_key());
        if let Some(w) = self.checked.window {
            let _ = writeln!(
                out,
                "window: size={}ms slide={}ms",
                w.size.as_millis(),
                w.slide.as_millis()
            );
        }
        if !self.globals.predicates().is_empty() {
            let _ = writeln!(out, "globals:");
            for pred in self.globals.predicates() {
                let _ = writeln!(out, "  {}", pred.render());
            }
        }
        let _ = writeln!(out, "slots:");
        for (i, alias) in plan.aliases.iter().enumerate() {
            let _ = writeln!(out, "  event[{i}] = {alias}");
        }
        for (i, (var, etype)) in plan.entity_vars.iter().enumerate() {
            let _ = writeln!(out, "  entity[{i}] = {var}: {}", etype.keyword());
        }
        let _ = writeln!(out, "patterns:");
        for (i, (ast_pat, matcher)) in self
            .checked
            .ast
            .patterns
            .iter()
            .zip(&self.patterns)
            .enumerate()
        {
            let ops: Vec<&str> = ast_pat.ops.iter().map(|o| o.keyword()).collect();
            let _ = writeln!(
                out,
                "  [{i}] {}: {} {}[s{}] {} {} {}[s{}]",
                ast_pat.alias,
                ast_pat.subject.etype.keyword(),
                ast_pat.subject.var,
                matcher.subject_slot,
                ops.join("||"),
                ast_pat.object.etype.keyword(),
                ast_pat.object.var,
                matcher.object_slot,
            );
            let (subject_preds, object_preds) = matcher.predicate_sets();
            for pred in subject_preds {
                let _ = writeln!(out, "      subject: {}", pred.render());
            }
            for pred in object_preds {
                let _ = writeln!(out, "      object:  {}", pred.render());
            }
        }
        if !plan.group_keys.is_empty() {
            let _ = writeln!(out, "group keys:");
            for (i, key) in plan.group_keys.iter().enumerate() {
                let source = match key.source {
                    saql_lang::resolve::KeySource::Entity { slot, attr } => format!(
                        "entity[{slot}].{}",
                        attr.map(|a| a.name()).unwrap_or("<unresolved>")
                    ),
                    saql_lang::resolve::KeySource::Event { slot, attr } => format!(
                        "event[{slot}].{}",
                        attr.map(|a| a.name()).unwrap_or("<unresolved>")
                    ),
                };
                let _ = writeln!(out, "  [{i}] {} <- {source}", key.spellings.join(" | "));
            }
        }
        if !plan.field_programs.is_empty() {
            let state_name = self
                .state
                .as_ref()
                .map(|s| s.name().to_string())
                .unwrap_or_default();
            let _ = writeln!(out, "state {state_name}:");
            for (name, prog) in plan.state_field_names.iter().zip(&plan.field_programs) {
                let _ = writeln!(out, "  field {name}:");
                let _ = write!(out, "{}", prog.listing(plan));
            }
        }
        if !plan.invariant_programs.is_empty() {
            let _ = writeln!(out, "invariant:");
            for (slot, init, prog) in &plan.invariant_programs {
                let var = plan
                    .invariant_vars
                    .get(*slot)
                    .map(String::as_str)
                    .unwrap_or("?");
                let op = if *init { ":=" } else { "=" };
                let _ = writeln!(out, "  {var} {op}");
                let _ = write!(out, "{}", prog.listing(plan));
            }
        }
        if !plan.cluster_programs.is_empty() {
            let _ = writeln!(out, "cluster points:");
            for prog in &plan.cluster_programs {
                let _ = write!(out, "{}", prog.listing(plan));
            }
        }
        if let Some(prog) = &plan.alert {
            let _ = writeln!(out, "alert:");
            let _ = write!(out, "{}", prog.listing(plan));
        }
        if !plan.ret.is_empty() {
            let _ = writeln!(out, "return:");
            for (label, prog) in &plan.ret {
                let _ = writeln!(out, "  item {label}:");
                let _ = write!(out, "{}", prog.listing(plan));
            }
        }
        let _ = writeln!(out, "vectorized:");
        let _ = writeln!(
            out,
            "  globals: fp={:016x} (column shared across compat group)",
            self.globals.fingerprint()
        );
        for (i, pattern) in self.patterns.iter().enumerate() {
            let _ = writeln!(
                out,
                "  pattern[{i}]: fp={:016x} (column shared across compat group)",
                pattern.fingerprint()
            );
        }
        match (self.checked.kind, self.mode) {
            (QueryKind::Rule, _) => {
                let _ = writeln!(out, "  matcher: probes driven off pattern columns");
            }
            (_, ExecMode::Compiled) => {
                let _ = writeln!(
                    out,
                    "  state: group keys + {} field program(s) batch-at-a-time",
                    plan.field_programs.len()
                );
            }
            (_, ExecMode::Interpreted) => {
                let _ = writeln!(out, "  state: per-event interpreter (oracle mode)");
            }
        }
        match self.partition_decision() {
            Ok(()) => {
                let _ = writeln!(
                    out,
                    "partitioned: yes (state keyed purely by {} group key(s); \
                     groups hash-shard across workers)",
                    plan.group_keys.len()
                );
            }
            Err(why) => {
                let _ = writeln!(out, "partitioned: no ({why})");
            }
        }
        out
    }
}

/// Extract the group-key values of a matched event from compiled slot
/// arrays into `out` (cleared first). `false` when any key is unresolvable
/// (unknown attribute, or a key variable this pattern does not bind) — the
/// event cannot be grouped.
fn extract_keys(
    plan: &QueryPlan,
    events: &[Option<&saql_model::Event>],
    entities: &[Option<EntityBind<'_>>],
    out: &mut Vec<KeyAtom>,
) -> bool {
    out.clear();
    for key in &plan.group_keys {
        let value = match key.source {
            saql_lang::resolve::KeySource::Entity { slot, attr } => attr.and_then(|id| {
                entities
                    .get(slot)
                    .copied()
                    .flatten()
                    .and_then(|e| e.attr_value(id))
            }),
            saql_lang::resolve::KeySource::Event { slot, attr } => attr.and_then(|id| {
                events
                    .get(slot)
                    .copied()
                    .flatten()
                    .and_then(|e| e.attr_value(id))
            }),
        };
        match value {
            Some(v) => out.push(KeyAtom::of_owned(v)),
            None => return false,
        }
    }
    true
}

/// Close-time evaluation of one group, dispatching to compiled programs or
/// the interpreter oracle.
struct GroupEval<'a> {
    mode: ExecMode,
    plan: &'a QueryPlan,
    ast: &'a Query,
    view: StateView<'a>,
    group: &'a ClosedGroup,
    cluster: Option<ClusterOutcome>,
}

impl<'a> GroupEval<'a> {
    fn new(
        mode: ExecMode,
        plan: &'a QueryPlan,
        ast: &'a Query,
        state: &'a StateMaintainer,
        k: u64,
        group: &'a ClosedGroup,
        cluster: Option<ClusterOutcome>,
    ) -> GroupEval<'a> {
        GroupEval {
            mode,
            plan,
            ast,
            view: StateView {
                maintainer: state,
                group: &group.key,
                current_window: k,
            },
            group,
            cluster,
        }
    }

    fn ctx<'b>(&'b self, invariants: &'b [Value]) -> ExecCtx<'b> {
        ExecCtx {
            events: &[],
            entities: &[],
            group_keys: &self.group.key_vals,
            states: &self.view,
            invariants,
            cluster: self.cluster,
        }
    }

    /// The interpreter's close-time scope: group-key spellings, the state
    /// view, invariant variables by name, and the cluster outcome.
    fn scope<'b>(&'b self, inv_vars: &[Value], with_cluster: bool) -> Scope<'b> {
        let mut scope = Scope::empty();
        scope.states = &self.view;
        for (key, value) in self.plan.group_keys.iter().zip(&self.group.key_vals) {
            for spelling in &key.spellings {
                scope.group_keys.insert(spelling.clone(), value.clone());
            }
        }
        scope.invariants = self
            .plan
            .invariant_vars
            .iter()
            .cloned()
            .zip(inv_vars.iter().cloned())
            .collect();
        scope.cluster = if with_cluster { self.cluster } else { None };
        scope
    }

    /// Evaluate invariant statement `i` with `vars` in scope.
    fn stmt(&self, i: usize, vars: &[Value], scratch: &mut Vec<Value>) -> Value {
        match self.mode {
            ExecMode::Compiled => {
                let (_, init, prog) = &self.plan.invariant_programs[i];
                if *init {
                    run_program(prog, &ExecCtx::empty(), scratch)
                } else {
                    run_program(prog, &self.ctx(vars), scratch)
                }
            }
            ExecMode::Interpreted => {
                let stmt = &self.ast.invariants[0].stmts[i];
                if stmt.init {
                    eval(&stmt.expr, &Scope::empty())
                } else {
                    eval(&stmt.expr, &self.scope(vars, true))
                }
            }
        }
    }

    /// Evaluate the cluster point (no invariants or outcomes in scope yet).
    fn cluster_point(&self, scratch: &mut Vec<Value>) -> Option<Vec<f64>> {
        match self.mode {
            ExecMode::Compiled => self
                .plan
                .cluster_programs
                .iter()
                .map(|prog| run_program(prog, &self.ctx(&[]), scratch).as_f64())
                .collect(),
            ExecMode::Interpreted => {
                let scope = self.scope(&[], false);
                self.ast
                    .cluster
                    .as_ref()
                    .expect("cluster point evaluation implies a cluster spec")
                    .points
                    .iter()
                    .map(|e| eval(e, &scope).as_f64())
                    .collect()
            }
        }
    }

    /// Evaluate the alert condition; `None` when the query declares none.
    fn alert(&self, inv_vars: &[Value], scratch: &mut Vec<Value>) -> Option<bool> {
        match self.mode {
            ExecMode::Compiled => self
                .plan
                .alert
                .as_ref()
                .map(|prog| run_program(prog, &self.ctx(inv_vars), scratch).truthy()),
            ExecMode::Interpreted => self
                .ast
                .alert
                .as_ref()
                .map(|expr| eval(expr, &self.scope(inv_vars, true)).truthy()),
        }
    }

    /// Evaluate the return rows (the group label when no clause exists).
    fn ret_rows(&self, inv_vars: &[Value], scratch: &mut Vec<Value>) -> Vec<(String, String)> {
        match self.mode {
            ExecMode::Compiled => {
                if self.plan.ret.is_empty() {
                    return vec![("group".to_string(), self.group.label.clone())];
                }
                let ctx = self.ctx(inv_vars);
                self.plan
                    .ret
                    .iter()
                    .map(|(label, prog)| {
                        (label.clone(), run_program(prog, &ctx, scratch).to_string())
                    })
                    .collect()
            }
            ExecMode::Interpreted => eval_return_in(
                &self.ast.ret,
                &self.scope(inv_vars, true),
                &self.group.label,
            ),
        }
    }
}

fn eval_return_in(
    ret: &Option<saql_lang::ast::ReturnClause>,
    scope: &Scope<'_>,
    group: &str,
) -> Vec<(String, String)> {
    match ret {
        Some(clause) => clause
            .items
            .iter()
            .map(|item| {
                let value = eval(&item.expr, scope);
                let label = match &item.alias {
                    Some(a) => a.clone(),
                    None => saql_lang::pretty::print_expr(&item.expr),
                };
                (label, value.to_string())
            })
            .collect(),
        None if !group.is_empty() => vec![("group".to_string(), group.to_string())],
        None => Vec::new(),
    }
}

fn pass_distinct_in(
    seen: &mut HashSet<Vec<String>>,
    ret: Option<&saql_lang::ast::ReturnClause>,
    rows: &[(String, String)],
) -> bool {
    if !ret.map(|r| r.distinct).unwrap_or(false) {
        return true;
    }
    let key: Vec<String> = rows.iter().map(|(_, v)| v.clone()).collect();
    seen.insert(key)
}

#[cfg(test)]
mod tests {
    use super::*;
    use saql_model::event::EventBuilder;
    use saql_model::{NetworkInfo, ProcessInfo};
    use std::sync::Arc;

    fn q(src: &str) -> RunningQuery {
        RunningQuery::compile("test-query", src, QueryConfig::default()).unwrap()
    }

    fn q_interp(src: &str) -> RunningQuery {
        RunningQuery::compile(
            "test-query",
            src,
            QueryConfig {
                exec: ExecMode::Interpreted,
                ..QueryConfig::default()
            },
        )
        .unwrap()
    }

    fn start(id: u64, ts: u64, host: &str, parent: (u32, &str), child: (u32, &str)) -> SharedEvent {
        Arc::new(
            EventBuilder::new(id, host, ts)
                .subject(ProcessInfo::new(parent.0, parent.1, "u"))
                .starts_process(ProcessInfo::new(child.0, child.1, "u"))
                .build(),
        )
    }

    fn send(
        id: u64,
        ts: u64,
        host: &str,
        proc_: (u32, &str),
        dst: &str,
        amount: u64,
    ) -> SharedEvent {
        Arc::new(
            EventBuilder::new(id, host, ts)
                .subject(ProcessInfo::new(proc_.0, proc_.1, "u"))
                .sends(NetworkInfo::new("10.0.0.2", 44000, dst, 443, "tcp"))
                .amount(amount)
                .build(),
        )
    }

    /// Regression: replicas open disjoint window subsets (only the windows
    /// their owned rows land in), so the merged snapshot must carry the
    /// *union* of open windows — not whichever replica's view arrives
    /// first. Taking-first silently dropped the other replicas' pending
    /// windows, losing their groups' close alerts after a resume.
    #[test]
    fn snapshot_merge_unions_replica_open_windows() {
        use crate::window::WindowSnapshot;
        let replica = |open: Vec<u64>, closed: u64| QuerySnapshot {
            matcher: None,
            window: Some(WindowSnapshot {
                watermark: saql_model::Timestamp::from_millis(320_000),
                open,
                closed,
            }),
            state: None,
            invariant: None,
            distinct_seen: Vec::new(),
            stats: QueryStats::default(),
            overflow_reported: false,
        };
        let merged = QuerySnapshot::merge(vec![
            replica(vec![], 3),
            replica(vec![5], 2),
            replica(vec![4, 6], 3),
        ])
        .unwrap();
        let window = merged.window.unwrap();
        assert_eq!(window.open, vec![4, 5, 6], "union of replica open sets");
        assert_eq!(window.closed, 3);
        assert_eq!(window.watermark.as_millis(), 320_000);
    }

    #[test]
    fn rule_query_emits_alert_with_rows() {
        for mut rq in [
            q(r#"proc p1["%cmd.exe"] start proc p2["%osql.exe"] as e1
return distinct p1, p2"#),
            q_interp(
                r#"proc p1["%cmd.exe"] start proc p2["%osql.exe"] as e1
return distinct p1, p2"#,
            ),
        ] {
            let alerts = rq.process(&start(1, 10, "db", (1, "cmd.exe"), (2, "osql.exe")));
            assert_eq!(alerts.len(), 1, "{:?}", rq.exec_mode());
            assert_eq!(alerts[0].get("p1"), Some("cmd.exe"));
            assert_eq!(alerts[0].get("p2"), Some("osql.exe"));
            assert!(matches!(alerts[0].origin, AlertOrigin::Match { .. }));
        }
    }

    #[test]
    fn distinct_suppresses_repeat_rows() {
        let mut rq = q(r#"proc p1["%cmd.exe"] start proc p2 as e1
return distinct p1, p2"#);
        assert_eq!(
            rq.process(&start(1, 10, "db", (1, "cmd.exe"), (2, "osql.exe")))
                .len(),
            1
        );
        // Different event id, same entity names: suppressed by distinct.
        assert_eq!(
            rq.process(&start(2, 20, "db", (1, "cmd.exe"), (3, "osql.exe")))
                .len(),
            0
        );
        // New process name: new row.
        assert_eq!(
            rq.process(&start(3, 30, "db", (1, "cmd.exe"), (4, "calc.exe")))
                .len(),
            1
        );
    }

    #[test]
    fn global_constraint_filters_hosts() {
        let mut rq = q("agentid = \"db-server\"\nproc p1 start proc p2 as e1\nreturn p1");
        assert!(rq
            .process(&start(1, 10, "client-1", (1, "a"), (2, "b")))
            .is_empty());
        assert_eq!(
            rq.process(&start(2, 20, "db-server", (1, "a"), (2, "b")))
                .len(),
            1
        );
    }

    /// The paper's Query 2 (SMA spike) end to end on a synthetic stream —
    /// on both execution paths.
    #[test]
    fn time_series_query_detects_spike() {
        let src = r#"proc p write ip i as evt #time(10 min)
state[3] ss {
    avg_amount := avg(evt.amount)
} group by p
alert (ss[0].avg_amount > (ss[0].avg_amount + ss[1].avg_amount + ss[2].avg_amount) / 3) && (ss[0].avg_amount > 10000)
return p, ss[0].avg_amount"#;
        for mut rq in [q(src), q_interp(src)] {
            let min = 60_000u64;
            let mut alerts = Vec::new();
            let mut id = 0;
            // Three quiet windows then a spike window for sqlservr.exe.
            for w in 0..4u64 {
                let amount = if w == 3 { 5_000_000 } else { 2_000 };
                for j in 0..5 {
                    id += 1;
                    alerts.extend(rq.process(&send(
                        id,
                        w * 10 * min + j * min,
                        "db",
                        (10, "sqlservr.exe"),
                        "10.0.0.9",
                        amount,
                    )));
                }
            }
            alerts.extend(rq.finish());
            assert_eq!(alerts.len(), 1, "{:?}: {alerts:?}", rq.exec_mode());
            let a = &alerts[0];
            assert!(
                matches!(&a.origin, AlertOrigin::Window { group, .. } if group == "sqlservr.exe")
            );
            assert_eq!(a.get("p"), Some("sqlservr.exe"));
            assert_eq!(a.get("ss[0].avg_amount"), Some("5000000.0"));
        }
    }

    #[test]
    fn time_series_stays_quiet_on_flat_traffic() {
        let mut rq = q(r#"proc p write ip i as evt #time(10 min)
state[3] ss { avg_amount := avg(evt.amount) } group by p
alert (ss[0].avg_amount > (ss[0].avg_amount + ss[1].avg_amount + ss[2].avg_amount) / 3) && (ss[0].avg_amount > 10000)
return p"#);
        let min = 60_000u64;
        let mut alerts = Vec::new();
        for w in 0..6u64 {
            for j in 0..5 {
                alerts.extend(rq.process(&send(
                    w * 100 + j,
                    w * 10 * min + j * min,
                    "db",
                    (10, "sqlservr.exe"),
                    "10.0.0.9",
                    2_000,
                )));
            }
        }
        alerts.extend(rq.finish());
        assert!(alerts.is_empty(), "{alerts:?}");
    }

    /// The paper's Query 3 (invariant) end to end — both execution paths.
    #[test]
    fn invariant_query_detects_unseen_child() {
        let src = r#"proc p1["%apache.exe"] start proc p2 as evt #time(10 s)
state ss { set_proc := set(p2.exe_name) } group by p1
invariant[3][offline] {
    a := empty_set
    a = a union ss.set_proc
}
alert |ss.set_proc diff a| > 0
return p1, ss.set_proc"#;
        for mut rq in [q(src), q_interp(src)] {
            let sec = 1_000u64;
            let mut alerts = Vec::new();
            let mut id = 0;
            // Training: 3 windows of normal children.
            for w in 0..3u64 {
                for child in ["php-cgi.exe", "rotatelogs.exe"] {
                    id += 1;
                    alerts.extend(rq.process(&start(
                        id,
                        w * 10 * sec + sec,
                        "web",
                        (80, "apache.exe"),
                        (100 + id as u32, child),
                    )));
                }
            }
            // Detection window with a normal child: quiet.
            id += 1;
            alerts.extend(rq.process(&start(
                id,
                3 * 10 * sec + sec,
                "web",
                (80, "apache.exe"),
                (900, "php-cgi.exe"),
            )));
            // Next window: the webshell.
            id += 1;
            alerts.extend(rq.process(&start(
                id,
                4 * 10 * sec + sec,
                "web",
                (80, "apache.exe"),
                (999, "cmd.exe"),
            )));
            alerts.extend(rq.finish());
            assert_eq!(alerts.len(), 1, "{:?}: {alerts:?}", rq.exec_mode());
            assert!(alerts[0].get("ss.set_proc").unwrap().contains("cmd.exe"));
        }
    }

    /// The paper's Query 4 (DBSCAN outlier) end to end — both paths.
    #[test]
    fn outlier_query_flags_exfiltration_ip() {
        let src = r#"proc p["%sqlservr.exe"] read || write ip i as evt #time(10 min)
state ss { amt := sum(evt.amount) } group by i.dstip
cluster(points=all(ss.amt), distance="ed", method="DBSCAN(100000, 5)")
alert cluster.outlier && ss.amt > 1000000
return i.dstip, ss.amt"#;
        for mut rq in [q(src), q_interp(src)] {
            let min = 60_000u64;
            let mut alerts = Vec::new();
            let mut id = 0;
            // 8 ordinary client ips with ~50KB each, one attacker with 2GB.
            for c in 0..8u32 {
                id += 1;
                alerts.extend(rq.process(&send(
                    id,
                    c as u64 * min,
                    "db",
                    (10, "sqlservr.exe"),
                    &format!("10.0.0.{}", 50 + c),
                    50_000,
                )));
            }
            id += 1;
            alerts.extend(rq.process(&send(
                id,
                9 * min,
                "db",
                (10, "sqlservr.exe"),
                "172.16.9.129",
                2_000_000_000,
            )));
            alerts.extend(rq.finish());
            assert_eq!(alerts.len(), 1, "{:?}: {alerts:?}", rq.exec_mode());
            assert_eq!(alerts[0].get("i.dstip"), Some("172.16.9.129"));
        }
    }

    #[test]
    fn stateful_query_without_alert_emits_every_window() {
        let mut rq = q("proc p write ip i as evt #time(1 min)\nstate ss { n := count() } group by p\nreturn p, ss[0].n");
        let mut alerts = Vec::new();
        for w in 0..3u64 {
            alerts.extend(rq.process(&send(w, w * 60_000 + 1, "db", (1, "x.exe"), "1.1.1.1", 10)));
        }
        alerts.extend(rq.finish());
        assert_eq!(alerts.len(), 3);
        assert!(alerts.iter().all(|a| a.get("ss[0].n") == Some("1")));
    }

    #[test]
    fn allowed_lateness_recovers_out_of_order_events() {
        let config = QueryConfig {
            allowed_lateness: saql_model::Duration::from_secs(30),
            ..QueryConfig::default()
        };
        let src = "proc p write ip i as evt #time(1 min)\nstate ss { n := count() } group by p\nreturn p, ss[0].n";
        // Event at 10s, then watermark jumps to 70s, then a straggler at 50s.
        let events = [
            send(1, 10_000, "h", (1, "x.exe"), "1.1.1.1", 5),
            send(2, 70_000, "h", (1, "x.exe"), "1.1.1.1", 5),
            send(3, 50_000, "h", (1, "x.exe"), "1.1.1.1", 5),
        ];
        // Without lateness the straggler is dropped.
        let mut strict = RunningQuery::compile("strict", src, QueryConfig::default()).unwrap();
        let mut strict_alerts = Vec::new();
        for e in &events {
            strict_alerts.extend(strict.process(e));
        }
        strict_alerts.extend(strict.finish());
        assert_eq!(strict.stats().late_events, 1);
        let w0 = strict_alerts
            .iter()
            .find(|a| a.ts == Timestamp::from_secs(60))
            .unwrap();
        assert_eq!(w0.get("ss[0].n"), Some("1"));

        // With 30s lateness the first window is still open at watermark 70s.
        let mut tolerant = RunningQuery::compile("tolerant", src, config).unwrap();
        let mut tolerant_alerts = Vec::new();
        for e in &events {
            tolerant_alerts.extend(tolerant.process(e));
        }
        tolerant_alerts.extend(tolerant.finish());
        assert_eq!(tolerant.stats().late_events, 0);
        let w0 = tolerant_alerts
            .iter()
            .find(|a| a.ts == Timestamp::from_secs(60))
            .unwrap();
        assert_eq!(w0.get("ss[0].n"), Some("2"));
    }

    #[test]
    fn stats_track_pipeline() {
        let mut rq = q("agentid = \"db\"\nproc p write ip i as evt #time(1 min)\nstate ss { n := count() } group by p\nalert ss[0].n > 100\nreturn p");
        rq.process(&send(1, 10, "db", (1, "x.exe"), "1.1.1.1", 10));
        rq.process(&send(2, 20, "other", (1, "x.exe"), "1.1.1.1", 10));
        rq.finish();
        let s = rq.stats();
        assert_eq!(s.events_seen, 2);
        assert_eq!(s.events_matched, 1);
        assert_eq!(s.windows_closed, 1);
        assert_eq!(s.alerts, 0);
    }

    #[test]
    fn shape_match_is_constraint_free() {
        let rq = q(r#"proc p1["%cmd.exe"] start proc p2["%osql.exe"] as e1
return p1"#);
        // Shape (proc start proc) matches even with different names...
        assert!(rq.shape_matches(&start(1, 1, "h", (1, "anything.exe"), (2, "else.exe"))));
        // ...but a different object type does not.
        assert!(!rq.shape_matches(&send(2, 2, "h", (1, "cmd.exe"), "1.1.1.1", 5)));
    }

    #[test]
    fn explain_lists_slots_predicates_and_programs() {
        let rq = q(r#"agentid = "db-server"
proc p write ip i as evt #time(10 min)
state[3] ss { avg_amount := avg(evt.amount) } group by p
alert ss[0].avg_amount > 10000
return p, ss[0].avg_amount"#);
        let shown = rq.explain();
        assert!(shown.contains("kind: time-series"), "{shown}");
        assert!(shown.contains("agentid LIKE \"db-server\""), "{shown}");
        assert!(shown.contains("entity[0] = p: proc"), "{shown}");
        assert!(shown.contains("group keys:"), "{shown}");
        assert!(
            shown.contains("p | p.exe_name <- entity[0].exe_name"),
            "{shown}"
        );
        assert!(shown.contains("state[0].0:avg_amount"), "{shown}");
        assert!(shown.contains("const 10000"), "{shown}");
        // Deterministic output (golden tests rely on it).
        assert_eq!(shown, rq.explain());
    }
}
