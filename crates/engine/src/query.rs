//! A compiled, running SAQL query: the per-query pipeline tying the
//! multievent matcher, window driver, state maintainer, invariant runtime,
//! cluster stage, and alert evaluator together.

use std::collections::{HashMap, HashSet};

use saql_lang::ast::Expr;
use saql_lang::pretty::print_expr;
use saql_lang::semantic::{CheckedQuery, QueryKind};
use saql_model::{Entity, Timestamp};
use saql_stream::SharedEvent;

use crate::alert::{Alert, AlertOrigin};
use crate::cluster::{point_of, run_cluster};
use crate::error::{EngineError, ErrorReporter};
use crate::eval::{eval, ClusterOutcome, Scope};
use crate::invariant::InvariantRuntime;
use crate::matcher::{FullMatch, GlobalFilter, MultiMatcher, PatternMatcher};
use crate::state::{StateMaintainer, StateView};
use crate::window::WindowDriver;

/// Handle to a registered query: the key of the engine's control plane.
///
/// Ids are assigned at registration ([`crate::Engine::register`]) and stay
/// valid for the engine's lifetime — they are never reused, even after the
/// query is deregistered. Every [`Alert`] carries the id of the query that
/// produced it, which is what makes per-query subscription routing possible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryId(usize);

impl QueryId {
    /// Placeholder carried by queries compiled outside an engine
    /// (standalone [`RunningQuery`]s in tests and benches).
    pub const UNASSIGNED: QueryId = QueryId(usize::MAX);

    /// An id from a raw registration index.
    pub fn new(index: usize) -> Self {
        QueryId(index)
    }

    /// The raw registration index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for QueryId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if *self == QueryId::UNASSIGNED {
            write!(f, "q#unassigned")
        } else {
            write!(f, "q#{}", self.0)
        }
    }
}

/// Tuning knobs for a running query.
#[derive(Debug, Clone, Copy)]
pub struct QueryConfig {
    /// Maximum live partial matches for the multievent matcher.
    pub partial_match_cap: usize,
    /// Out-of-order tolerance: windows stay open this long past their end
    /// so skewed agent feeds still land in their windows.
    pub allowed_lateness: saql_model::Duration,
}

impl Default for QueryConfig {
    fn default() -> Self {
        QueryConfig {
            partial_match_cap: 65_536,
            allowed_lateness: saql_model::Duration::ZERO,
        }
    }
}

/// Execution counters, exposed for the CLI and the benchmarks.
#[derive(Debug, Clone, Copy, Default)]
pub struct QueryStats {
    /// Events offered to the query (including globally filtered ones).
    pub events_seen: u64,
    /// Events that passed global constraints and matched some pattern.
    pub events_matched: u64,
    /// Windows closed.
    pub windows_closed: u64,
    /// Alerts emitted.
    pub alerts: u64,
    /// Events arriving after their windows already closed.
    pub late_events: u64,
}

/// One running query instance.
pub struct RunningQuery {
    name: String,
    id: QueryId,
    paused: bool,
    checked: CheckedQuery,
    globals: GlobalFilter,
    matcher: Option<MultiMatcher>,
    window: Option<WindowDriver>,
    patterns: Vec<PatternMatcher>,
    state: Option<StateMaintainer>,
    invariant: Option<InvariantRuntime>,
    distinct_seen: HashSet<Vec<String>>,
    errors: ErrorReporter,
    overflow_reported: bool,
    stats: QueryStats,
}

impl RunningQuery {
    /// Build a running instance from a checked query.
    pub fn new(name: impl Into<String>, checked: CheckedQuery, config: QueryConfig) -> Self {
        let globals = GlobalFilter::compile(&checked.ast.globals);
        let patterns: Vec<PatternMatcher> = checked
            .ast
            .patterns
            .iter()
            .map(PatternMatcher::compile)
            .collect();
        let matcher = (checked.kind == QueryKind::Rule)
            .then(|| MultiMatcher::compile(&checked.ast, config.partial_match_cap));
        let window = checked
            .window
            .map(|w| WindowDriver::with_lateness(w, config.allowed_lateness));
        let state = checked.ast.states.first().map(StateMaintainer::new);
        let invariant = checked.ast.invariants.first().map(InvariantRuntime::new);
        RunningQuery {
            name: name.into(),
            id: QueryId::UNASSIGNED,
            paused: false,
            checked,
            globals,
            matcher,
            window,
            patterns,
            state,
            invariant,
            distinct_seen: HashSet::new(),
            errors: ErrorReporter::default(),
            overflow_reported: false,
            stats: QueryStats::default(),
        }
    }

    /// Compile SAQL text directly into a running query.
    pub fn compile(
        name: impl Into<String>,
        source: &str,
        config: QueryConfig,
    ) -> Result<Self, saql_lang::LangError> {
        Ok(RunningQuery::new(name, saql_lang::compile(source)?, config))
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    /// The engine-assigned id ([`QueryId::UNASSIGNED`] for standalone
    /// instances). Stamped onto every alert this query emits.
    pub fn id(&self) -> QueryId {
        self.id
    }

    /// Assign the control-plane id (done once, at registration).
    pub fn set_id(&mut self, id: QueryId) {
        self.id = id;
    }

    /// Whether the query is detached from the stream (sees no events, no
    /// time, emits nothing) until resumed.
    pub fn is_paused(&self) -> bool {
        self.paused
    }

    /// Pause or resume this query. While paused a query's windows do not
    /// advance; events arriving during the pause are simply never seen.
    pub fn set_paused(&mut self, paused: bool) {
        self.paused = paused;
    }

    pub fn kind(&self) -> QueryKind {
        self.checked.kind
    }

    /// Scheduler-compatibility key (see
    /// [`saql_lang::semantic::CheckedQuery::compat_key`]).
    pub fn compat_key(&self) -> &str {
        &self.checked.compat_key
    }

    pub fn stats(&self) -> QueryStats {
        self.stats
    }

    pub fn errors(&self) -> &ErrorReporter {
        &self.errors
    }

    /// Whether the event matches any of this query's pattern shapes —
    /// what the scheduler's master check performs once per group
    /// (constraint-free: dependents apply their own constraints).
    pub fn shape_matches(&self, event: &saql_model::Event) -> bool {
        self.patterns.iter().any(|p| p.shape_matches(event))
    }

    /// Advance event time: closes due windows and may emit window alerts.
    /// Cheap when no window is due (one comparison).
    pub fn advance_time(&mut self, ts: Timestamp) -> Vec<Alert> {
        let Some(driver) = &mut self.window else {
            return Vec::new();
        };
        let due = driver.advance(ts);
        let mut alerts = Vec::new();
        for k in due {
            self.close_window(k, &mut alerts);
        }
        alerts
    }

    /// Process the event payload (global constraints, pattern matching,
    /// state folding). Does *not* advance time — callers pair this with
    /// [`Self::advance_time`] (the scheduler advances time for every event
    /// but offers payloads only to shape-matching groups).
    pub fn process_payload(&mut self, event: &SharedEvent) -> Vec<Alert> {
        self.stats.events_seen += 1;
        if !self.globals.accepts(event) {
            return Vec::new();
        }
        match self.checked.kind {
            QueryKind::Rule => self.process_rule(event),
            _ => {
                self.process_stateful(event);
                Vec::new()
            }
        }
    }

    /// Full per-event processing: time then payload.
    pub fn process(&mut self, event: &SharedEvent) -> Vec<Alert> {
        let mut alerts = self.advance_time(event.ts);
        alerts.extend(self.process_payload(event));
        alerts
    }

    /// End of stream: close all remaining windows.
    pub fn finish(&mut self) -> Vec<Alert> {
        let mut alerts = Vec::new();
        if let Some(driver) = &mut self.window {
            for k in driver.drain() {
                self.close_window(k, &mut alerts);
            }
        }
        alerts
    }

    // ------------------------------------------------------------------
    // Rule pipeline
    // ------------------------------------------------------------------

    fn process_rule(&mut self, event: &SharedEvent) -> Vec<Alert> {
        let matcher = self.matcher.as_mut().expect("rule queries have a matcher");
        let fulls = matcher.feed(event);
        if matcher.overflowed() && !self.overflow_reported {
            self.overflow_reported = true;
            let cap = matcher.live_partials().max(1);
            self.errors.report(EngineError::PartialMatchOverflow {
                query: self.name.clone(),
                cap,
            });
        }
        if fulls.is_empty() {
            return Vec::new();
        }
        self.stats.events_matched += 1;
        let mut alerts = Vec::new();
        for full in fulls {
            if let Some(alert) = self.alert_from_match(&full) {
                alerts.push(alert);
            }
        }
        self.stats.alerts += alerts.len() as u64;
        alerts
    }

    fn alert_from_match(&mut self, full: &FullMatch) -> Option<Alert> {
        let mut scope = Scope::empty();
        for (pattern, event) in self.checked.ast.patterns.iter().zip(&full.events) {
            scope.events.insert(pattern.alias.as_str(), event);
        }
        for (var, entity) in &full.bindings {
            scope.entities.insert(var.as_str(), entity);
        }
        // Optional alert condition on rule matches.
        if let Some(alert_expr) = &self.checked.ast.alert {
            if !eval(alert_expr, &scope).truthy() {
                return None;
            }
        }
        let rows = self.eval_return(&scope);
        if !self.pass_distinct(&rows) {
            return None;
        }
        let last_ts = full
            .events
            .iter()
            .map(|e| e.ts)
            .max()
            .unwrap_or(Timestamp::ZERO);
        Some(Alert {
            query: self.name.clone(),
            query_id: self.id,
            ts: last_ts,
            origin: AlertOrigin::Match {
                event_ids: full.events.iter().map(|e| e.id).collect(),
            },
            rows,
        })
    }

    // ------------------------------------------------------------------
    // Stateful pipeline
    // ------------------------------------------------------------------

    fn process_stateful(&mut self, event: &SharedEvent) {
        let Some(idx) = self.patterns.iter().position(|p| p.matches(event)) else {
            return;
        };
        self.stats.events_matched += 1;
        let Some(driver) = &mut self.window else {
            return;
        };
        let windows = driver.observe(event.ts);
        if windows.is_empty() {
            self.stats.late_events += 1;
            return;
        }
        let Some(state) = &mut self.state else { return };
        let pattern = &self.checked.ast.patterns[idx];
        let subject_entity = Entity::Process(event.subject.clone());
        let mut scope = Scope::empty();
        scope.events.insert(pattern.alias.as_str(), event);
        scope
            .entities
            .insert(pattern.subject.var.as_str(), &subject_entity);
        scope
            .entities
            .insert(pattern.object.var.as_str(), &event.object);
        if !state.observe(&windows, &scope) {
            self.errors.report(EngineError::Eval(format!(
                "group key of state `{}` unresolvable for event {}",
                state.name(),
                event.id
            )));
        }
    }

    fn close_window(&mut self, k: u64, alerts: &mut Vec<Alert>) {
        self.stats.windows_closed += 1;
        let Some(state) = &mut self.state else { return };
        let snaps = state.close(k);
        if snaps.is_empty() {
            return;
        }
        let state = &*state;
        let assigner = self
            .window
            .as_ref()
            .expect("stateful queries have a window")
            .assigner();
        let (w_start, w_end) = assigner.bounds(k);

        // Cluster stage: one comparison point per group that produced all
        // dimensions.
        let mut outcomes: HashMap<String, ClusterOutcome> = HashMap::new();
        if let Some(spec) = &self.checked.ast.cluster {
            let mut point_groups: Vec<&str> = Vec::new();
            let mut points: Vec<Vec<f64>> = Vec::new();
            for (gid, snap) in &snaps {
                let view = StateView {
                    maintainer: state,
                    group: gid,
                    current_window: k,
                };
                let mut scope = Scope::empty();
                scope.states = &view;
                scope.group_keys = snap
                    .keys
                    .iter()
                    .map(|(s, v)| (s.clone(), v.clone()))
                    .collect();
                if let Some(p) = point_of(spec, &scope) {
                    point_groups.push(gid);
                    points.push(p);
                }
            }
            for (gid, outcome) in point_groups.iter().zip(run_cluster(spec, &points, k)) {
                outcomes.insert((*gid).to_string(), outcome);
            }
        }

        for (gid, snap) in &snaps {
            let view = StateView {
                maintainer: state,
                group: gid,
                current_window: k,
            };
            let mut scope = Scope::empty();
            scope.states = &view;
            scope.group_keys = snap
                .keys
                .iter()
                .map(|(s, v)| (s.clone(), v.clone()))
                .collect();
            scope.cluster = outcomes.get(gid.as_str()).copied();

            // Invariant bookkeeping (training windows never alert).
            let ready = match &mut self.invariant {
                Some(inv) => {
                    let ready = inv.on_window(gid, &scope);
                    scope.invariants = inv.vars(gid);
                    ready
                }
                None => true,
            };
            if !ready {
                continue;
            }

            // Alert condition; a stateful query without one emits every
            // group/window (continuous monitoring).
            let fired = match &self.checked.ast.alert {
                Some(expr) => eval(expr, &scope).truthy(),
                None => true,
            };
            if !fired {
                if let Some(inv) = &mut self.invariant {
                    inv.absorb_online(gid, &scope);
                }
                continue;
            }
            let rows = eval_return_in(&self.checked.ast.ret, &scope, gid);
            if !pass_distinct_in(
                &mut self.distinct_seen,
                self.checked.ast.ret.as_ref(),
                &rows,
            ) {
                continue;
            }
            self.stats.alerts += 1;
            alerts.push(Alert {
                query: self.name.clone(),
                query_id: self.id,
                ts: w_end,
                origin: AlertOrigin::Window {
                    start: w_start,
                    end: w_end,
                    group: gid.clone(),
                },
                rows,
            });
        }
    }

    // ------------------------------------------------------------------
    // Return / distinct helpers
    // ------------------------------------------------------------------

    fn eval_return(&self, scope: &Scope<'_>) -> Vec<(String, String)> {
        eval_return_in(&self.checked.ast.ret, scope, "")
    }

    fn pass_distinct(&mut self, rows: &[(String, String)]) -> bool {
        pass_distinct_in(&mut self.distinct_seen, self.checked.ast.ret.as_ref(), rows)
    }
}

fn item_label(expr: &Expr, alias: &Option<String>) -> String {
    match alias {
        Some(a) => a.clone(),
        None => print_expr(expr),
    }
}

fn eval_return_in(
    ret: &Option<saql_lang::ast::ReturnClause>,
    scope: &Scope<'_>,
    group: &str,
) -> Vec<(String, String)> {
    match ret {
        Some(clause) => clause
            .items
            .iter()
            .map(|item| {
                let value = eval(&item.expr, scope);
                (item_label(&item.expr, &item.alias), value.to_string())
            })
            .collect(),
        None if !group.is_empty() => vec![("group".to_string(), group.to_string())],
        None => Vec::new(),
    }
}

fn pass_distinct_in(
    seen: &mut HashSet<Vec<String>>,
    ret: Option<&saql_lang::ast::ReturnClause>,
    rows: &[(String, String)],
) -> bool {
    if !ret.map(|r| r.distinct).unwrap_or(false) {
        return true;
    }
    let key: Vec<String> = rows.iter().map(|(_, v)| v.clone()).collect();
    seen.insert(key)
}

#[cfg(test)]
mod tests {
    use super::*;
    use saql_model::event::EventBuilder;
    use saql_model::{NetworkInfo, ProcessInfo};
    use std::sync::Arc;

    fn q(src: &str) -> RunningQuery {
        RunningQuery::compile("test-query", src, QueryConfig::default()).unwrap()
    }

    fn start(id: u64, ts: u64, host: &str, parent: (u32, &str), child: (u32, &str)) -> SharedEvent {
        Arc::new(
            EventBuilder::new(id, host, ts)
                .subject(ProcessInfo::new(parent.0, parent.1, "u"))
                .starts_process(ProcessInfo::new(child.0, child.1, "u"))
                .build(),
        )
    }

    fn send(
        id: u64,
        ts: u64,
        host: &str,
        proc_: (u32, &str),
        dst: &str,
        amount: u64,
    ) -> SharedEvent {
        Arc::new(
            EventBuilder::new(id, host, ts)
                .subject(ProcessInfo::new(proc_.0, proc_.1, "u"))
                .sends(NetworkInfo::new("10.0.0.2", 44000, dst, 443, "tcp"))
                .amount(amount)
                .build(),
        )
    }

    #[test]
    fn rule_query_emits_alert_with_rows() {
        let mut rq = q(r#"proc p1["%cmd.exe"] start proc p2["%osql.exe"] as e1
return distinct p1, p2"#);
        let alerts = rq.process(&start(1, 10, "db", (1, "cmd.exe"), (2, "osql.exe")));
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].get("p1"), Some("cmd.exe"));
        assert_eq!(alerts[0].get("p2"), Some("osql.exe"));
        assert!(matches!(alerts[0].origin, AlertOrigin::Match { .. }));
    }

    #[test]
    fn distinct_suppresses_repeat_rows() {
        let mut rq = q(r#"proc p1["%cmd.exe"] start proc p2 as e1
return distinct p1, p2"#);
        assert_eq!(
            rq.process(&start(1, 10, "db", (1, "cmd.exe"), (2, "osql.exe")))
                .len(),
            1
        );
        // Different event id, same entity names: suppressed by distinct.
        assert_eq!(
            rq.process(&start(2, 20, "db", (1, "cmd.exe"), (3, "osql.exe")))
                .len(),
            0
        );
        // New process name: new row.
        assert_eq!(
            rq.process(&start(3, 30, "db", (1, "cmd.exe"), (4, "calc.exe")))
                .len(),
            1
        );
    }

    #[test]
    fn global_constraint_filters_hosts() {
        let mut rq = q("agentid = \"db-server\"\nproc p1 start proc p2 as e1\nreturn p1");
        assert!(rq
            .process(&start(1, 10, "client-1", (1, "a"), (2, "b")))
            .is_empty());
        assert_eq!(
            rq.process(&start(2, 20, "db-server", (1, "a"), (2, "b")))
                .len(),
            1
        );
    }

    /// The paper's Query 2 (SMA spike) end to end on a synthetic stream.
    #[test]
    fn time_series_query_detects_spike() {
        let mut rq = q(r#"proc p write ip i as evt #time(10 min)
state[3] ss {
    avg_amount := avg(evt.amount)
} group by p
alert (ss[0].avg_amount > (ss[0].avg_amount + ss[1].avg_amount + ss[2].avg_amount) / 3) && (ss[0].avg_amount > 10000)
return p, ss[0].avg_amount"#);
        let min = 60_000u64;
        let mut alerts = Vec::new();
        let mut id = 0;
        // Three quiet windows then a spike window for sqlservr.exe.
        for w in 0..4u64 {
            let amount = if w == 3 { 5_000_000 } else { 2_000 };
            for j in 0..5 {
                id += 1;
                alerts.extend(rq.process(&send(
                    id,
                    w * 10 * min + j * min,
                    "db",
                    (10, "sqlservr.exe"),
                    "10.0.0.9",
                    amount,
                )));
            }
        }
        alerts.extend(rq.finish());
        assert_eq!(alerts.len(), 1, "{alerts:?}");
        let a = &alerts[0];
        assert!(matches!(&a.origin, AlertOrigin::Window { group, .. } if group == "sqlservr.exe"));
        assert_eq!(a.get("p"), Some("sqlservr.exe"));
        assert_eq!(a.get("ss[0].avg_amount"), Some("5000000.0"));
    }

    #[test]
    fn time_series_stays_quiet_on_flat_traffic() {
        let mut rq = q(r#"proc p write ip i as evt #time(10 min)
state[3] ss { avg_amount := avg(evt.amount) } group by p
alert (ss[0].avg_amount > (ss[0].avg_amount + ss[1].avg_amount + ss[2].avg_amount) / 3) && (ss[0].avg_amount > 10000)
return p"#);
        let min = 60_000u64;
        let mut alerts = Vec::new();
        for w in 0..6u64 {
            for j in 0..5 {
                alerts.extend(rq.process(&send(
                    w * 100 + j,
                    w * 10 * min + j * min,
                    "db",
                    (10, "sqlservr.exe"),
                    "10.0.0.9",
                    2_000,
                )));
            }
        }
        alerts.extend(rq.finish());
        assert!(alerts.is_empty(), "{alerts:?}");
    }

    /// The paper's Query 3 (invariant) end to end.
    #[test]
    fn invariant_query_detects_unseen_child() {
        let mut rq = q(r#"proc p1["%apache.exe"] start proc p2 as evt #time(10 s)
state ss { set_proc := set(p2.exe_name) } group by p1
invariant[3][offline] {
    a := empty_set
    a = a union ss.set_proc
}
alert |ss.set_proc diff a| > 0
return p1, ss.set_proc"#);
        let sec = 1_000u64;
        let mut alerts = Vec::new();
        let mut id = 0;
        // Training: 3 windows of normal children.
        for w in 0..3u64 {
            for child in ["php-cgi.exe", "rotatelogs.exe"] {
                id += 1;
                alerts.extend(rq.process(&start(
                    id,
                    w * 10 * sec + sec,
                    "web",
                    (80, "apache.exe"),
                    (100 + id as u32, child),
                )));
            }
        }
        // Detection window with a normal child: quiet.
        id += 1;
        alerts.extend(rq.process(&start(
            id,
            3 * 10 * sec + sec,
            "web",
            (80, "apache.exe"),
            (900, "php-cgi.exe"),
        )));
        // Next window: the webshell.
        id += 1;
        alerts.extend(rq.process(&start(
            id,
            4 * 10 * sec + sec,
            "web",
            (80, "apache.exe"),
            (999, "cmd.exe"),
        )));
        alerts.extend(rq.finish());
        assert_eq!(alerts.len(), 1, "{alerts:?}");
        assert!(alerts[0].get("ss.set_proc").unwrap().contains("cmd.exe"));
    }

    /// The paper's Query 4 (DBSCAN outlier) end to end.
    #[test]
    fn outlier_query_flags_exfiltration_ip() {
        let mut rq = q(
            r#"proc p["%sqlservr.exe"] read || write ip i as evt #time(10 min)
state ss { amt := sum(evt.amount) } group by i.dstip
cluster(points=all(ss.amt), distance="ed", method="DBSCAN(100000, 5)")
alert cluster.outlier && ss.amt > 1000000
return i.dstip, ss.amt"#,
        );
        let min = 60_000u64;
        let mut alerts = Vec::new();
        let mut id = 0;
        // 8 ordinary client ips with ~50KB each, one attacker ip with 2GB.
        for c in 0..8u32 {
            id += 1;
            alerts.extend(rq.process(&send(
                id,
                c as u64 * min,
                "db",
                (10, "sqlservr.exe"),
                &format!("10.0.0.{}", 50 + c),
                50_000,
            )));
        }
        id += 1;
        alerts.extend(rq.process(&send(
            id,
            9 * min,
            "db",
            (10, "sqlservr.exe"),
            "172.16.9.129",
            2_000_000_000,
        )));
        alerts.extend(rq.finish());
        assert_eq!(alerts.len(), 1, "{alerts:?}");
        assert_eq!(alerts[0].get("i.dstip"), Some("172.16.9.129"));
    }

    #[test]
    fn stateful_query_without_alert_emits_every_window() {
        let mut rq = q("proc p write ip i as evt #time(1 min)\nstate ss { n := count() } group by p\nreturn p, ss[0].n");
        let mut alerts = Vec::new();
        for w in 0..3u64 {
            alerts.extend(rq.process(&send(w, w * 60_000 + 1, "db", (1, "x.exe"), "1.1.1.1", 10)));
        }
        alerts.extend(rq.finish());
        assert_eq!(alerts.len(), 3);
        assert!(alerts.iter().all(|a| a.get("ss[0].n") == Some("1")));
    }

    #[test]
    fn allowed_lateness_recovers_out_of_order_events() {
        let config = QueryConfig {
            allowed_lateness: saql_model::Duration::from_secs(30),
            ..QueryConfig::default()
        };
        let src = "proc p write ip i as evt #time(1 min)\nstate ss { n := count() } group by p\nreturn p, ss[0].n";
        // Event at 10s, then watermark jumps to 70s, then a straggler at 50s.
        let events = [
            send(1, 10_000, "h", (1, "x.exe"), "1.1.1.1", 5),
            send(2, 70_000, "h", (1, "x.exe"), "1.1.1.1", 5),
            send(3, 50_000, "h", (1, "x.exe"), "1.1.1.1", 5),
        ];
        // Without lateness the straggler is dropped.
        let mut strict = RunningQuery::compile("strict", src, QueryConfig::default()).unwrap();
        let mut strict_alerts = Vec::new();
        for e in &events {
            strict_alerts.extend(strict.process(e));
        }
        strict_alerts.extend(strict.finish());
        assert_eq!(strict.stats().late_events, 1);
        let w0 = strict_alerts
            .iter()
            .find(|a| a.ts == Timestamp::from_secs(60))
            .unwrap();
        assert_eq!(w0.get("ss[0].n"), Some("1"));

        // With 30s lateness the first window is still open at watermark 70s.
        let mut tolerant = RunningQuery::compile("tolerant", src, config).unwrap();
        let mut tolerant_alerts = Vec::new();
        for e in &events {
            tolerant_alerts.extend(tolerant.process(e));
        }
        tolerant_alerts.extend(tolerant.finish());
        assert_eq!(tolerant.stats().late_events, 0);
        let w0 = tolerant_alerts
            .iter()
            .find(|a| a.ts == Timestamp::from_secs(60))
            .unwrap();
        assert_eq!(w0.get("ss[0].n"), Some("2"));
    }

    #[test]
    fn stats_track_pipeline() {
        let mut rq = q("agentid = \"db\"\nproc p write ip i as evt #time(1 min)\nstate ss { n := count() } group by p\nalert ss[0].n > 100\nreturn p");
        rq.process(&send(1, 10, "db", (1, "x.exe"), "1.1.1.1", 10));
        rq.process(&send(2, 20, "other", (1, "x.exe"), "1.1.1.1", 10));
        rq.finish();
        let s = rq.stats();
        assert_eq!(s.events_seen, 2);
        assert_eq!(s.events_matched, 1);
        assert_eq!(s.windows_closed, 1);
        assert_eq!(s.alerts, 0);
    }

    #[test]
    fn shape_match_is_constraint_free() {
        let rq = q(r#"proc p1["%cmd.exe"] start proc p2["%osql.exe"] as e1
return p1"#);
        // Shape (proc start proc) matches even with different names...
        assert!(rq.shape_matches(&start(1, 1, "h", (1, "anything.exe"), (2, "else.exe"))));
        // ...but a different object type does not.
        assert!(!rq.shape_matches(&send(2, 2, "h", (1, "cmd.exe"), "1.1.1.1", 5)));
    }
}
