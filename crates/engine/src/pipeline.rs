//! Multi-stage query pipelines: alerts as an event stream.
//!
//! A pipeline chains SAQL queries with `|>` (or explicit `from query NAME`
//! clauses): each downstream *stage* consumes its upstream's **alert
//! stream** instead of raw collector events, so per-host window summaries
//! can feed an enterprise-wide correlation query — the cross-host,
//! multi-window attack stories the paper's flat queries cannot express.
//!
//! The subsystem composes three primitives that already exist:
//!
//! 1. per-query [`Engine::subscribe`] channels carry a stage's alerts out
//!    of the engine;
//! 2. the **alert→event adapter** ([`AlertAdapter`]) turns each alert into
//!    an ordinary [`Event`] with `op = alert` — the emitting query becomes
//!    the *subject* (`exe_name` = query name), the alert's group label the
//!    *object*, and labeled return rows map onto the event schema through
//!    the global [`AttrTable`](saql_model::AttrTable) (`agentid`- and
//!    `amount`-labeled rows surface as `_in.agentid` / `_in.amount`);
//! 3. a `push_source` channel per upstream feeds those derived events back
//!    into the session's watermarked merge, where every downstream stage
//!    (compiled with the injected `_in` pattern) picks them up.
//!
//! **Time.** A stage's clock ticks only on its own upstream's adapted
//! events ([`RunningQuery::accepts_time`](crate::RunningQuery)), so its
//! windows close exactly as they would in a dedicated engine fed only the
//! upstream's alerts — this is what makes pipeline execution equivalent to
//! hand-chaining two engines. Silent upstreams cannot stall a stage
//! forever: each transfer round punctuates every edge with a **watermark
//! event** (`op = alert`, object `user` = the reserved
//! [`PIPELINE_WM_USER`](saql_lang::semantic::PIPELINE_WM_USER) marker) at
//! the session frontier minus a lateness margin. Punctuations advance the
//! stage clock but are excluded by the injected `_in` pattern, so they
//! never count as payload. The margin is `(depth+1) × allowed_lateness`
//! per edge: an upstream at depth `d` can still emit window alerts up to
//! `d+1` lateness bounds behind the frontier, and a punctuation must never
//! outrun an alert that is still coming.
//!
//! **Checkpoints.** Adapted event ids are deterministic —
//! `(upstream_id+1) << 40 | seq` with a per-edge counter — and the counter
//! travels in the engine checkpoint (`Checkpoint::adapters`, format v2),
//! so a resumed pipeline keeps minting the ids the uninterrupted run would
//! have. [`PipelineWiring::quiesce`] runs transfer+pump rounds until no
//! alert is in flight between stages, which is what makes a checkpoint
//! capture the *whole* pipeline state with nothing stuck in a channel.

use std::collections::HashMap;
use std::sync::Arc;

use crossbeam::channel::Receiver;
use saql_lang::{LangError, Stage};
use saql_model::entity::{Entity, ProcessInfo};
use saql_model::{AttrId, AttrNs, AttrTable, Event, Operation, Timestamp};
use saql_stream::merge::Lateness;
use saql_stream::source::{push_source, PushHandle};
use saql_stream::SharedEvent;

use crate::alert::{Alert, AlertOrigin};
use crate::engine::Engine;
use crate::error::EngineError;
use crate::query::QueryId;
use crate::session::RunSession;

pub use saql_lang::semantic::PIPELINE_WM_USER;

/// Default capacity of each per-upstream derived-event channel.
const EDGE_CAPACITY: usize = 4096;

/// Turns one upstream query's alerts into derived events, deterministically.
///
/// The mapping (documented in DESIGN.md §12, "the `_in` schema"):
///
/// | event field | value |
/// |---|---|
/// | `id` | `(upstream_id+1) << 40 \| seq` (per-edge counter) |
/// | `ts` | the alert's event time (window end, or last matched event) |
/// | `agent_id` | first return row whose label spells `agentid` (else `"saql"`) |
/// | `subject` | `proc(pid = upstream_id, exe = upstream name, user = "saql")` |
/// | `op` | `alert` |
/// | `object` | `proc(pid = 0, exe = group label \| first row value, user = "")` |
/// | `amount` | first return row whose label spells `amount`, parsed (else 0) |
#[derive(Debug)]
pub struct AlertAdapter {
    upstream: Arc<str>,
    upstream_id: QueryId,
    seq: u64,
}

impl AlertAdapter {
    pub fn new(upstream: &str, upstream_id: QueryId) -> Self {
        AlertAdapter {
            upstream: Arc::from(upstream),
            upstream_id,
            seq: 0,
        }
    }

    /// Next adapted-event sequence number (checkpoint position).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Restore the sequence counter from a checkpoint.
    pub fn set_seq(&mut self, seq: u64) {
        self.seq = seq;
    }

    /// The upstream query this adapter derives events from.
    pub fn upstream(&self) -> &str {
        &self.upstream
    }

    /// The upstream query's id (wiring staleness checks).
    pub fn upstream_id(&self) -> QueryId {
        self.upstream_id
    }

    /// Adapt one alert into a derived event.
    pub fn adapt(&mut self, alert: &Alert) -> SharedEvent {
        let id = ((self.upstream_id.index() as u64 + 1) << 40) | self.seq;
        self.seq += 1;
        let table = AttrTable::global();
        let mut agent: Option<&str> = None;
        let mut amount: u64 = 0;
        let mut amount_set = false;
        for (label, value) in &alert.rows {
            match table.resolve(AttrNs::Event, label) {
                Some(AttrId::AgentId) if agent.is_none() => agent = Some(value),
                Some(AttrId::Amount) if !amount_set => {
                    if let Ok(v) = value.parse::<f64>() {
                        if v >= 0.0 {
                            amount = v as u64;
                            amount_set = true;
                        }
                    }
                }
                _ => {}
            }
        }
        let group: &str = match &alert.origin {
            AlertOrigin::Window { group, .. } => group,
            AlertOrigin::Match { .. } => alert.rows.first().map(|(_, v)| v.as_str()).unwrap_or(""),
        };
        Arc::new(Event {
            id,
            agent_id: Arc::from(agent.unwrap_or("saql")),
            ts: alert.ts,
            subject: ProcessInfo {
                pid: self.upstream_id.index() as u32,
                exe_name: Arc::clone(&self.upstream),
                user: Arc::from("saql"),
            },
            op: Operation::Alert,
            object: Entity::Process(ProcessInfo {
                pid: 0,
                exe_name: Arc::from(group),
                user: Arc::from(""),
            }),
            amount,
        })
    }

    /// A watermark punctuation at `ts`: advances downstream clocks (it
    /// carries this upstream's subject identity, so dependents accept its
    /// time) but never matches the injected `_in` pattern (the object
    /// `user` carries the reserved marker). Punctuations do not consume
    /// sequence numbers — their cadence depends on pump timing, and
    /// adapted-event ids must be a deterministic function of the alert
    /// stream alone.
    pub fn punctuation(&self, ts: Timestamp) -> SharedEvent {
        Arc::new(Event {
            // High tag well clear of both collector ids and adapted ids.
            id: u64::MAX - self.upstream_id.index() as u64,
            agent_id: Arc::from("saql"),
            ts,
            subject: ProcessInfo {
                pid: self.upstream_id.index() as u32,
                exe_name: Arc::clone(&self.upstream),
                user: Arc::from("saql"),
            },
            op: Operation::Alert,
            object: Entity::Process(ProcessInfo {
                pid: 0,
                exe_name: Arc::from(""),
                user: Arc::from(PIPELINE_WM_USER),
            }),
            amount: 0,
        })
    }

    /// Advance downstream time through `push` when this upstream is
    /// silent: raise the derived channel's watermark so it never gates the
    /// session merge (PR 4's gating rule — a quiet live source otherwise
    /// holds the frontier), then push a [`punctuation`](Self::punctuation)
    /// so the downstream stage's *own* clock reaches `ts` and its windows
    /// close. [`PipelineWiring::transfer`] calls this every round;
    /// hand-wired topologies call it directly. Returns `false` once the
    /// consuming session is gone.
    pub fn advance_watermark(&self, push: &PushHandle, ts: Timestamp) -> bool {
        push.advance_watermark(ts);
        push.push(self.punctuation(ts))
    }
}

/// Validate a batch of pipeline stages against each other and an engine's
/// live registry: every `from query` reference must resolve (to a stage in
/// the batch or an already-registered query), and batch-internal references
/// must form a DAG. Returns registration order (indices into `stages`,
/// upstreams first). Errors carry the offending `from` clause's span into
/// that stage's source.
pub fn validate_stages(stages: &[Stage], engine: &Engine) -> Result<Vec<usize>, LangError> {
    let by_name: HashMap<&str, usize> = stages
        .iter()
        .enumerate()
        .map(|(i, s)| (s.name.as_str(), i))
        .collect();
    for s in stages {
        if let Some((up, span)) = &s.input {
            if !by_name.contains_key(up.as_str()) && engine.find(up).is_none() {
                return Err(LangError::semantic(
                    format!(
                        "stage `{}`: `from query {up}` references neither a \
                         pipeline stage nor a registered query",
                        s.name
                    ),
                    *span,
                ));
            }
        }
    }
    // Topological order over batch-internal edges (DFS, cycle detection).
    let mut order = Vec::with_capacity(stages.len());
    let mut mark = vec![0u8; stages.len()]; // 0 unvisited / 1 on stack / 2 done
    fn visit(
        i: usize,
        stages: &[Stage],
        by_name: &HashMap<&str, usize>,
        mark: &mut [u8],
        order: &mut Vec<usize>,
    ) -> Result<(), LangError> {
        match mark[i] {
            2 => return Ok(()),
            1 => {
                let span = stages[i]
                    .input
                    .as_ref()
                    .map(|(_, s)| *s)
                    .unwrap_or_default();
                return Err(LangError::semantic(
                    format!(
                        "pipeline stages form a cycle through `{}` — a stage \
                         cannot (transitively) consume its own alert stream",
                        stages[i].name
                    ),
                    span,
                ));
            }
            _ => {}
        }
        mark[i] = 1;
        if let Some((up, _)) = &stages[i].input {
            if let Some(&j) = by_name.get(up.as_str()) {
                visit(j, stages, by_name, mark, order)?;
            }
        }
        mark[i] = 2;
        order.push(i);
        Ok(())
    }
    for i in 0..stages.len() {
        visit(i, stages, &by_name, &mut mark, &mut order)?;
    }
    Ok(order)
}

/// Split, validate, and register a (possibly multi-stage) query on an
/// engine. Returns the stages with their assigned ids, in registration
/// (topological) order. Single-stage sources register exactly like a plain
/// [`Engine::register`] call.
pub fn register_pipeline(
    engine: &mut Engine,
    name: &str,
    source: &str,
) -> Result<Vec<(Stage, QueryId)>, LangError> {
    let stages = saql_lang::split_stages(name, source)?;
    register_stages(engine, stages)
}

/// [`register_pipeline`] with every explicit `from query` reference
/// confined to a name scope (the serving layer's `{tenant}/` prefix).
///
/// Implicit `|>` edges already carry the scope through the pipeline name
/// and are left alone. An explicit bare reference (`from query "q"`) is
/// resolved *under* the scope — the stage's stored source is rewritten to
/// `from query "{scope}q"`, so recompiles from the registry or a
/// checkpoint resolve identically — and a reference containing `/` is
/// rejected with a spanned error: registered names never contain `/`
/// inside a scope, so such a reference could only reach another scope's
/// queries (a cross-tenant alert-stream leak).
pub fn register_pipeline_scoped(
    engine: &mut Engine,
    name: &str,
    source: &str,
    scope: &str,
) -> Result<Vec<(Stage, QueryId)>, LangError> {
    let mut stages = saql_lang::split_stages(name, source)?;
    scope_stage_inputs(&mut stages, scope)?;
    register_stages(engine, stages)
}

/// Confine each stage's explicit `from query` reference to `scope` (see
/// [`register_pipeline_scoped`]). Rewrites both the parsed input name and
/// the quoted literal inside the stage source.
fn scope_stage_inputs(stages: &mut [Stage], scope: &str) -> Result<(), LangError> {
    let batch: Vec<String> = stages.iter().map(|s| s.name.clone()).collect();
    for stage in stages.iter_mut() {
        let Some((up, span)) = stage.input.clone() else {
            continue;
        };
        if batch.contains(&up) {
            continue;
        }
        if up.contains('/') {
            return Err(LangError::semantic(
                format!(
                    "stage `{}`: `from query \"{up}\"` reaches outside the \
                     tenant scope — reference queries by their bare name",
                    stage.name
                ),
                span,
            ));
        }
        let needle = format!("\"{up}\"");
        let clause = &stage.source[span.start..span.end.min(stage.source.len())];
        let rel = clause.find(&needle).ok_or_else(|| {
            LangError::semantic(
                format!(
                    "stage `{}`: cannot scope `from query \"{up}\"` — the \
                     upstream name is not a plain string literal",
                    stage.name
                ),
                span,
            )
        })?;
        stage.source.insert_str(span.start + rel + 1, scope);
        let mut scoped_span = span;
        scoped_span.end += scope.len();
        stage.input = Some((format!("{scope}{up}"), scoped_span));
    }
    Ok(())
}

/// Validate a pre-split stage batch and register it upstream-first,
/// rolling back on failure — the shared tail of [`register_pipeline`] and
/// [`register_pipeline_scoped`].
fn register_stages(
    engine: &mut Engine,
    stages: Vec<Stage>,
) -> Result<Vec<(Stage, QueryId)>, LangError> {
    let order = validate_stages(&stages, engine)?;
    let mut registered: Vec<(Stage, QueryId)> = Vec::new();
    for i in order {
        let stage = &stages[i];
        match engine.register(&stage.name, &stage.source) {
            Ok(id) => registered.push((stage.clone(), id)),
            Err(e) => {
                // Roll back earlier stages of this batch so a failed
                // registration leaves the engine unchanged.
                for (_, id) in registered.drain(..).rev() {
                    let _ = engine.deregister(id);
                }
                return Err(e);
            }
        }
    }
    Ok(registered)
}

/// Render the multi-stage execution plan of a pipeline source: the stage
/// topology (who consumes whose alert stream) followed by each stage's
/// compiled plan dump. Deterministic — the CLI's `explain` golden fixtures
/// pin this output. Errors come back pre-rendered (stage compile errors
/// span the *stage* source, not the original file).
pub fn explain_pipeline(name: &str, source: &str) -> Result<String, String> {
    let stages = saql_lang::split_stages(name, source).map_err(|e| e.render(source))?;
    let mut out = String::new();
    out.push_str(&format!("pipeline `{name}`: {} stage(s)\n", stages.len()));
    for s in &stages {
        let input = s
            .input
            .as_ref()
            .map(|(n, _)| n.as_str())
            .unwrap_or("<base events>");
        out.push_str(&format!("  {} <- {}\n", s.name, input));
    }
    for s in &stages {
        let query = crate::RunningQuery::compile(s.name.as_str(), &s.source, Default::default())
            .map_err(|e| format!("stage {}: {}", s.name, e.render(&s.source)))?;
        out.push_str(&format!("\n## stage {}\n", s.name));
        out.push_str(&query.explain());
    }
    Ok(out)
}

/// Deregister a (possibly multi-stage) query and cascade over its
/// auto-generated `NAME.sK` upstream stages — the inverse of
/// [`register_pipeline`]. Stages that still have *other* dependents (an
/// explicit `from query` reference from elsewhere) are left registered.
/// Returns the names actually deregistered, downstream first.
pub fn deregister_pipeline(engine: &mut Engine, id: QueryId) -> Result<Vec<String>, EngineError> {
    let base = engine
        .name_of(id)
        .ok_or(EngineError::UnknownQuery(id))?
        .to_string();
    // The `|>` chain upstream of `id`: walk `from query` inputs while the
    // names keep the auto-generated `{base}.sK` shape.
    let mut chain = vec![(base.clone(), id)];
    let mut cur = id;
    while let Some(up_id) = engine.input_of(cur).and_then(|up| engine.find(up)) {
        let name = match engine.name_of(up_id) {
            Some(n) if n.starts_with(&format!("{base}.s")) => n.to_string(),
            _ => break,
        };
        chain.push((name, up_id));
        cur = up_id;
    }
    let mut removed = Vec::new();
    for (name, qid) in chain {
        match engine.deregister(qid) {
            Ok(()) => removed.push(name),
            // The head must go; a shared upstream stage may stay.
            Err(e) if removed.is_empty() => return Err(e),
            Err(_) => break,
        }
    }
    Ok(removed)
}

/// One wired pipeline edge: an upstream query with at least one dependent.
struct Edge {
    upstream: String,
    /// Stage depth of the upstream (0 = reads raw events); sets the
    /// punctuation lateness margin.
    depth: u64,
    rx: Receiver<Alert>,
    push: Option<PushHandle>,
    adapter: AlertAdapter,
    last_punct: Option<Timestamp>,
}

/// The session-level pipeline topology: subscriptions, adapters, and push
/// channels for every live `from query` edge of an engine.
///
/// Built *after* stages are registered (see [`register_pipeline`]) and
/// after the session's base sources are attached:
/// [`PipelineWiring::connect`] discovers the edges from the engine
/// registry, subscribes to each upstream once (all dependents share the
/// derived stream through the merge), and attaches one
/// [`push_source`] per upstream. Drive the session with
/// [`transfer`](Self::transfer) between pump rounds.
pub struct PipelineWiring {
    edges: Vec<Edge>,
    /// Derived events (adapted alerts + punctuations) pushed into the
    /// merge over this wiring's lifetime — the session's processed-event
    /// count minus this is the *base* stream position for checkpoints.
    derived_pushed: u64,
}

impl Default for PipelineWiring {
    /// A wiring with no edges — the engine has no pipelines (yet). Useful
    /// as a placeholder where [`connect`](Self::connect) may fail.
    fn default() -> Self {
        PipelineWiring {
            edges: Vec::new(),
            derived_pushed: 0,
        }
    }
}

impl PipelineWiring {
    /// Wire every pipeline edge of the session's engine. Fresh adapters
    /// start at sequence 0.
    pub fn connect(session: &mut RunSession) -> Result<PipelineWiring, EngineError> {
        PipelineWiring::connect_with(session, &[])
    }

    /// [`connect`](Self::connect) with adapter positions restored from a
    /// checkpoint ([`Checkpoint::adapters`](crate::Checkpoint)).
    pub fn connect_with(
        session: &mut RunSession,
        seqs: &[(String, u64)],
    ) -> Result<PipelineWiring, EngineError> {
        let engine = session.engine();
        let edges_spec = engine.pipeline_edges();
        // depth of every live query (0 = base).
        let mut depth: HashMap<QueryId, u64> = HashMap::new();
        fn depth_of(engine: &Engine, id: QueryId, depth: &mut HashMap<QueryId, u64>) -> u64 {
            if let Some(&d) = depth.get(&id) {
                return d;
            }
            let d = match engine.input_of(id).and_then(|up| engine.find(up)) {
                // Validation rejects cycles, so recursion terminates.
                Some(up_id) => depth_of(engine, up_id, depth) + 1,
                None => 0,
            };
            depth.insert(id, d);
            d
        }
        let mut upstreams: Vec<QueryId> = edges_spec.iter().map(|(_, up)| *up).collect();
        upstreams.sort_by_key(|id| id.index());
        upstreams.dedup();
        let mut edges = Vec::with_capacity(upstreams.len());
        for up_id in upstreams {
            let engine = session.engine();
            let d = depth_of(engine, up_id, &mut depth);
            let name = engine
                .name_of(up_id)
                .ok_or(EngineError::UnknownQuery(up_id))?
                .to_string();
            let rx = engine.subscribe_with_capacity(up_id, EDGE_CAPACITY)?;
            let mut adapter = AlertAdapter::new(&name, up_id);
            if let Some((_, seq)) = seqs.iter().find(|(n, _)| *n == name) {
                adapter.set_seq(*seq);
            }
            let (push, source) = push_source(format!("pipe:{name}"), EDGE_CAPACITY);
            session.attach_with(source, Lateness::ArrivalOrder);
            edges.push(Edge {
                upstream: name,
                depth: d,
                rx,
                push: Some(push),
                adapter,
                last_punct: None,
            });
        }
        Ok(PipelineWiring {
            edges,
            derived_pushed: 0,
        })
    }

    /// Whether the engine has any pipeline edges at all.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Number of wired upstream edges — compare against
    /// [`Engine::pipeline_edges`] (deduplicated by upstream) to detect a
    /// topology change from a mid-run register/deregister.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Whether the live registry's edge set no longer matches this wiring
    /// (a pipeline was registered or deregistered mid-run).
    pub fn stale(&self, session: &mut RunSession) -> bool {
        let mut ups: Vec<QueryId> = session
            .engine()
            .pipeline_edges()
            .iter()
            .map(|(_, up)| *up)
            .collect();
        ups.sort_by_key(|id| id.index());
        ups.dedup();
        // Compare the id *sets*, not just the counts: a deregister+register
        // pair drained in one control round (replacing a pipeline under the
        // same name) keeps the count equal while changing the upstream ids
        // — the registry never reuses a retired id, so the id set always
        // reflects such a swap. Edges are built sorted by upstream id
        // (`connect_with`), so a positional compare is a set compare.
        ups.len() != self.edges.len()
            || ups
                .iter()
                .zip(&self.edges)
                .any(|(id, e)| e.adapter.upstream_id() != *id)
    }

    /// Rebuild the edge set in place after a mid-run topology change,
    /// carrying adapter positions (and the derived-event count) forward for
    /// upstreams that survive. Dropping the stale edges closes their push
    /// channels, so the merge retires the old `pipe:` sources. Call after a
    /// [`quiesce`](Self::quiesce) so no in-flight alert is stranded in a
    /// dropped subscription.
    pub fn reconnect(&mut self, session: &mut RunSession) -> Result<(), EngineError> {
        let seqs = self.adapter_seqs();
        let fresh = PipelineWiring::connect_with(session, &seqs)?;
        self.edges = fresh.edges;
        Ok(())
    }

    /// Adapter checkpoint positions, `(upstream name, next seq)` — stamp
    /// these into [`Checkpoint::adapters`](crate::Checkpoint) before
    /// writing it.
    pub fn adapter_seqs(&self) -> Vec<(String, u64)> {
        self.edges
            .iter()
            .map(|e| (e.upstream.clone(), e.adapter.seq()))
            .collect()
    }

    /// Derived events pushed into the merge so far (adapted alerts plus
    /// watermark punctuations). `session.processed() - derived_processed`
    /// is the base-stream position once the wiring is quiesced.
    pub fn derived_pushed(&self) -> u64 {
        self.derived_pushed
    }

    /// One transfer round: drain every upstream subscription, adapt and
    /// push the alerts into the merge, then punctuate each edge's
    /// watermark at the session frontier minus its lateness margin.
    /// Returns the number of derived events pushed.
    pub fn transfer(&mut self, session: &mut RunSession) -> u64 {
        // Barrier first (parallel backend; serial is a no-op): the
        // punctuations below assert "every upstream has processed every
        // event up to the frontier", which is only true once the workers
        // have caught up and their alerts are routed. Without this, a
        // punctuation can advance a downstream clock past alerts still
        // being computed, and the stage would drop them as late.
        let _ = session.engine().sync();
        let frontier = session.frontier();
        let lateness = session.engine().config().query.allowed_lateness;
        // A derived channel's events *trail* processing: they can only be
        // minted from base events the merge already released, so holding
        // base traffic back for them deadlocks the feedback loop (the
        // merge waits on the adapter, the adapter waits on alerts, alerts
        // wait on events). Promise the merge the derived channels never
        // gate anything at or below the lead of the real sources. The
        // promise is deliberately optimistic — adapted alerts may carry
        // older timestamps — which is sound because nothing orders against
        // a derived event: pipeline stages clock on their own upstream's
        // events only, and base queries never match `op = alert` traffic.
        let lead = session
            .source_stats()
            .iter()
            .map(|(_, s)| s.watermark.as_millis())
            .max()
            .unwrap_or(0)
            .max(frontier.as_millis());
        let mut pushed = 0u64;
        for edge in &mut self.edges {
            if let Some(push) = edge.push.as_ref() {
                push.advance_watermark(Timestamp::from_millis(lead));
            }
        }
        for edge in &mut self.edges {
            let Some(push) = edge.push.as_ref() else {
                continue;
            };
            while let Ok(alert) = edge.rx.try_recv() {
                let event = edge.adapter.adapt(&alert);
                if push.push(event) {
                    pushed += 1;
                }
            }
            // Punctuate: safe lower bound on anything this upstream can
            // still emit. `(depth+1)` lateness bounds behind the frontier.
            let margin = lateness.as_millis().saturating_mul(edge.depth + 1);
            let punct = Timestamp::from_millis(frontier.as_millis().saturating_sub(margin));
            if punct.as_millis() > 0
                && edge.last_punct.is_none_or(|p| punct > p)
                && edge.adapter.advance_watermark(push, punct)
            {
                edge.last_punct = Some(punct);
                pushed += 1;
            }
        }
        self.derived_pushed += pushed;
        pushed
    }

    /// Run transfer+pump rounds until the pipeline is *quiet*: a full
    /// round moves no alert and feeds no event. Because derived channels
    /// are never gated (their watermarks are raised to the source lead on
    /// every transfer), a round that pumps zero events proves the channels
    /// are empty — at that point the engine's queries hold the complete
    /// pipeline state, with nothing in flight between stages, and an
    /// engine checkpoint taken now captures the pipeline exactly.
    /// Returns the alerts produced while quiescing.
    pub fn quiesce(&mut self, session: &mut RunSession) -> Vec<Alert> {
        let mut out = Vec::new();
        loop {
            let moved = self.transfer(session);
            let round = session.pump();
            out.extend(round.alerts);
            if moved == 0 && round.events == 0 {
                break;
            }
        }
        out
    }

    /// Quiesce the pipeline and take a checkpoint that captures it whole.
    ///
    /// The engine snapshot is stamped with this wiring's adapter positions
    /// ([`Checkpoint::adapters`](crate::Checkpoint)), and its offset is the
    /// **base**-stream position — the session's offset minus the derived
    /// events this wiring injected — so a resumed session re-attaches the
    /// collector source at the right place and nothing is re-derived: the
    /// pre-checkpoint alerts already live inside the restored query state.
    /// Returns the checkpoint and any alerts produced while quiescing.
    pub fn checkpoint(
        &mut self,
        session: &mut RunSession,
    ) -> Result<(crate::Checkpoint, Vec<Alert>), EngineError> {
        let alerts = self.quiesce(session);
        let offset = session.offset().saturating_sub(self.derived_pushed);
        let frontier = session.frontier();
        let mut checkpoint = session.engine().checkpoint(offset, frontier)?;
        checkpoint.adapters = self.adapter_seqs();
        Ok((checkpoint, alerts))
    }

    /// Layered end-of-stream drain. Stages flush in topological order
    /// (shallow first): each layer's final window alerts transfer to its
    /// dependents *before* those flush in turn, so stage-2 sees stage-1's
    /// last windows — exactly like hand-chained engines finishing in
    /// sequence. Closes the derived-event channels at the end, so a
    /// subsequent `session.drain()` terminates.
    pub fn finish_stages(&mut self, session: &mut RunSession) -> Vec<Alert> {
        let mut out = self.quiesce(session);
        // Flush every query some dependent consumes, shallow first.
        let mut flush: Vec<(u64, QueryId)> = Vec::new();
        {
            let engine = session.engine();
            let mut depth: HashMap<QueryId, u64> = HashMap::new();
            fn depth_of(engine: &Engine, id: QueryId, depth: &mut HashMap<QueryId, u64>) -> u64 {
                if let Some(&d) = depth.get(&id) {
                    return d;
                }
                let d = match engine.input_of(id).and_then(|up| engine.find(up)) {
                    Some(up_id) => depth_of(engine, up_id, depth) + 1,
                    None => 0,
                };
                depth.insert(id, d);
                d
            }
            for (_, up) in engine.pipeline_edges() {
                let d = depth_of(engine, up, &mut depth);
                if !flush.iter().any(|(_, id)| *id == up) {
                    flush.push((d, up));
                }
            }
        }
        flush.sort_by_key(|(d, id)| (*d, id.index()));
        for (_, id) in flush {
            match session.engine().flush_query(id) {
                Ok(_) => {}
                Err(_) => continue,
            }
            // The flushed alerts are routed to the upstream's subscribers;
            // move them through the adapter and let dependents process
            // them (their own windows may close and cascade — quiesce).
            out.extend(self.quiesce(session));
        }
        // End of derived streams: dropping the push handles lets the
        // channel sources report done, so `session.drain()` terminates.
        for edge in &mut self.edges {
            edge.push = None;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QueryId;

    fn alert(query: &str, ts: u64, group: &str, rows: Vec<(String, String)>) -> Alert {
        Alert {
            query: query.into(),
            query_id: QueryId::new(3),
            ts: Timestamp::from_millis(ts),
            origin: AlertOrigin::Window {
                start: Timestamp::ZERO,
                end: Timestamp::from_millis(ts),
                group: group.into(),
            },
            rows,
        }
    }

    #[test]
    fn adapter_maps_labeled_rows_onto_schema() {
        let mut a = AlertAdapter::new("burst", QueryId::new(3));
        let ev = a.adapt(&alert(
            "burst",
            10_000,
            "web-1",
            vec![
                ("host".into(), "web-1".into()),
                ("total".into(), "9".into()),
                ("amount".into(), "4096".into()),
            ],
        ));
        assert_eq!(ev.id, (4u64 << 40), "first seq under the upstream tag");
        assert_eq!(&*ev.agent_id, "web-1", "host label resolves to agentid");
        assert_eq!(ev.amount, 4096);
        assert_eq!(ev.op, Operation::Alert);
        assert_eq!(&*ev.subject.exe_name, "burst");
        match &ev.object {
            Entity::Process(p) => assert_eq!(&*p.exe_name, "web-1"),
            other => panic!("object should be the group process, got {other:?}"),
        }
        let ev2 = a.adapt(&alert("burst", 20_000, "web-2", vec![]));
        assert_eq!(ev2.id, (4u64 << 40) | 1, "sequence advances");
        assert_eq!(&*ev2.agent_id, "saql", "no agentid-labeled row");
    }

    #[test]
    fn punctuation_carries_marker_and_no_seq() {
        let mut a = AlertAdapter::new("burst", QueryId::new(0));
        let before = a.seq();
        let p = a.punctuation(Timestamp::from_millis(5_000));
        assert_eq!(a.seq(), before, "punctuations do not consume sequence");
        assert_eq!(p.op, Operation::Alert);
        match &p.object {
            Entity::Process(pr) => assert_eq!(&*pr.user, PIPELINE_WM_USER),
            other => panic!("punctuation object must be a process, got {other:?}"),
        }
        let _ = a.adapt(&alert("burst", 1, "g", vec![]));
        assert_eq!(a.seq(), before + 1);
    }
}
