//! Runtime error reporting (the paper's *error reporter* component).
//!
//! Query execution over a live stream must not abort on bad data — the
//! reporter records evaluation anomalies (type confusion in expressions,
//! partial-match overflow, division by zero) with bounded memory and exposes
//! them to the CLI and to tests.

use std::collections::VecDeque;
use std::fmt;

/// A runtime engine error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// Expression evaluation failed (message explains what and where).
    Eval(String),
    /// The multievent matcher hit its partial-match cap and evicted state;
    /// detections involving the evicted prefixes may be lost.
    PartialMatchOverflow { query: String, cap: usize },
    /// A query referenced a name that could not be resolved at runtime.
    UnresolvedName(String),
    /// A control-plane operation (deregister, pause, resume, subscribe)
    /// named a query id that is not live on this engine.
    UnknownQuery(crate::query::QueryId),
    /// A session operation named a source id that is not attached (never
    /// attached, or already detached).
    UnknownSource(saql_stream::SourceId),
    /// A control-plane operation arrived after `finish()` on the parallel
    /// backend: the worker threads have shut down, so the deployment can
    /// no longer change (create a fresh engine to run again).
    EngineFinished,
    /// Deregistration refused: the query is a pipeline upstream whose
    /// alert stream still feeds live dependent stages.
    PipelineDependents {
        query: String,
        dependents: Vec<String>,
    },
    /// Taking or restoring an engine checkpoint failed (message explains
    /// what — a dead shard with lost query state, a snapshot/registry
    /// mismatch, a query that no longer compiles).
    Checkpoint(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Eval(msg) => write!(f, "evaluation error: {msg}"),
            EngineError::PartialMatchOverflow { query, cap } => write!(
                f,
                "partial-match cap ({cap}) reached in query `{query}`; oldest state evicted"
            ),
            EngineError::UnresolvedName(name) => write!(f, "unresolved name `{name}`"),
            EngineError::UnknownQuery(id) => {
                write!(f, "no live query {id} (never registered, or deregistered)")
            }
            EngineError::UnknownSource(id) => {
                write!(f, "no attached source {id} (never attached, or detached)")
            }
            EngineError::EngineFinished => write!(
                f,
                "engine already finished: the parallel workers have shut \
                 down (create a fresh engine to run again)"
            ),
            EngineError::PipelineDependents { query, dependents } => write!(
                f,
                "cannot deregister `{query}`: pipeline stage(s) {} still \
                 consume its alert stream (deregister them first)",
                dependents
                    .iter()
                    .map(|d| format!("`{d}`"))
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            EngineError::Checkpoint(msg) => write!(f, "checkpoint error: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// Bounded collector of runtime errors: keeps a total count and the most
/// recent `capacity` messages.
#[derive(Debug)]
pub struct ErrorReporter {
    recent: VecDeque<EngineError>,
    capacity: usize,
    total: u64,
}

impl ErrorReporter {
    pub fn new(capacity: usize) -> Self {
        ErrorReporter {
            recent: VecDeque::with_capacity(capacity),
            capacity,
            total: 0,
        }
    }

    /// Record an error, evicting the oldest if at capacity.
    pub fn report(&mut self, err: EngineError) {
        self.total += 1;
        if self.recent.len() == self.capacity {
            self.recent.pop_front();
        }
        self.recent.push_back(err);
    }

    /// Total errors ever reported.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Recent errors, oldest first.
    pub fn recent(&self) -> impl Iterator<Item = &EngineError> {
        self.recent.iter()
    }

    pub fn is_empty(&self) -> bool {
        self.total == 0
    }
}

impl Default for ErrorReporter {
    fn default() -> Self {
        ErrorReporter::new(128)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reporter_bounds_memory() {
        let mut r = ErrorReporter::new(3);
        for i in 0..10 {
            r.report(EngineError::Eval(format!("e{i}")));
        }
        assert_eq!(r.total(), 10);
        let recent: Vec<String> = r.recent().map(|e| e.to_string()).collect();
        assert_eq!(recent.len(), 3);
        assert!(recent[0].contains("e7"));
        assert!(recent[2].contains("e9"));
    }

    #[test]
    fn display_variants() {
        let e = EngineError::PartialMatchOverflow {
            query: "q1".into(),
            cap: 10,
        };
        assert!(e.to_string().contains("q1"));
        assert!(EngineError::UnresolvedName("zz".into())
            .to_string()
            .contains("zz"));
    }

    #[test]
    fn empty_reporter() {
        let r = ErrorReporter::default();
        assert!(r.is_empty());
        assert_eq!(r.recent().count(), 0);
    }
}
