//! The multievent matcher.
//!
//! Matches stream events against a query's event patterns. A single
//! [`PatternMatcher`] decides whether one event satisfies one pattern
//! (entity types, operation alternation, attribute constraints with
//! SQL-LIKE wildcards). The [`MultiMatcher`] composes patterns with the
//! temporal clause (`with evt1 -> evt2 -> ...`) and attribute joins (shared
//! variables must bind the same entity), maintaining bounded partial-match
//! state across the stream.

use std::collections::{HashMap, HashSet};

use saql_lang::ast::{AttrConstraint, CmpOp, EventPattern, GlobalConstraint, Query};
use saql_lang::resolve::entity_slot_names;
use saql_model::glob::like_match;
use saql_model::{
    AttrId, AttrNs, AttrRef, AttrTable, AttrValue, Duration, Entity, Event, Operation, ProcessInfo,
    Timestamp,
};
use saql_stream::{BatchView, SharedEvent};

/// FNV-1a over a byte run (fold more runs by passing the previous result).
/// Used for the sub-plan fingerprints the batched scheduler shares on:
/// deterministic across runs and platforms, unlike `DefaultHasher`, so
/// fingerprints can appear in explain output and golden fixtures.
pub(crate) fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// FNV-1a offset basis (the seed for [`fnv1a`] chains).
pub(crate) const FNV_SEED: u64 = 0xcbf2_9ce4_8422_2325;

/// The comparison a predicate performs once its attribute is loaded.
#[derive(Debug, Clone)]
enum PredTest {
    /// SQL-LIKE match on a string attribute.
    Like(String),
    /// Direct comparison against a constant.
    Cmp { op: CmpOp, value: AttrValue },
}

/// A compiled attribute constraint: attribute resolved to an [`AttrId`] at
/// compile time, checked against **borrowed** attribute views at run time —
/// the per-event path neither compares attribute names nor clones values.
#[derive(Debug, Clone)]
pub struct Predicate {
    /// Resolved attribute. `None` means the constraint names an attribute
    /// its target cannot supply; such a predicate never matches (exactly
    /// what the legacy name-probing produced).
    attr: Option<AttrId>,
    /// The attribute as spelled in the query (for explain listings).
    spelled: String,
    test: PredTest,
}

impl Predicate {
    /// Compile one AST constraint against an attribute namespace.
    /// `default_attr` fills the `proc p["%cmd.exe"]` shorthand. LIKE is
    /// chosen for string equality (wildcards or not — exact strings keep
    /// the case-insensitive semantics monitoring paths need).
    pub fn compile(c: &AttrConstraint, ns: AttrNs, default_attr: &str) -> Predicate {
        let spelled = c.attr.clone().unwrap_or_else(|| default_attr.to_string());
        let attr = AttrTable::global().resolve(ns, &spelled);
        let value = c.value.to_attr();
        let test = match (&value, c.op) {
            (AttrValue::Str(s), CmpOp::Eq) => PredTest::Like(s.to_string()),
            _ => PredTest::Cmp { op: c.op, value },
        };
        Predicate {
            attr,
            spelled,
            test,
        }
    }

    /// The resolved attribute this predicate loads, if any.
    pub fn attr(&self) -> Option<AttrId> {
        self.attr
    }

    /// Check the predicate against a borrowed attribute view. `None`
    /// (attribute absent) never matches.
    pub fn check(&self, actual: Option<AttrRef<'_>>) -> bool {
        let Some(actual) = actual else { return false };
        match &self.test {
            PredTest::Like(pattern) => match actual.as_str() {
                Some(s) => like_match(pattern, s),
                None => false,
            },
            PredTest::Cmp { op, value } => match op {
                CmpOp::Eq => actual.loose_eq(value),
                CmpOp::Ne => !actual.loose_eq(value),
                _ => match actual.loose_cmp(value) {
                    Some(ord) => match op {
                        CmpOp::Lt => ord.is_lt(),
                        CmpOp::Le => ord.is_le(),
                        CmpOp::Gt => ord.is_gt(),
                        CmpOp::Ge => ord.is_ge(),
                        CmpOp::Eq | CmpOp::Ne => unreachable!("handled above"),
                    },
                    None => false,
                },
            },
        }
    }

    /// Whether the entity satisfies this predicate (borrowed end to end).
    pub fn check_entity(&self, entity: &Entity) -> bool {
        match self.attr {
            Some(id) => self.check(entity.attr_ref(id)),
            None => false,
        }
    }

    /// Whether the event's *event-level* attributes satisfy this predicate.
    pub fn check_event(&self, event: &Event) -> bool {
        match self.attr {
            Some(id) => self.check(event.attr_ref(id)),
            None => false,
        }
    }

    /// One-line form for explain listings, e.g. `exe_name LIKE "%cmd.exe"`.
    pub fn render(&self) -> String {
        let attr = match self.attr {
            Some(id) => id.name().to_string(),
            None => format!("<unresolved:{}>", self.spelled),
        };
        match &self.test {
            PredTest::Like(pattern) => format!("{attr} LIKE {pattern:?}"),
            PredTest::Cmp { op, value } => format!("{attr} {} {value}", op.symbol()),
        }
    }
}

/// Compiled global constraints (`agentid = "db-server"`), checked against
/// event-level attributes before any pattern work.
#[derive(Debug, Clone, Default)]
pub struct GlobalFilter {
    predicates: Vec<Predicate>,
}

impl GlobalFilter {
    pub fn compile(globals: &[GlobalConstraint]) -> GlobalFilter {
        GlobalFilter {
            predicates: globals
                .iter()
                .map(|g| {
                    Predicate::compile(
                        &AttrConstraint {
                            attr: Some(g.attr.clone()),
                            op: g.op,
                            value: g.value.clone(),
                            span: g.span,
                        },
                        AttrNs::Event,
                        g.attr.as_str(),
                    )
                })
                .collect(),
        }
    }

    /// Whether the event passes every global constraint.
    pub fn accepts(&self, event: &Event) -> bool {
        self.predicates.iter().all(|pred| pred.check_event(event))
    }

    /// Batched acceptance over a whole [`BatchView`]:
    /// `out[i] == self.accepts(&batch[i])`, computed predicate-major with a
    /// shrinking selection vector — each predicate loads its attribute
    /// column once and only re-tests rows that survived the earlier
    /// predicates.
    pub fn fill_accepts(&self, view: &BatchView<'_>, out: &mut Vec<bool>) {
        out.clear();
        if self.predicates.is_empty() {
            out.resize(view.len(), true);
            return;
        }
        out.resize(view.len(), false);
        let mut sel: Vec<u32> = (0..view.len() as u32).collect();
        let mut col = Vec::new();
        for pred in &self.predicates {
            match pred.attr {
                Some(id) => {
                    view.fill_event_attr(id, &mut col);
                    sel.retain(|&i| pred.check(col[i as usize]));
                }
                // Unresolvable attribute: never matches (same as the
                // per-event path).
                None => sel.clear(),
            }
            if sel.is_empty() {
                return;
            }
        }
        for &i in &sel {
            out[i as usize] = true;
        }
    }

    /// Deterministic fingerprint of the predicate set — equal fingerprints
    /// mean identical acceptance vectors, which is what the per-group
    /// sub-plan cache shares on.
    pub fn fingerprint(&self) -> u64 {
        let mut h = fnv1a(FNV_SEED, b"glob");
        for pred in &self.predicates {
            h = fnv1a(h, b"|");
            h = fnv1a(h, pred.render().as_bytes());
        }
        h
    }

    /// The compiled predicates (explain listings).
    pub fn predicates(&self) -> &[Predicate] {
        &self.predicates
    }
}

/// A compiled event pattern: operations, types, and attribute predicates
/// resolved to ids, with subject/object bound to entity-variable *slots*
/// (positions in [`entity_slot_names`]) instead of names.
#[derive(Debug, Clone)]
pub struct PatternMatcher {
    /// Entity-variable slot the subject binds.
    pub subject_slot: usize,
    /// Entity-variable slot the object binds.
    pub object_slot: usize,
    pub alias: String,
    ops: Vec<Operation>,
    object_type: saql_model::EntityType,
    /// Bitmask over event shape codes (see `saql_model::event::shape_code`):
    /// bit `shape_code(op, object_type)` is set for every accepted `op`.
    /// `shape_matches` is a single mask test, and the batched path ANDs the
    /// mask against a whole shape column.
    shape_mask: u64,
    subject_preds: Vec<Predicate>,
    object_preds: Vec<Predicate>,
}

impl PatternMatcher {
    /// Compile one pattern against the query's entity slot table.
    pub fn compile(p: &EventPattern, slots: &[String]) -> PatternMatcher {
        let slot_of = |var: &str| {
            slots
                .iter()
                .position(|s| s == var)
                .expect("slot table covers every pattern variable")
        };
        let shape_mask = p.ops.iter().fold(0u64, |mask, &op| {
            mask | 1u64 << saql_model::event::shape_code(op, p.object.etype)
        });
        PatternMatcher {
            subject_slot: slot_of(&p.subject.var),
            object_slot: slot_of(&p.object.var),
            alias: p.alias.clone(),
            ops: p.ops.clone(),
            object_type: p.object.etype,
            shape_mask,
            subject_preds: p
                .subject
                .constraints
                .iter()
                .map(|c| {
                    Predicate::compile(
                        c,
                        AttrNs::Process,
                        saql_model::EntityType::Process.default_attr(),
                    )
                })
                .collect(),
            object_preds: p
                .object
                .constraints
                .iter()
                .map(|c| {
                    Predicate::compile(
                        c,
                        AttrNs::of_entity(p.object.etype),
                        p.object.etype.default_attr(),
                    )
                })
                .collect(),
        }
    }

    /// Whether the event matches this pattern's *shape* only (object entity
    /// type and operation alternation), ignoring attribute constraints.
    /// This is the master query's check in the master–dependent scheme.
    pub fn shape_matches(&self, event: &Event) -> bool {
        self.shape_mask & (1u64 << event.shape_code()) != 0
    }

    /// The shape-code bitmask (batched admission ANDs it against a whole
    /// shape column; see [`BatchView::shape`]).
    pub fn shape_mask(&self) -> u64 {
        self.shape_mask
    }

    /// Whether the event satisfies this pattern (types, operation,
    /// constraints) — ignoring joins, which [`MultiMatcher`] enforces.
    /// Entirely allocation-free: predicates compare borrowed views.
    pub fn matches(&self, event: &Event) -> bool {
        if !self.shape_matches(event) {
            return false;
        }
        for pred in &self.subject_preds {
            let actual = pred.attr().and_then(|id| event.subject.attr_ref(id));
            if !pred.check(actual) {
                return false;
            }
        }
        for pred in &self.object_preds {
            if !pred.check_entity(&event.object) {
                return false;
            }
        }
        true
    }

    /// Batched [`matches`](Self::matches) over a whole [`BatchView`]:
    /// `out[i] == self.matches(&batch[i])`. The shape mask prunes the
    /// selection vector first (one byte test per row). When most rows
    /// survive, each predicate loads its attribute column once and narrows
    /// the survivors; when the shape test leaves a sparse selection,
    /// predicates probe the surviving rows directly instead of gathering
    /// whole columns.
    pub fn fill_matches(&self, view: &BatchView<'_>, out: &mut Vec<bool>) {
        out.clear();
        out.resize(view.len(), false);
        let mut sel: Vec<u32> = Vec::with_capacity(view.len());
        for (i, &code) in view.shape().iter().enumerate() {
            if self.shape_mask & (1u64 << code) != 0 {
                sel.push(i as u32);
            }
        }
        if sel.is_empty() {
            return;
        }
        let events = view.events();
        let dense = sel.len() * 4 >= view.len();
        let mut col = Vec::new();
        for pred in &self.subject_preds {
            match pred.attr() {
                Some(id) if dense => {
                    view.fill_subject_attr(id, &mut col);
                    sel.retain(|&i| pred.check(col[i as usize]));
                }
                Some(id) => {
                    sel.retain(|&i| pred.check(events[i as usize].subject.attr_ref(id)));
                }
                None => sel.clear(),
            }
            if sel.is_empty() {
                return;
            }
        }
        for pred in &self.object_preds {
            match pred.attr() {
                Some(id) if dense => {
                    view.fill_object_attr(id, &mut col);
                    sel.retain(|&i| pred.check(col[i as usize]));
                }
                Some(_) => {
                    sel.retain(|&i| pred.check_entity(&events[i as usize].object));
                }
                None => sel.clear(),
            }
            if sel.is_empty() {
                return;
            }
        }
        for &i in &sel {
            out[i as usize] = true;
        }
    }

    /// Deterministic fingerprint of everything [`matches`](Self::matches)
    /// depends on (shape + predicate sets; slots and alias are excluded —
    /// they don't affect the match column). Equal fingerprints across
    /// queries in a compatibility group mean the batched match vector can
    /// be computed once and shared.
    pub fn fingerprint(&self) -> u64 {
        let mut h = fnv1a(FNV_SEED, b"pat");
        h = fnv1a(h, &[self.object_type as u8, self.ops.len() as u8]);
        for &op in &self.ops {
            h = fnv1a(h, &[op as u8]);
        }
        h = fnv1a(h, b"|s:");
        for pred in &self.subject_preds {
            h = fnv1a(h, pred.render().as_bytes());
            h = fnv1a(h, b";");
        }
        h = fnv1a(h, b"|o:");
        for pred in &self.object_preds {
            h = fnv1a(h, pred.render().as_bytes());
            h = fnv1a(h, b";");
        }
        h
    }

    /// Compiled predicate sets, `(subject, object)` (explain listings).
    pub fn predicate_sets(&self) -> (&[Predicate], &[Predicate]) {
        (&self.subject_preds, &self.object_preds)
    }
}

/// A completed multievent match: one event per pattern step plus the final
/// variable bindings.
#[derive(Debug, Clone)]
pub struct FullMatch {
    /// Matched events in *declaration* order of the patterns.
    pub events: Vec<SharedEvent>,
    /// Entity bindings by variable slot (see [`entity_slot_names`]). Every
    /// slot is bound in a full match — each variable appears in some
    /// pattern, and all patterns matched.
    pub bindings: Vec<Option<Entity>>,
}

#[derive(Debug, Clone)]
struct Partial {
    /// Insertion sequence number: total order over live partials, assigned
    /// when the partial enters the store. Candidate iteration and eviction
    /// follow ascending `seq` — exactly the insertion order the legacy
    /// per-step queues walked.
    seq: u64,
    /// Next step (index into `order`) to satisfy.
    next: usize,
    /// events[i] = event matched for `order[i]`; `None` until reached.
    events: Vec<Option<SharedEvent>>,
    /// Accumulated entity bindings by variable slot.
    bindings: Vec<Option<Entity>>,
    last_ts: Timestamp,
}

/// Live partials waiting on one step, bucketed by the *subject join key*
/// their next pattern will demand. A partial whose next pattern's subject
/// slot is already bound can only ever be extended by an event whose
/// subject **is** that process — so candidate lookup probes one bucket
/// (`keyed[process_key(event.subject)]`) plus the `unkeyed` partials whose
/// subject slot is still free, instead of scanning every live partial.
/// This is what makes unwindowed sequence queries (no TTL ⇒ partials
/// accumulate) batch-friendly: the scan that was `O(live)` per event
/// becomes `O(candidates)`.
///
/// Key collisions are harmless: `try_extend` re-checks every join.
#[derive(Debug, Clone, Default)]
struct StepPartials {
    keyed: HashMap<u64, Vec<Partial>>,
    unkeyed: Vec<Partial>,
    /// Total partials across `keyed` and `unkeyed`.
    len: usize,
}

/// Join-key hash of a process identity (pid + exe + user — the fields
/// `ProcessInfo` equality compares).
fn process_key(pi: &ProcessInfo) -> u64 {
    let mut h = fnv1a(FNV_SEED, &[0]);
    h = fnv1a(h, &pi.pid.to_le_bytes());
    h = fnv1a(h, pi.exe_name.as_bytes());
    h = fnv1a(h, &[0xff]);
    h = fnv1a(h, pi.user.as_bytes());
    h
}

/// Bucket for partials whose subject slot is bound to a *non-process*
/// entity: no event subject can ever satisfy that join, so they can sit in
/// any keyed bucket — a rare event-key collision just re-runs the join
/// check, which rejects.
const STUCK_KEY: u64 = 0x5afe_517e_dead_0000;

/// Partial-match organization strategy (the E10 ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MatcherMode {
    /// Partials are bucketed by their next step; each incoming event tests
    /// each step's pattern **once** and only visits partials waiting on a
    /// step it matches.
    #[default]
    Indexed,
    /// Naive scan: every live partial re-tests the event against its next
    /// pattern (how a straightforward NFA implementation behaves).
    Scan,
}

/// Multievent matcher with temporal sequencing and attribute joins.
///
/// Partial-match state is bounded by `cap`; when exceeded, the oldest
/// partials of the fullest step are evicted and
/// [`MultiMatcher::overflowed`] latches (surfaced through the error
/// reporter).
#[derive(Debug)]
pub struct MultiMatcher {
    patterns: Vec<PatternMatcher>,
    /// Entity-variable slot count (partial bindings are slot-indexed).
    n_slots: usize,
    /// Temporal sequence as indices into `patterns`.
    order: Vec<usize>,
    /// `gaps[i]` = max gap between step i and step i+1.
    gaps: Vec<Option<Duration>>,
    /// Partial-match time-to-live: partials idle longer than this are
    /// dropped (derived from the query window, if any).
    ttl: Option<Duration>,
    cap: usize,
    mode: MatcherMode,
    /// `partials[s]` = live partials whose next step is `s`
    /// (`s ∈ 1..order.len()`; index 0 is unused — step-0 extensions come
    /// from the seed). In [`MatcherMode::Scan`] everything lives in the
    /// `unkeyed` side, preserving the ablation's scan-everything cost and
    /// its deterministic insertion order.
    partials: Vec<StepPartials>,
    /// Next insertion sequence number (see [`Partial::seq`]).
    next_seq: u64,
    live: usize,
    emitted: HashSet<Vec<u64>>,
    overflowed: bool,
    /// Scratch for [`feed`](Self::feed)'s per-pattern hit vector.
    hits_buf: Vec<bool>,
}

impl MultiMatcher {
    /// Build from a checked query. `cap` bounds live partial matches.
    pub fn compile(query: &Query, cap: usize) -> MultiMatcher {
        Self::compile_with_mode(query, cap, MatcherMode::default())
    }

    /// Build with an explicit [`MatcherMode`] (benchmarks compare modes).
    pub fn compile_with_mode(query: &Query, cap: usize, mode: MatcherMode) -> MultiMatcher {
        let slots = entity_slot_names(query);
        let patterns: Vec<PatternMatcher> = query
            .patterns
            .iter()
            .map(|p| PatternMatcher::compile(p, &slots))
            .collect();
        // Temporal order: the `with` clause's sequence, else declaration
        // order. Patterns outside the clause are appended in declaration
        // order (they must still match, after the sequenced ones).
        let mut order: Vec<usize> = Vec::with_capacity(patterns.len());
        let mut gaps: Vec<Option<Duration>> = Vec::new();
        if let Some(t) = &query.temporal {
            for step in &t.steps {
                let idx = query
                    .patterns
                    .iter()
                    .position(|p| p.alias == step.alias)
                    .expect("semantic pass validated aliases");
                order.push(idx);
                gaps.push(step.max_gap);
            }
            for (i, _) in query.patterns.iter().enumerate() {
                if !order.contains(&i) {
                    order.push(i);
                    gaps.push(None);
                }
            }
        } else {
            order.extend(0..patterns.len());
            gaps.resize(patterns.len(), None);
        }
        let ttl = query.window().map(|w| w.size);
        let steps = order.len();
        MultiMatcher {
            patterns,
            n_slots: slots.len(),
            order,
            gaps,
            ttl,
            cap,
            mode,
            partials: vec![StepPartials::default(); steps],
            next_seq: 0,
            live: 0,
            emitted: HashSet::new(),
            overflowed: false,
            hits_buf: Vec::new(),
        }
    }

    /// Number of live partial matches (diagnostics / benches).
    pub fn live_partials(&self) -> usize {
        self.live
    }

    /// Whether the partial-match cap was ever hit.
    pub fn overflowed(&self) -> bool {
        self.overflowed
    }

    /// The compiled patterns, in declaration order.
    pub fn patterns(&self) -> &[PatternMatcher] {
        &self.patterns
    }

    /// Feed one event; returns any full matches it completes.
    pub fn feed(&mut self, event: &SharedEvent) -> Vec<FullMatch> {
        let mut hits = std::mem::take(&mut self.hits_buf);
        hits.clear();
        hits.extend(self.patterns.iter().map(|p| p.matches(event)));
        let completed = self.feed_with_hits(event, &hits);
        self.hits_buf = hits;
        completed
    }

    /// [`feed`](Self::feed) with the per-pattern match decisions already
    /// made: `hits[i]` must equal `self.patterns()[i].matches(event)`
    /// (declaration order). The batched path computes those columns once
    /// per batch via [`PatternMatcher::fill_matches`] — possibly shared
    /// across a compatibility group — and drives the matcher row by row.
    pub fn feed_with_hits(&mut self, event: &SharedEvent, hits: &[bool]) -> Vec<FullMatch> {
        debug_assert_eq!(hits.len(), self.patterns.len());
        let mut completed = Vec::new();

        // Expire idle partials.
        if let Some(ttl) = self.ttl {
            let deadline = event.ts - ttl;
            let mut live = 0;
            for sp in &mut self.partials {
                sp.keyed.retain(|_, bucket| {
                    bucket.retain(|p| p.last_ts >= deadline);
                    !bucket.is_empty()
                });
                sp.unkeyed.retain(|p| p.last_ts >= deadline);
                sp.len = sp.keyed.values().map(Vec::len).sum::<usize>() + sp.unkeyed.len();
                live += sp.len;
            }
            self.live = live;
        }

        let mut new_partials: Vec<Partial> = Vec::new();
        let mut finished: Vec<Partial> = Vec::new();
        let steps = self.order.len();
        let event_key = process_key(&event.subject);

        // Extend existing partials, highest step first so an extension
        // created this round is never re-extended by the same event
        // (non-destructive: partials fork, the original stays live for
        // later occurrences).
        for step in (0..steps).rev() {
            if step > 0 {
                // Indexed mode: one match decision gates the whole step;
                // candidates are the event-key bucket merged with the
                // unkeyed partials, in insertion (seq) order. Scan mode
                // re-tests per partial, like a naive NFA (kept for the E10
                // ablation), and keeps everything unkeyed.
                if self.mode == MatcherMode::Indexed && !hits[self.order[step]] {
                    continue;
                }
                let sp = &self.partials[step];
                let keyed: &[Partial] = match self.mode {
                    MatcherMode::Indexed => {
                        sp.keyed.get(&event_key).map(Vec::as_slice).unwrap_or(&[])
                    }
                    MatcherMode::Scan => &[],
                };
                let unkeyed: &[Partial] = &sp.unkeyed;
                let (mut i, mut j) = (0usize, 0usize);
                while i < keyed.len() || j < unkeyed.len() {
                    let from_keyed = match (keyed.get(i), unkeyed.get(j)) {
                        (Some(a), Some(b)) => a.seq < b.seq,
                        (Some(_), None) => true,
                        _ => false,
                    };
                    let p = if from_keyed {
                        i += 1;
                        &keyed[i - 1]
                    } else {
                        j += 1;
                        &unkeyed[j - 1]
                    };
                    if self.mode == MatcherMode::Scan
                        && !self.patterns[self.order[step]].matches(event)
                    {
                        continue;
                    }
                    if let Some(ext) = self.try_extend(p, step, event) {
                        if ext.next == steps {
                            finished.push(ext);
                        } else {
                            new_partials.push(ext);
                        }
                    }
                }
            } else {
                // Step 0: try to start a fresh partial.
                if !hits[self.order[0]] {
                    continue;
                }
                let seed = Partial {
                    seq: 0,
                    next: 0,
                    events: vec![None; steps],
                    bindings: vec![None; self.n_slots],
                    last_ts: Timestamp::ZERO,
                };
                if let Some(ext) = self.try_extend(&seed, 0, event) {
                    if ext.next == steps {
                        finished.push(ext);
                    } else {
                        new_partials.push(ext);
                    }
                }
            }
        }

        for f in finished {
            self.complete(f, &mut completed);
        }

        for p in new_partials {
            self.push_partial(p);
        }

        completed
    }

    /// Insert one partial into its step's store (evicting first under cap
    /// pressure), bucketed by the subject join key its *next* pattern will
    /// demand — or unkeyed when that slot is still free.
    fn push_partial(&mut self, mut p: Partial) {
        if self.live >= self.cap {
            self.evict_one();
        }
        let step = p.next;
        let key = if self.mode == MatcherMode::Scan {
            None
        } else {
            let pat = &self.patterns[self.order[step]];
            match &p.bindings[pat.subject_slot] {
                Some(Entity::Process(pi)) => Some(process_key(pi)),
                Some(_) => Some(STUCK_KEY),
                None => None,
            }
        };
        p.seq = self.next_seq;
        self.next_seq += 1;
        let sp = &mut self.partials[step];
        match key {
            Some(k) => sp.keyed.entry(k).or_default().push(p),
            None => sp.unkeyed.push(p),
        }
        sp.len += 1;
        self.live += 1;
    }

    /// Drop the oldest partial of the fullest step (cap pressure).
    fn evict_one(&mut self) {
        let mut fullest = 0;
        let mut fullest_len = 0;
        for (i, sp) in self.partials.iter().enumerate() {
            if sp.len >= fullest_len {
                fullest = i;
                fullest_len = sp.len;
            }
        }
        if fullest_len == 0 {
            return;
        }
        // Oldest = minimum seq; buckets are in insertion order, so only
        // bucket fronts compete. Seqs are unique, so the winner (and the
        // eviction) is deterministic despite hash-map iteration order.
        let sp = &mut self.partials[fullest];
        let mut min_seq = u64::MAX;
        let mut in_bucket: Option<u64> = None;
        if let Some(p) = sp.unkeyed.first() {
            min_seq = p.seq;
        }
        for (&k, bucket) in &sp.keyed {
            if let Some(p) = bucket.first() {
                if p.seq < min_seq {
                    min_seq = p.seq;
                    in_bucket = Some(k);
                }
            }
        }
        match in_bucket {
            Some(k) => {
                let bucket = sp.keyed.get_mut(&k).expect("bucket just seen");
                bucket.remove(0);
                if bucket.is_empty() {
                    sp.keyed.remove(&k);
                }
            }
            None => {
                sp.unkeyed.remove(0);
            }
        }
        sp.len -= 1;
        self.live -= 1;
        self.overflowed = true;
    }

    /// Temporal/gap/join admission of `event` as `p`'s step `step`
    /// (pattern shape+constraints are checked by the caller).
    fn try_extend(&self, p: &Partial, step: usize, event: &SharedEvent) -> Option<Partial> {
        let pat = &self.patterns[self.order[step]];
        // Temporal order: strictly after the previous step's event.
        if step > 0 {
            if event.ts < p.last_ts {
                return None;
            }
            if let Some(max_gap) = self.gaps[step - 1] {
                if event.ts.delta(p.last_ts) > max_gap {
                    return None;
                }
            }
        }
        // Attribute joins via shared variables (slot-indexed, and checked
        // against borrowed views before anything is cloned).
        if let Some(bound) = &p.bindings[pat.subject_slot] {
            let same = matches!(bound, Entity::Process(pi) if *pi == event.subject);
            if !same {
                return None;
            }
        }
        if let Some(bound) = &p.bindings[pat.object_slot] {
            if *bound != event.object {
                return None;
            }
        }
        // Same variable as both subject and object of this event
        // (`proc p start proc p`) must self-join consistently.
        if pat.subject_slot == pat.object_slot
            && !matches!(&event.object, Entity::Process(pi) if *pi == event.subject)
        {
            return None;
        }
        let mut ext = p.clone();
        ext.bindings[pat.subject_slot] = Some(Entity::Process(event.subject.clone()));
        ext.bindings[pat.object_slot] = Some(event.object.clone());
        ext.events[step] = Some(event.clone());
        ext.next = step + 1;
        ext.last_ts = event.ts;
        Some(ext)
    }

    /// Capture every live partial match plus the dedup/eviction bookkeeping
    /// (engine checkpoints). Partials are flattened in ascending `seq`
    /// order; [`restore`](Self::restore) re-buckets them, and because both
    /// candidate iteration and eviction are `seq`-driven, a restored
    /// matcher replays the exact decisions the uninterrupted one makes.
    pub fn snapshot(&self) -> MatcherSnapshot {
        let snap_partial = |p: &Partial| PartialSnapshot {
            seq: p.seq,
            next: p.next,
            events: p
                .events
                .iter()
                .map(|e| e.as_ref().map(|e| (**e).clone()))
                .collect(),
            bindings: p.bindings.clone(),
            last_ts: p.last_ts,
        };
        let mut partials = Vec::with_capacity(self.live);
        for sp in &self.partials {
            for bucket in sp.keyed.values() {
                partials.extend(bucket.iter().map(snap_partial));
            }
            partials.extend(sp.unkeyed.iter().map(snap_partial));
        }
        partials.sort_by_key(|p| p.seq);
        let mut emitted: Vec<Vec<u64>> = self.emitted.iter().cloned().collect();
        emitted.sort();
        MatcherSnapshot {
            partials,
            next_seq: self.next_seq,
            emitted,
            overflowed: self.overflowed,
        }
    }

    /// Restore the state captured by [`snapshot`](Self::snapshot) onto a
    /// freshly compiled matcher for the same query and mode. Sequence
    /// numbers are preserved exactly — never reassigned — so insertion
    /// order, candidate order, and eviction order all survive the restart.
    pub fn restore(&mut self, snap: MatcherSnapshot) {
        for sp in &mut self.partials {
            *sp = StepPartials::default();
        }
        self.live = 0;
        for row in snap.partials {
            let p = Partial {
                seq: row.seq,
                next: row.next,
                events: row
                    .events
                    .into_iter()
                    .map(|e| e.map(std::sync::Arc::new))
                    .collect(),
                bindings: row.bindings,
                last_ts: row.last_ts,
            };
            // Same keying as push_partial, but keeping the snapshot's seq.
            let key = if self.mode == MatcherMode::Scan {
                None
            } else {
                let pat = &self.patterns[self.order[p.next]];
                match &p.bindings[pat.subject_slot] {
                    Some(Entity::Process(pi)) => Some(process_key(pi)),
                    Some(_) => Some(STUCK_KEY),
                    None => None,
                }
            };
            let sp = &mut self.partials[p.next];
            match key {
                Some(k) => sp.keyed.entry(k).or_default().push(p),
                None => sp.unkeyed.push(p),
            }
            sp.len += 1;
            self.live += 1;
        }
        self.next_seq = snap.next_seq;
        self.emitted = snap.emitted.into_iter().collect();
        self.overflowed = snap.overflowed;
    }

    fn complete(&mut self, p: Partial, out: &mut Vec<FullMatch>) {
        // Reorder events from temporal order back to declaration order.
        let mut by_decl: Vec<Option<SharedEvent>> = vec![None; self.patterns.len()];
        for (step, ev) in p.events.iter().enumerate() {
            by_decl[self.order[step]] = ev.clone();
        }
        let events: Vec<SharedEvent> = by_decl
            .into_iter()
            .map(|e| e.expect("all steps matched"))
            .collect();
        let ids: Vec<u64> = events.iter().map(|e| e.id).collect();
        if self.emitted.insert(ids) {
            out.push(FullMatch {
                events,
                bindings: p.bindings,
            });
        }
    }
}

/// One live partial match in a [`MatcherSnapshot`]. Events are stored owned
/// (re-shared on restore); `seq` is the partial's original insertion
/// sequence number and is preserved exactly across the round trip.
#[derive(Debug, Clone)]
pub struct PartialSnapshot {
    pub seq: u64,
    /// Next temporal step to satisfy (the step store it sits in).
    pub next: usize,
    /// `events[i]` = event matched for temporal step `i`, if reached.
    pub events: Vec<Option<Event>>,
    /// Entity bindings by variable slot.
    pub bindings: Vec<Option<Entity>>,
    pub last_ts: Timestamp,
}

/// Dynamic state of a [`MultiMatcher`], exact under snapshot → restore:
/// live partials (ascending `seq`), the next sequence number, the emitted
/// dedup set, and the overflow latch.
#[derive(Debug, Clone)]
pub struct MatcherSnapshot {
    pub partials: Vec<PartialSnapshot>,
    pub next_seq: u64,
    /// Emitted full-match event-id tuples (dedup set), sorted.
    pub emitted: Vec<Vec<u64>>,
    pub overflowed: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use saql_lang::parse;
    use saql_model::event::EventBuilder;
    use saql_model::{FileInfo, NetworkInfo, ProcessInfo};
    use std::sync::Arc;

    fn start_event(id: u64, ts: u64, parent: (u32, &str), child: (u32, &str)) -> SharedEvent {
        Arc::new(
            EventBuilder::new(id, "db-server", ts)
                .subject(ProcessInfo::new(parent.0, parent.1, "svc"))
                .starts_process(ProcessInfo::new(child.0, child.1, "svc"))
                .build(),
        )
    }

    fn write_file(id: u64, ts: u64, proc_: (u32, &str), file: &str, amount: u64) -> SharedEvent {
        Arc::new(
            EventBuilder::new(id, "db-server", ts)
                .subject(ProcessInfo::new(proc_.0, proc_.1, "svc"))
                .writes_file(FileInfo::new(file))
                .amount(amount)
                .build(),
        )
    }

    fn read_file(id: u64, ts: u64, proc_: (u32, &str), file: &str) -> SharedEvent {
        Arc::new(
            EventBuilder::new(id, "db-server", ts)
                .subject(ProcessInfo::new(proc_.0, proc_.1, "svc"))
                .reads_file(FileInfo::new(file))
                .build(),
        )
    }

    fn send_ip(id: u64, ts: u64, proc_: (u32, &str), dst: &str, amount: u64) -> SharedEvent {
        Arc::new(
            EventBuilder::new(id, "db-server", ts)
                .subject(ProcessInfo::new(proc_.0, proc_.1, "svc"))
                .sends(NetworkInfo::new("10.0.0.5", 50000, dst, 443, "tcp"))
                .amount(amount)
                .build(),
        )
    }

    fn matcher(src: &str) -> MultiMatcher {
        MultiMatcher::compile(&parse(src).unwrap(), 1024)
    }

    #[test]
    fn single_pattern_with_like() {
        let mut m = matcher(r#"proc p1["%cmd.exe"] start proc p2["%osql.exe"] as e1"#);
        let hit = start_event(
            1,
            10,
            (10, r"C:\Windows\System32\cmd.exe"),
            (11, "osql.exe"),
        );
        let miss = start_event(2, 20, (10, "powershell.exe"), (12, "osql.exe"));
        assert_eq!(m.feed(&hit).len(), 1);
        assert_eq!(m.feed(&miss).len(), 0);
    }

    #[test]
    fn operation_alternation() {
        let mut m = matcher(r#"proc p read || write ip i[dstip="172.16.9.129"] as e"#);
        let w = send_ip(1, 10, (5, "sbblv.exe"), "172.16.9.129", 100);
        let other = send_ip(2, 20, (5, "sbblv.exe"), "8.8.8.8", 100);
        assert_eq!(m.feed(&w).len(), 1);
        assert_eq!(m.feed(&other).len(), 0);
    }

    #[test]
    fn temporal_sequence_and_join_query1() {
        let src = r#"
proc p1["%cmd.exe"] start proc p2["%osql.exe"] as evt1
proc p3["%sqlservr.exe"] write file f1["%backup1.dmp"] as evt2
proc p4["%sbblv.exe"] read file f1 as evt3
proc p4 read || write ip i1[dstip="172.16.9.129"] as evt4
with evt1 -> evt2 -> evt3 -> evt4
"#;
        let mut m = matcher(src);
        assert!(m
            .feed(&start_event(1, 100, (1, "cmd.exe"), (2, "osql.exe")))
            .is_empty());
        assert!(m
            .feed(&write_file(
                2,
                200,
                (3, "sqlservr.exe"),
                "backup1.dmp",
                1 << 20
            ))
            .is_empty());
        assert!(m
            .feed(&read_file(3, 300, (4, "sbblv.exe"), "backup1.dmp"))
            .is_empty());
        let full = m.feed(&send_ip(4, 400, (4, "sbblv.exe"), "172.16.9.129", 1 << 20));
        assert_eq!(full.len(), 1);
        let ids: Vec<u64> = full[0].events.iter().map(|e| e.id).collect();
        assert_eq!(ids, vec![1, 2, 3, 4]);
        // Bound entities include the shared file variable (by slot).
        let slots = entity_slot_names(&parse(src).unwrap());
        let f1 = slots.iter().position(|s| s == "f1").unwrap();
        assert!(
            matches!(&full[0].bindings[f1], Some(Entity::File(f)) if &*f.name == "backup1.dmp")
        );
        // Every slot of a full match is bound.
        assert!(full[0].bindings.iter().all(|b| b.is_some()));
    }

    #[test]
    fn join_on_file_variable_rejects_different_file() {
        let src = r#"
proc p3["%sqlservr.exe"] write file f1["%backup1.dmp"] as evt2
proc p4["%sbblv.exe"] read file f1 as evt3
with evt2 -> evt3
"#;
        let mut m = matcher(src);
        m.feed(&write_file(1, 100, (3, "sqlservr.exe"), "backup1.dmp", 0));
        // Reads a *different* file: join must fail.
        assert!(m
            .feed(&read_file(2, 200, (4, "sbblv.exe"), "other.dmp"))
            .is_empty());
        // Reads the same file: join succeeds.
        assert_eq!(
            m.feed(&read_file(3, 300, (4, "sbblv.exe"), "backup1.dmp"))
                .len(),
            1
        );
    }

    #[test]
    fn join_on_process_variable_requires_same_pid() {
        let src = r#"
proc p1["%excel.exe"] start proc p2["%cscript.exe"] as e1
proc p2 write ip i1[dstip="172.16.9.129"] as e2
with e1 -> e2
"#;
        let mut m = matcher(src);
        m.feed(&start_event(1, 100, (40, "excel.exe"), (41, "cscript.exe")));
        // Different cscript pid: not the spawned process.
        assert!(m
            .feed(&send_ip(2, 200, (99, "cscript.exe"), "172.16.9.129", 10))
            .is_empty());
        // The spawned pid 41: join succeeds.
        assert_eq!(
            m.feed(&send_ip(3, 300, (41, "cscript.exe"), "172.16.9.129", 10))
                .len(),
            1
        );
    }

    #[test]
    fn temporal_order_enforced() {
        let src = r#"
proc a["%x.exe"] write file f["%1"] as e1
proc b["%y.exe"] read file g["%2"] as e2
with e1 -> e2
"#;
        let mut m = matcher(src);
        // e2-shaped event arrives first: no match even after e1 arrives.
        m.feed(&read_file(1, 100, (2, "y.exe"), "f2"));
        m.feed(&write_file(2, 200, (1, "x.exe"), "f1", 0));
        assert!(m.live_partials() > 0);
        // Now a later e2 completes.
        let full = m.feed(&read_file(3, 300, (2, "y.exe"), "f2"));
        assert_eq!(full.len(), 1);
        assert_eq!(full[0].events[0].id, 2);
        assert_eq!(full[0].events[1].id, 3);
    }

    #[test]
    fn bounded_gap_expires() {
        let src = r#"
proc a["%x.exe"] write file f["%1"] as e1
proc b["%y.exe"] read file g["%2"] as e2
with e1 ->[10 s] e2
"#;
        let mut m = matcher(src);
        m.feed(&write_file(1, 0, (1, "x.exe"), "f1", 0));
        // 20s later: outside the bounded gap.
        assert!(m.feed(&read_file(2, 20_000, (2, "y.exe"), "f2")).is_empty());
        // Fresh e1 then an in-window e2.
        m.feed(&write_file(3, 30_000, (1, "x.exe"), "f1", 0));
        assert_eq!(m.feed(&read_file(4, 35_000, (2, "y.exe"), "f2")).len(), 1);
    }

    #[test]
    fn duplicate_full_matches_are_suppressed() {
        let mut m = matcher(r#"proc p1["%cmd.exe"] start proc p2 as e1"#);
        let e = start_event(1, 10, (1, "cmd.exe"), (2, "osql.exe"));
        assert_eq!(m.feed(&e).len(), 1);
        assert_eq!(m.feed(&e).len(), 0, "same event id must not re-alert");
    }

    #[test]
    fn cap_evicts_and_latches_overflow() {
        let src = r#"
proc a["%x.exe"] write file f["%1"] as e1
proc b["%y.exe"] read file g["%2"] as e2
with e1 -> e2
"#;
        let mut m = MultiMatcher::compile(&parse(src).unwrap(), 4);
        for i in 0..10 {
            m.feed(&write_file(i, i * 10, (1, "x.exe"), "f1", 0));
        }
        assert!(m.live_partials() <= 4);
        assert!(m.overflowed());
    }

    #[test]
    fn global_filter() {
        let q = parse("agentid = \"db-server\"\nproc p start proc q as e").unwrap();
        let f = GlobalFilter::compile(&q.globals);
        let on_db = start_event(1, 10, (1, "a.exe"), (2, "b.exe"));
        assert!(f.accepts(&on_db));
        let elsewhere = Arc::new(
            EventBuilder::new(2, "client-1", 20)
                .subject(ProcessInfo::new(1, "a.exe", "u"))
                .starts_process(ProcessInfo::new(2, "b.exe", "u"))
                .build(),
        );
        assert!(!f.accepts(&elsewhere));
    }

    #[test]
    fn indexed_and_scan_modes_agree() {
        let src = r#"
proc a["%x.exe"] write file f as e1
proc b["%y.exe"] read file f as e2
with e1 -> e2
"#;
        let q = parse(src).unwrap();
        let mut indexed = MultiMatcher::compile_with_mode(&q, 4096, MatcherMode::Indexed);
        let mut scan = MultiMatcher::compile_with_mode(&q, 4096, MatcherMode::Scan);
        // Interleave writes/reads over a few files plus noise.
        let mut events: Vec<SharedEvent> = Vec::new();
        for i in 0..200u64 {
            let f = format!("f{}", i % 7);
            events.push(match i % 3 {
                0 => write_file(i, i * 10, (1, "x.exe"), &f, 0),
                1 => read_file(i, i * 10, (2, "y.exe"), &f),
                _ => start_event(i, i * 10, (3, "noise.exe"), (4, "child.exe")),
            });
        }
        let mut a: Vec<Vec<u64>> = Vec::new();
        let mut b: Vec<Vec<u64>> = Vec::new();
        for e in &events {
            a.extend(
                indexed
                    .feed(e)
                    .iter()
                    .map(|m| m.events.iter().map(|x| x.id).collect()),
            );
            b.extend(
                scan.feed(e)
                    .iter()
                    .map(|m| m.events.iter().map(|x| x.id).collect()),
            );
        }
        a.sort();
        b.sort();
        assert!(!a.is_empty());
        assert_eq!(a, b);
    }

    #[test]
    fn multiple_interleaved_sequences_all_found() {
        let src = r#"
proc a["%x.exe"] write file f as e1
proc b["%y.exe"] read file f as e2
with e1 -> e2
"#;
        let mut m = matcher(src);
        m.feed(&write_file(1, 10, (1, "x.exe"), "fA", 0));
        m.feed(&write_file(2, 20, (1, "x.exe"), "fB", 0));
        let a = m.feed(&read_file(3, 30, (2, "y.exe"), "fA"));
        assert_eq!(a.len(), 1);
        let b = m.feed(&read_file(4, 40, (2, "y.exe"), "fB"));
        assert_eq!(b.len(), 1);
    }
}
