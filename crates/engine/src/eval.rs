//! Expression evaluation: the compiled-program loop and the tree-walking
//! interpreter.
//!
//! The hot path is [`run_program`]: a small loop over a flat [`Program`]
//! that loads from the fixed slot arrays of an [`ExecCtx`]. The original
//! tree-walking interpreter ([`eval`] over a [`Scope`]) survives as the
//! differential-testing oracle; both paths dispatch binary operators
//! through one shared kernel (`combine`), so they cannot disagree on
//! operator semantics.
//!
//! A [`Scope`] assembles whatever context is live when an expression is
//! interpreted: matched events and entity bindings (rule queries), window
//! states with history (`ss[1].avg_amount`), invariant variables, and the
//! cluster outcome of the current group. Name resolution tries, in order:
//! event aliases, entity variables, state blocks, invariant variables, the
//! `cluster` pseudo-object — anything unresolved yields [`Value::Missing`].

use std::collections::HashMap;

use saql_lang::ast::{BinOp, CmpOp, Expr, UnaryOp};
use saql_lang::resolve::ClusterField;
use saql_model::{AttrValue, Entity, Event};

use crate::plan::{ExecCtx, Op, Program};
use crate::value::Value;

/// Cluster outcome of a group, exposed as `cluster.outlier`,
/// `cluster.cluster_id`, and `cluster.size`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterOutcome {
    pub outlier: bool,
    /// Dense cluster id; `None` for noise points.
    pub cluster_id: Option<usize>,
    /// Population of the point's cluster (1 for noise).
    pub size: usize,
}

impl ClusterOutcome {
    /// Field access shared by both execution paths.
    fn field(self, field: ClusterField) -> Value {
        match field {
            ClusterField::Outlier => Value::bool(self.outlier),
            ClusterField::ClusterId => match self.cluster_id {
                Some(id) => Value::int(id as i64),
                None => Value::int(-1),
            },
            ClusterField::Size => Value::int(self.size as i64),
        }
    }
}

/// Resolves `ss[i].field` state references.
pub trait StateLookup {
    /// Value of `field` of state `name`, `back` windows before the current
    /// one, for the group in scope. `Missing` when out of history.
    fn state_value(&self, name: &str, back: usize, field: Option<&str>) -> Value;
}

/// Empty state lookup for rule-query scopes.
pub struct NoState;

impl StateLookup for NoState {
    fn state_value(&self, _: &str, _: usize, _: Option<&str>) -> Value {
        Value::Missing
    }
}

/// Index-based state access for compiled programs: the deploy-time
/// counterpart of [`StateLookup`] (names and field positions were resolved
/// when the plan was built).
pub trait StateSlots {
    /// Value of field `field` of the query's state block, `back` windows
    /// before the current one, for the group in scope.
    fn field(&self, back: usize, field: usize) -> Value;
}

/// Empty slot lookup for contexts without a state block.
pub struct NoSlots;

impl StateSlots for NoSlots {
    fn field(&self, _: usize, _: usize) -> Value {
        Value::Missing
    }
}

/// Evaluate a *load* op (one that reads no registers). `None` for
/// register-consuming ops.
fn load_op(op: &Op, ctx: &ExecCtx<'_>, consts: &[Value]) -> Option<Value> {
    Some(match *op {
        Op::Const { idx, .. } => consts[idx as usize].clone(),
        Op::Missing { .. } => Value::Missing,
        Op::EventId { slot, .. } => match ctx.events.get(slot as usize).copied().flatten() {
            Some(event) => Value::int(event.id as i64),
            None => Value::Missing,
        },
        Op::EventAttr { slot, attr, .. } => match ctx
            .events
            .get(slot as usize)
            .copied()
            .flatten()
            .and_then(|event| event.attr_value(attr))
        {
            Some(v) => Value::Attr(v),
            None => Value::Missing,
        },
        Op::EntityAttr { slot, attr, .. } => match ctx
            .entities
            .get(slot as usize)
            .copied()
            .flatten()
            .and_then(|entity| entity.attr_value(attr))
        {
            Some(v) => Value::Attr(v),
            None => Value::Missing,
        },
        Op::State { back, field, .. } => ctx.states.field(back as usize, field as usize),
        Op::GroupKey { slot, .. } => match ctx.group_keys.get(slot as usize) {
            Some(v) => Value::Attr(v.clone()),
            None => Value::Missing,
        },
        Op::Invariant { slot, .. } => ctx
            .invariants
            .get(slot as usize)
            .cloned()
            .unwrap_or(Value::Missing),
        Op::Cluster { field, .. } => match ctx.cluster {
            Some(outcome) => outcome.field(field),
            None => Value::Missing,
        },
        Op::Not { .. } | Op::Neg { .. } | Op::Card { .. } | Op::Bin { .. } => return None,
    })
}

/// Execute a compiled program against a context — the per-event
/// replacement for [`eval`] over a [`Scope`]. `regs` is a caller-owned
/// scratch register file, reused across calls to keep the hot path
/// allocation-free once warm.
pub fn run_program(program: &Program, ctx: &ExecCtx<'_>, regs: &mut Vec<Value>) -> Value {
    // Single-op programs (a bare attribute load, a constant) skip the
    // register file entirely — the common shape of state-field arguments
    // and return items.
    if let [op] = program.ops.as_slice() {
        if let Some(v) = load_op(op, ctx, &program.consts) {
            return v;
        }
    }
    regs.clear();
    regs.resize(program.regs, Value::Missing);
    for op in &program.ops {
        let (dst, value) = match *op {
            Op::Not { dst, src } => (
                dst,
                match &regs[src as usize] {
                    Value::Missing => Value::Missing,
                    other => Value::bool(!other.truthy()),
                },
            ),
            Op::Neg { dst, src } => (
                dst,
                match regs[src as usize].as_f64() {
                    Some(x) => Value::float(-x),
                    None => Value::Missing,
                },
            ),
            Op::Card { dst, src } => (dst, regs[src as usize].cardinality()),
            Op::Bin { dst, op, lhs, rhs } => {
                // Straight-line registers are written once: take the
                // operands to skip refcount traffic on sets/strings.
                let l = std::mem::replace(&mut regs[lhs as usize], Value::Missing);
                let r = std::mem::replace(&mut regs[rhs as usize], Value::Missing);
                (dst, combine(op, l, r))
            }
            ref load => (
                load.dst(),
                load_op(load, ctx, &program.consts).expect("load ops carry no registers"),
            ),
        };
        regs[dst as usize] = value;
    }
    regs.pop().unwrap_or(Value::Missing)
}

/// One row of a batched *event-context* evaluation: the event plus the
/// alias/entity slots it fills. This is the whole context a state-field or
/// rule-side program can see per event — everything else (states, group
/// keys, invariants, cluster) is window-close context and loads `Missing`,
/// exactly as the per-event path's empty slices do.
#[derive(Debug, Clone, Copy)]
pub struct EventRow<'a> {
    pub event: &'a Event,
    /// Alias slot this event fills (`events[ev_slot] = Some(event)`).
    pub ev_slot: usize,
    /// Entity-variable slot bound to the event's subject process.
    pub subject_slot: usize,
    /// Entity-variable slot bound to the event's object entity.
    pub object_slot: usize,
}

/// Evaluate a *load* op against one [`EventRow`]. `None` for
/// register-consuming ops. Mirrors [`load_op`] over the row's implied
/// context: the object binding is checked before the subject because the
/// per-event path writes the subject slot first and the object slot
/// second — on a slot collision the object wins.
fn load_row(op: &Op, row: &EventRow<'_>, consts: &[Value]) -> Option<Value> {
    Some(match *op {
        Op::Const { idx, .. } => consts[idx as usize].clone(),
        Op::Missing { .. } => Value::Missing,
        Op::EventId { slot, .. } => {
            if slot as usize == row.ev_slot {
                Value::int(row.event.id as i64)
            } else {
                Value::Missing
            }
        }
        Op::EventAttr { slot, attr, .. } => {
            let v = if slot as usize == row.ev_slot {
                row.event.attr_value(attr)
            } else {
                None
            };
            match v {
                Some(v) => Value::Attr(v),
                None => Value::Missing,
            }
        }
        Op::EntityAttr { slot, attr, .. } => {
            let slot = slot as usize;
            let v = if slot == row.object_slot {
                row.event.object.attr_value(attr)
            } else if slot == row.subject_slot {
                row.event.subject.attr_value(attr)
            } else {
                None
            };
            match v {
                Some(v) => Value::Attr(v),
                None => Value::Missing,
            }
        }
        Op::State { .. } | Op::GroupKey { .. } | Op::Invariant { .. } | Op::Cluster { .. } => {
            Value::Missing
        }
        Op::Not { .. } | Op::Neg { .. } | Op::Card { .. } | Op::Bin { .. } => return None,
    })
}

/// Execute a compiled program across a whole batch of event rows — the
/// vectorized counterpart of [`run_program`] for event-context programs
/// (state fields, rule-side expressions). Ops run *op-major* over register
/// **columns** (`cols`, register-major: register `r`'s column occupies
/// `cols[r*n .. (r+1)*n]`), so each op's dispatch is amortized over the
/// batch. `out` receives the result column, one value per row, identical
/// to `n` calls of `run_program` with the row's implied context.
///
/// Both scratch vectors are caller-owned and reused across batches.
pub fn run_program_batch(
    program: &Program,
    rows: &[EventRow<'_>],
    cols: &mut Vec<Value>,
    out: &mut Vec<Value>,
) {
    out.clear();
    let n = rows.len();
    if n == 0 {
        return;
    }
    if program.ops.is_empty() || program.regs == 0 {
        out.resize(n, Value::Missing);
        return;
    }
    // Single-op programs (a bare attribute load, a constant) skip the
    // column file entirely — the common shape of state-field arguments.
    if let [op] = program.ops.as_slice() {
        if load_row(op, &rows[0], &program.consts).is_some() {
            out.extend(
                rows.iter()
                    .map(|row| load_row(op, row, &program.consts).expect("load op")),
            );
            return;
        }
    }
    cols.clear();
    cols.resize(program.regs * n, Value::Missing);
    for op in &program.ops {
        match *op {
            Op::Not { dst, src } => {
                for i in 0..n {
                    let v = match &cols[src as usize * n + i] {
                        Value::Missing => Value::Missing,
                        other => Value::bool(!other.truthy()),
                    };
                    cols[dst as usize * n + i] = v;
                }
            }
            Op::Neg { dst, src } => {
                for i in 0..n {
                    let v = match cols[src as usize * n + i].as_f64() {
                        Some(x) => Value::float(-x),
                        None => Value::Missing,
                    };
                    cols[dst as usize * n + i] = v;
                }
            }
            Op::Card { dst, src } => {
                for i in 0..n {
                    let v = cols[src as usize * n + i].cardinality();
                    cols[dst as usize * n + i] = v;
                }
            }
            Op::Bin { dst, op, lhs, rhs } => {
                for i in 0..n {
                    // Straight-line registers are consumed once: take the
                    // operands, as the per-event loop does.
                    let l = std::mem::replace(&mut cols[lhs as usize * n + i], Value::Missing);
                    let r = std::mem::replace(&mut cols[rhs as usize * n + i], Value::Missing);
                    cols[dst as usize * n + i] = combine(op, l, r);
                }
            }
            ref load => {
                let dst = load.dst() as usize;
                for (i, row) in rows.iter().enumerate() {
                    cols[dst * n + i] =
                        load_row(load, row, &program.consts).expect("load ops carry no registers");
                }
            }
        }
    }
    let result = (program.regs - 1) * n;
    out.extend(
        cols[result..result + n]
            .iter_mut()
            .map(|v| std::mem::replace(v, Value::Missing)),
    );
}

/// The binary-operator kernel shared by the interpreter and the program
/// loop. `&&`/`||` are *eager* here: evaluation is total and effect-free,
/// so consuming both operands yields exactly the short-circuit result the
/// interpreter computes (the interpreter still short-circuits for speed).
pub(crate) fn combine(op: BinOp, l: Value, r: Value) -> Value {
    match op {
        BinOp::And => {
            if l.is_missing() {
                return Value::Missing;
            }
            if !l.truthy() {
                return Value::bool(false);
            }
            if r.is_missing() {
                return Value::Missing;
            }
            Value::bool(r.truthy())
        }
        BinOp::Or => {
            if !l.is_missing() && l.truthy() {
                return Value::bool(true);
            }
            if r.is_missing() {
                return if l.is_missing() {
                    Value::Missing
                } else {
                    Value::bool(false)
                };
            }
            if r.truthy() {
                return Value::bool(true);
            }
            if l.is_missing() {
                Value::Missing
            } else {
                Value::bool(false)
            }
        }
        BinOp::Cmp(cmp) => {
            if l.is_missing() || r.is_missing() {
                return Value::Missing;
            }
            let result = match cmp {
                CmpOp::Eq => l.loose_eq(&r),
                CmpOp::Ne => l.loose_eq(&r).map(|b| !b),
                CmpOp::Lt => l.loose_cmp(&r).map(|o| o.is_lt()),
                CmpOp::Le => l.loose_cmp(&r).map(|o| o.is_le()),
                CmpOp::Gt => l.loose_cmp(&r).map(|o| o.is_gt()),
                CmpOp::Ge => l.loose_cmp(&r).map(|o| o.is_ge()),
            };
            match result {
                Some(b) => Value::bool(b),
                None => Value::Missing,
            }
        }
        BinOp::Union => l.union(&r),
        BinOp::Diff => l.diff(&r),
        BinOp::Intersect => l.intersect(&r),
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => {
            let (Some(a), Some(b)) = (l.as_f64(), r.as_f64()) else {
                return Value::Missing;
            };
            let x = match op {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                BinOp::Div => {
                    if b == 0.0 {
                        return Value::Missing;
                    }
                    a / b
                }
                BinOp::Mod => {
                    if b == 0.0 {
                        return Value::Missing;
                    }
                    a % b
                }
                _ => unreachable!("arithmetic arm"),
            };
            Value::float(x)
        }
    }
}

/// Evaluation scope. Build one per alert/return evaluation.
pub struct Scope<'a> {
    /// alias → matched event (rule queries; also the single pattern of
    /// stateful queries while aggregating).
    pub events: HashMap<&'a str, &'a saql_model::Event>,
    /// entity variable → bound entity.
    pub entities: HashMap<&'a str, &'a Entity>,
    /// Group-key values by `var` / `var.attr` textual form (stateful queries
    /// evaluate return/alert per group, where only group keys are bound).
    pub group_keys: HashMap<String, AttrValue>,
    /// State lookup for `ss[i].field`.
    pub states: &'a dyn StateLookup,
    /// Invariant variables of the group in scope (owned: invariant runtimes
    /// mutate while scopes are alive).
    pub invariants: HashMap<String, Value>,
    /// Cluster outcome of the group in scope.
    pub cluster: Option<ClusterOutcome>,
}

impl<'a> Scope<'a> {
    /// An empty scope (everything resolves to `Missing`).
    pub fn empty() -> Scope<'a> {
        Scope {
            events: HashMap::new(),
            entities: HashMap::new(),
            group_keys: HashMap::new(),
            states: &NoState,
            invariants: HashMap::new(),
            cluster: None,
        }
    }

    fn resolve(&self, base: &str, index: Option<usize>, attr: Option<&str>) -> Value {
        // 1. `cluster.*` pseudo-object.
        if base == "cluster" {
            let Some(c) = self.cluster else {
                return Value::Missing;
            };
            return match attr {
                Some("outlier") => Value::bool(c.outlier),
                Some("cluster_id") => match c.cluster_id {
                    Some(id) => Value::int(id as i64),
                    None => Value::int(-1),
                },
                Some("size") => Value::int(c.size as i64),
                _ => Value::Missing,
            };
        }
        // 2. State reference (with or without `[i]`).
        let state = self.states.state_value(base, index.unwrap_or(0), attr);
        if !state.is_missing() {
            return state;
        }
        if index.is_some() {
            // Indexed refs are necessarily states; don't fall through.
            return state;
        }
        // 3. Event alias attribute: `evt.amount`.
        if let Some(event) = self.events.get(base) {
            if let Some(attr) = attr {
                if let Some(v) = event.attr(attr) {
                    return Value::Attr(v);
                }
                // Fall through to subject/object resolution below via
                // entities map (aliases don't carry entity attrs).
                return Value::Missing;
            }
            return Value::int(event.id as i64);
        }
        // 4. Entity variable: `p1.exe_name`, or `p1` (default attr).
        if let Some(entity) = self.entities.get(base) {
            let attr_name = attr.unwrap_or_else(|| entity.entity_type().default_attr());
            return match entity.attr(attr_name) {
                Some(v) => Value::Attr(v),
                None => Value::Missing,
            };
        }
        // 5. Group keys (stateful queries): exact `var.attr` form first,
        // then bare `var`.
        let key = match attr {
            Some(a) => format!("{base}.{a}"),
            None => base.to_string(),
        };
        if let Some(v) = self.group_keys.get(&key) {
            return Value::Attr(v.clone());
        }
        // A bare group key may have been declared as `var` but referenced
        // with its default attribute spelled out (or vice versa); the
        // builder inserts both spellings, so no extra logic here.
        // 6. Invariant variables.
        if let Some(v) = self.invariants.get(base) {
            if attr.is_none() {
                return v.clone();
            }
        }
        Value::Missing
    }
}

/// Evaluate an expression in a scope. Total: never panics on stream data;
/// anything unresolvable is `Missing`.
pub fn eval(expr: &Expr, scope: &Scope<'_>) -> Value {
    match expr {
        Expr::Lit(l) => Value::Attr(l.to_attr()),
        Expr::EmptySet => Value::empty_set(),
        Expr::Ref(r) => scope.resolve(&r.base, r.index, r.attr.as_deref()),
        Expr::Card(e) => eval(e, scope).cardinality(),
        Expr::Unary { op, expr } => {
            let v = eval(expr, scope);
            match op {
                UnaryOp::Not => match v {
                    Value::Missing => Value::Missing,
                    other => Value::bool(!other.truthy()),
                },
                UnaryOp::Neg => match v.as_f64() {
                    Some(x) => Value::float(-x),
                    None => Value::Missing,
                },
            }
        }
        Expr::Binary { op, lhs, rhs } => eval_binary(*op, lhs, rhs, scope),
        // Aggregate calls never appear outside state fields (semantic pass
        // guarantees it); the state maintainer evaluates field *arguments*,
        // not the calls themselves.
        Expr::Call { .. } => Value::Missing,
    }
}

fn eval_binary(op: BinOp, lhs: &Expr, rhs: &Expr, scope: &Scope<'_>) -> Value {
    // Short-circuit the logical operators (the kernel's eager forms agree
    // on values; skipping the right subtree is pure speed).
    let l = eval(lhs, scope);
    match op {
        BinOp::And if l.is_missing() => return Value::Missing,
        BinOp::And if !l.truthy() => return Value::bool(false),
        BinOp::Or if !l.is_missing() && l.truthy() => return Value::bool(true),
        _ => {}
    }
    combine(op, l, eval(rhs, scope))
}

#[cfg(test)]
mod tests {
    use super::*;
    use saql_lang::parser::Parser;
    use saql_model::event::EventBuilder;
    use saql_model::{FileInfo, ProcessInfo};

    fn expr(src: &str) -> Expr {
        Parser::new(saql_lang::lexer::lex(src).unwrap())
            .expr()
            .unwrap()
    }

    fn ev() -> saql_model::Event {
        EventBuilder::new(3, "db-server", 1234)
            .subject(ProcessInfo::new(77, "sqlservr.exe", "svc"))
            .writes_file(FileInfo::new("backup1.dmp"))
            .amount(4096)
            .build()
    }

    #[test]
    fn literal_arithmetic() {
        let s = Scope::empty();
        assert_eq!(eval(&expr("1 + 2 * 3"), &s).as_f64(), Some(7.0));
        assert_eq!(eval(&expr("(1 + 2) * 3"), &s).as_f64(), Some(9.0));
        assert_eq!(eval(&expr("10 / 4"), &s).as_f64(), Some(2.5));
        assert_eq!(eval(&expr("10 % 3"), &s).as_f64(), Some(1.0));
        assert_eq!(eval(&expr("-(3)"), &s).as_f64(), Some(-3.0));
    }

    #[test]
    fn division_by_zero_is_missing() {
        let s = Scope::empty();
        assert!(eval(&expr("1 / 0"), &s).is_missing());
        assert!(eval(&expr("1 % 0"), &s).is_missing());
    }

    #[test]
    fn event_attr_resolution() {
        let event = ev();
        let mut s = Scope::empty();
        s.events.insert("evt", &event);
        assert_eq!(eval(&expr("evt.amount"), &s).as_f64(), Some(4096.0));
        assert_eq!(eval(&expr("evt.agentid"), &s).to_string(), "db-server");
        assert!(eval(&expr("evt.bogus"), &s).is_missing());
    }

    #[test]
    fn entity_default_attr_shortcut() {
        let entity = Entity::Process(ProcessInfo::new(9, "cmd.exe", "u"));
        let mut s = Scope::empty();
        s.entities.insert("p1", &entity);
        assert_eq!(eval(&expr("p1"), &s).to_string(), "cmd.exe");
        assert_eq!(eval(&expr("p1.pid"), &s).as_f64(), Some(9.0));
        assert_eq!(eval(&expr("p1.exe_name"), &s).to_string(), "cmd.exe");
    }

    #[test]
    fn comparisons_and_logic() {
        let event = ev();
        let mut s = Scope::empty();
        s.events.insert("evt", &event);
        assert!(eval(&expr("evt.amount > 1000 && evt.amount < 10000"), &s).truthy());
        assert!(!eval(&expr("evt.amount > 1000 && evt.amount > 10000"), &s).truthy());
        assert!(eval(&expr("evt.amount = 4096"), &s).truthy());
        assert!(eval(&expr("!(evt.amount = 4096)"), &s)
            .loose_eq(&Value::bool(false))
            .unwrap());
    }

    #[test]
    fn missing_propagates_and_blocks_alerts() {
        let s = Scope::empty();
        let v = eval(&expr("ss[1].avg > 10"), &s);
        assert!(v.is_missing());
        assert!(!v.truthy());
        // Short-circuit still definite when LHS is definite false.
        assert!(!eval(&expr("1 > 2 && nosuch.x > 1"), &s).truthy());
        assert!(eval(&expr("1 < 2 || nosuch.x > 1"), &s).truthy());
    }

    #[test]
    fn set_expressions() {
        let mut s = Scope::empty();
        s.invariants.insert(
            "a".to_string(),
            Value::set_from(["cmd.exe".to_string(), "php.exe".to_string()]),
        );
        assert_eq!(eval(&expr("|a|"), &s).as_f64(), Some(2.0));
        assert_eq!(eval(&expr("|a diff empty_set|"), &s).as_f64(), Some(2.0));
        assert_eq!(eval(&expr("|empty_set diff a|"), &s).as_f64(), Some(0.0));
        assert!(eval(&expr("|a| > 1"), &s).truthy());
    }

    #[test]
    fn cluster_pseudo_object() {
        let mut s = Scope::empty();
        s.cluster = Some(ClusterOutcome {
            outlier: true,
            cluster_id: None,
            size: 1,
        });
        assert!(eval(&expr("cluster.outlier"), &s).truthy());
        assert_eq!(eval(&expr("cluster.cluster_id"), &s).as_f64(), Some(-1.0));
        assert_eq!(eval(&expr("cluster.size"), &s).as_f64(), Some(1.0));
        s.cluster = None;
        assert!(eval(&expr("cluster.outlier"), &s).is_missing());
    }

    #[test]
    fn group_key_resolution() {
        let mut s = Scope::empty();
        s.group_keys
            .insert("i.dstip".into(), AttrValue::str("10.0.0.9"));
        s.group_keys.insert("p".into(), AttrValue::str("cmd.exe"));
        assert_eq!(eval(&expr("i.dstip"), &s).to_string(), "10.0.0.9");
        assert_eq!(eval(&expr("p"), &s).to_string(), "cmd.exe");
    }

    #[test]
    fn batched_programs_match_per_event_oracle() {
        use crate::plan::{EntityBind, QueryPlan};
        // Field programs exercise loads, arithmetic, and an entity attr.
        let checked = saql_lang::compile(
            "proc p write file f as evt #time(10 min)\nstate[3] ss { scaled := sum(evt.amount * 2 + 1); name := count(f.name) } group by p\nalert ss[0].scaled > 10\nreturn p",
        )
        .unwrap();
        let plan = QueryPlan::compile(&checked);
        let events: Vec<saql_model::Event> = (0..5)
            .map(|i| {
                EventBuilder::new(i, "db-server", 100 * i)
                    .subject(ProcessInfo::new(7, "sqlservr.exe", "svc"))
                    .writes_file(FileInfo::new(format!("f{i}.dmp")))
                    .amount(1000 * i)
                    .build()
            })
            .collect();
        let rows: Vec<EventRow<'_>> = events
            .iter()
            .map(|event| EventRow {
                event,
                ev_slot: 0,
                subject_slot: plan.pattern_slots[0].0,
                object_slot: plan.pattern_slots[0].1,
            })
            .collect();
        let (mut cols, mut out, mut regs) = (Vec::new(), Vec::new(), Vec::new());
        for program in plan
            .field_programs
            .iter()
            .chain(plan.ret.iter().map(|(_, p)| p))
        {
            run_program_batch(program, &rows, &mut cols, &mut out);
            assert_eq!(out.len(), rows.len());
            for (row, got) in rows.iter().zip(&out) {
                let events_slot = [Some(row.event)];
                let entities = [
                    Some(EntityBind::Subject(&row.event.subject)),
                    Some(EntityBind::Entity(&row.event.object)),
                ];
                let expected = crate::eval::run_program(
                    program,
                    &ExecCtx {
                        events: &events_slot,
                        entities: &entities,
                        group_keys: &[],
                        states: &NoSlots,
                        invariants: &[],
                        cluster: None,
                    },
                    &mut regs,
                );
                assert_eq!(format!("{got:?}"), format!("{expected:?}"));
            }
        }
    }

    #[test]
    fn query2_alert_shape_with_history() {
        struct FakeStates;
        impl StateLookup for FakeStates {
            fn state_value(&self, name: &str, back: usize, field: Option<&str>) -> Value {
                if name != "ss" || field != Some("avg_amount") {
                    return Value::Missing;
                }
                match back {
                    0 => Value::float(50_000.0),
                    1 => Value::float(1_000.0),
                    2 => Value::float(2_000.0),
                    _ => Value::Missing,
                }
            }
        }
        let mut s = Scope::empty();
        s.states = &FakeStates;
        let alert = expr(
            "(ss[0].avg_amount > (ss[0].avg_amount + ss[1].avg_amount + ss[2].avg_amount) / 3) && (ss[0].avg_amount > 10000)",
        );
        assert!(eval(&alert, &s).truthy());
    }
}
