//! Engine checkpoints: the full dynamic state of every registered query,
//! frozen at an exact stream position and written atomically to disk.
//!
//! A checkpoint pairs with the durable event store
//! ([`saql_stream::durable`]): the store pins the event suffix, the
//! checkpoint pins the engine state at `offset` into it, and
//! [`Engine::resume_from`](crate::Engine::resume_from) +
//! [`StoreSource::open_at`](saql_stream::source::StoreSource::open_at)
//! replay the suffix so the resumed alert stream equals the uninterrupted
//! run's.
//!
//! ## File format
//!
//! One file, `checkpoint.saqlckp`, written tmp + fsync + rename so a crash
//! mid-write leaves either the previous checkpoint or none — never a torn
//! one. Layout (all integers varint unless noted, the
//! [`saql_model::codec`] wire dialect):
//!
//! ```text
//! "SAQLCKP1"                      magic, 8 bytes
//! version: u8                     CHECKPOINT_VERSION
//! offset, frontier_ms             stream position
//! partial_match_cap, lateness_ms, exec: u8     QueryConfig (plan identity)
//! n_rows, then per registry row:
//!   status: u8 (0 active / 1 paused / 2 removed)
//!   name, source: string          retained SAQL text for recompilation
//!   snapshot (live rows only):    QuerySnapshot blob, see below
//! n_adapters, then per pipeline edge (v2+):
//!   upstream: string, seq         alert→event adapter position
//! ```
//!
//! Floats are stored as their IEEE-754 bit patterns (fixed 8-byte LE), so
//! accumulator state — including Welford `m2` — round-trips bit-exactly;
//! signed integers zigzag. Tombstoned rows keep their slots so resumed
//! [`QueryId`](crate::QueryId)s align with the original run's.

use std::fs::{self, File};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use saql_model::codec::{
    self, decode_entity, decode_event, encode_entity, encode_event, get_string, get_u64,
    put_string, put_u64, DecodeError,
};
use saql_model::{AttrValue, Timestamp};

use crate::error::EngineError;
use crate::invariant::{InvariantGroupSnapshot, InvariantSnapshot, Phase};
use crate::matcher::{MatcherSnapshot, PartialSnapshot};
use crate::query::{ExecMode, QueryConfig, QuerySnapshot, QueryStats};
use crate::state::{AccumSnapshot, GroupAccumSnapshot, GroupHistorySnapshot, StateSnapshot};
use crate::value::Value;
use crate::window::WindowSnapshot;

/// Leading magic of a checkpoint file.
pub const CHECKPOINT_MAGIC: &[u8; 8] = b"SAQLCKP1";

/// Format version byte written after the magic.
pub const CHECKPOINT_VERSION: u8 = 2;

/// File name a checkpoint occupies inside its directory.
pub const CHECKPOINT_FILE: &str = "checkpoint.saqlckp";

/// Lifecycle status of one registry row inside a checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowStatus {
    Active,
    Paused,
    /// Tombstone: the query was deregistered before the checkpoint. Kept so
    /// row indices — and therefore resumed [`QueryId`](crate::QueryId)s —
    /// align with the original run's.
    Removed,
}

/// One registry row: the query's identity (name + retained source) plus its
/// frozen dynamic state. `snapshot` is `Some` iff the row is live.
#[derive(Debug, Clone)]
pub struct CheckpointRow {
    pub name: String,
    pub source: String,
    pub status: RowStatus,
    pub snapshot: Option<QuerySnapshot>,
}

/// A frozen engine: stream position, plan-identity config, and every
/// registry row's state. Produced by
/// [`Engine::checkpoint`](crate::Engine::checkpoint), consumed by
/// [`Engine::resume_from`](crate::Engine::resume_from).
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Position of the next unprocessed event in the durable store: feed
    /// the resumed engine `store.iter_from(offset)`.
    pub offset: u64,
    /// The session's merge frontier at `offset` (resumed sessions report
    /// time from here).
    pub frontier: Timestamp,
    /// The [`QueryConfig`] every query was compiled under — plan identity;
    /// resume recompiles under exactly this config.
    pub config: QueryConfig,
    pub rows: Vec<CheckpointRow>,
    /// Pipeline alert→event adapter positions: `(upstream query name,
    /// next adapted-event sequence number)` per live pipeline edge, so a
    /// resumed topology keeps minting the same deterministic derived
    /// event ids. Empty for engines without pipelines (and for version-1
    /// checkpoints). The engine itself ignores this field — the pipeline
    /// wiring layer fills and consumes it.
    pub adapters: Vec<(String, u64)>,
}

impl Checkpoint {
    /// The checkpoint file path inside `dir`.
    pub fn path_in(dir: &Path) -> PathBuf {
        dir.join(CHECKPOINT_FILE)
    }

    /// Serialize to the on-disk byte format.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(256 + self.rows.len() * 256);
        buf.put_slice(CHECKPOINT_MAGIC);
        buf.put_u8(CHECKPOINT_VERSION);
        put_u64(&mut buf, self.offset);
        put_u64(&mut buf, self.frontier.as_millis());
        put_u64(&mut buf, self.config.partial_match_cap as u64);
        put_u64(&mut buf, self.config.allowed_lateness.as_millis());
        buf.put_u8(match self.config.exec {
            ExecMode::Compiled => 0,
            ExecMode::Interpreted => 1,
        });
        put_u64(&mut buf, self.rows.len() as u64);
        for row in &self.rows {
            buf.put_u8(match row.status {
                RowStatus::Active => 0,
                RowStatus::Paused => 1,
                RowStatus::Removed => 2,
            });
            put_string(&mut buf, &row.name);
            put_string(&mut buf, &row.source);
            if row.status != RowStatus::Removed {
                let snap = row
                    .snapshot
                    .as_ref()
                    .expect("live checkpoint rows carry state");
                put_query_snapshot(&mut buf, snap);
            }
        }
        put_u64(&mut buf, self.adapters.len() as u64);
        for (upstream, seq) in &self.adapters {
            put_string(&mut buf, upstream);
            put_u64(&mut buf, *seq);
        }
        buf.freeze()
    }

    /// Decode a checkpoint from its on-disk bytes.
    pub fn decode(data: Bytes) -> Result<Checkpoint, EngineError> {
        decode_impl(data).map_err(|e| EngineError::Checkpoint(format!("corrupt checkpoint: {e}")))
    }

    /// Write the checkpoint into `dir` (created if absent) atomically: the
    /// bytes land in a `.tmp` sibling, are fsynced, and replace
    /// [`CHECKPOINT_FILE`] via rename. A crash at any point leaves the
    /// previous checkpoint (or none) intact. Returns the final path.
    pub fn write_atomic(&self, dir: &Path) -> Result<PathBuf, EngineError> {
        let io =
            |e: std::io::Error| EngineError::Checkpoint(format!("write {}: {e}", dir.display()));
        fs::create_dir_all(dir).map_err(io)?;
        let tmp = dir.join(".checkpoint.saqlckp.tmp");
        let path = Checkpoint::path_in(dir);
        let data = self.encode();
        let mut f = File::create(&tmp).map_err(io)?;
        f.write_all(&data).map_err(io)?;
        // The rename below is only atomic-durable if the bytes it exposes
        // already reached the disk.
        f.sync_all().map_err(io)?;
        drop(f);
        fs::rename(&tmp, &path).map_err(io)?;
        if let Ok(d) = File::open(dir) {
            // Persist the rename itself; best-effort (not all platforms
            // allow fsync on directories).
            let _ = d.sync_all();
        }
        Ok(path)
    }

    /// Read a checkpoint file (as written by
    /// [`write_atomic`](Self::write_atomic); pass either the directory or
    /// the file itself).
    pub fn load(path: &Path) -> Result<Checkpoint, EngineError> {
        let file = if path.is_dir() {
            Checkpoint::path_in(path)
        } else {
            path.to_path_buf()
        };
        let data = fs::read(&file)
            .map_err(|e| EngineError::Checkpoint(format!("read {}: {e}", file.display())))?;
        Checkpoint::decode(Bytes::from(data))
    }
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn put_i64(buf: &mut BytesMut, v: i64) {
    // Zigzag: small magnitudes of either sign stay short.
    put_u64(buf, ((v << 1) ^ (v >> 63)) as u64);
}

fn put_f64(buf: &mut BytesMut, v: f64) {
    // Fixed-width bit pattern: exact round trip, including NaN payloads
    // and signed zeros (varints would bloat on typical mantissas anyway).
    buf.put_u64_le(v.to_bits());
}

fn put_bool(buf: &mut BytesMut, v: bool) {
    buf.put_u8(v as u8);
}

fn put_attr(buf: &mut BytesMut, v: &AttrValue) {
    match v {
        AttrValue::Int(i) => {
            buf.put_u8(0);
            put_i64(buf, *i);
        }
        AttrValue::Float(f) => {
            buf.put_u8(1);
            put_f64(buf, *f);
        }
        AttrValue::Str(s) => {
            buf.put_u8(2);
            put_string(buf, s);
        }
        AttrValue::Bool(b) => {
            buf.put_u8(3);
            put_bool(buf, *b);
        }
    }
}

fn put_value(buf: &mut BytesMut, v: &Value) {
    match v {
        Value::Attr(a) => {
            buf.put_u8(0);
            put_attr(buf, a);
        }
        Value::Set(set) => {
            buf.put_u8(1);
            put_u64(buf, set.len() as u64);
            for s in set.iter() {
                put_string(buf, s);
            }
        }
        Value::Missing => buf.put_u8(2),
    }
}

fn put_matcher(buf: &mut BytesMut, snap: &MatcherSnapshot) {
    put_u64(buf, snap.partials.len() as u64);
    for p in &snap.partials {
        put_u64(buf, p.seq);
        put_u64(buf, p.next as u64);
        put_u64(buf, p.events.len() as u64);
        for e in &p.events {
            match e {
                Some(ev) => {
                    buf.put_u8(1);
                    encode_event(buf, ev);
                }
                None => buf.put_u8(0),
            }
        }
        put_u64(buf, p.bindings.len() as u64);
        for b in &p.bindings {
            match b {
                Some(ent) => {
                    buf.put_u8(1);
                    encode_entity(buf, ent);
                }
                None => buf.put_u8(0),
            }
        }
        put_u64(buf, p.last_ts.as_millis());
    }
    put_u64(buf, snap.next_seq);
    put_u64(buf, snap.emitted.len() as u64);
    for row in &snap.emitted {
        put_u64(buf, row.len() as u64);
        for id in row {
            put_u64(buf, *id);
        }
    }
    put_bool(buf, snap.overflowed);
}

fn put_window(buf: &mut BytesMut, snap: &WindowSnapshot) {
    put_u64(buf, snap.watermark.as_millis());
    put_u64(buf, snap.open.len() as u64);
    for w in &snap.open {
        put_u64(buf, *w);
    }
    put_u64(buf, snap.closed);
}

fn put_accum(buf: &mut BytesMut, a: &AccumSnapshot) {
    match a {
        AccumSnapshot::Stats {
            count,
            sum,
            min,
            max,
            mean,
            m2,
        } => {
            buf.put_u8(0);
            put_u64(buf, *count);
            put_f64(buf, *sum);
            put_f64(buf, *min);
            put_f64(buf, *max);
            put_f64(buf, *mean);
            put_f64(buf, *m2);
        }
        AccumSnapshot::Set(items) => {
            buf.put_u8(1);
            put_u64(buf, items.len() as u64);
            for s in items {
                put_string(buf, s);
            }
        }
        AccumSnapshot::Buffer(vals) => {
            buf.put_u8(2);
            put_u64(buf, vals.len() as u64);
            for v in vals {
                put_f64(buf, *v);
            }
        }
    }
}

fn put_key_vals(buf: &mut BytesMut, key_vals: &[AttrValue]) {
    put_u64(buf, key_vals.len() as u64);
    for k in key_vals {
        put_attr(buf, k);
    }
}

fn put_state(buf: &mut BytesMut, snap: &StateSnapshot) {
    put_u64(buf, snap.open.len() as u64);
    for (window, groups) in &snap.open {
        put_u64(buf, *window);
        put_u64(buf, groups.len() as u64);
        for g in groups {
            put_key_vals(buf, &g.key_vals);
            put_u64(buf, g.accums.len() as u64);
            for a in &g.accums {
                put_accum(buf, a);
            }
        }
    }
    put_u64(buf, snap.history.len() as u64);
    for g in &snap.history {
        put_key_vals(buf, &g.key_vals);
        put_u64(buf, g.windows.len() as u64);
        for (window, values) in &g.windows {
            put_u64(buf, *window);
            put_u64(buf, values.len() as u64);
            for v in values {
                put_value(buf, v);
            }
        }
    }
    match snap.first_window {
        Some(w) => {
            buf.put_u8(1);
            put_u64(buf, w);
        }
        None => buf.put_u8(0),
    }
}

fn put_invariant(buf: &mut BytesMut, snap: &InvariantSnapshot) {
    put_u64(buf, snap.groups.len() as u64);
    for g in &snap.groups {
        put_string(buf, &g.label);
        put_u64(buf, g.vars.len() as u64);
        for v in &g.vars {
            put_value(buf, v);
        }
        match g.phase {
            Phase::Training { seen } => {
                buf.put_u8(0);
                put_u64(buf, seen as u64);
            }
            Phase::Detecting => buf.put_u8(1),
        }
    }
}

fn put_query_snapshot(buf: &mut BytesMut, snap: &QuerySnapshot) {
    match &snap.matcher {
        Some(m) => {
            buf.put_u8(1);
            put_matcher(buf, m);
        }
        None => buf.put_u8(0),
    }
    match &snap.window {
        Some(w) => {
            buf.put_u8(1);
            put_window(buf, w);
        }
        None => buf.put_u8(0),
    }
    match &snap.state {
        Some(s) => {
            buf.put_u8(1);
            put_state(buf, s);
        }
        None => buf.put_u8(0),
    }
    match &snap.invariant {
        Some(i) => {
            buf.put_u8(1);
            put_invariant(buf, i);
        }
        None => buf.put_u8(0),
    }
    put_u64(buf, snap.distinct_seen.len() as u64);
    for row in &snap.distinct_seen {
        put_u64(buf, row.len() as u64);
        for s in row {
            put_string(buf, s);
        }
    }
    put_u64(buf, snap.stats.events_seen);
    put_u64(buf, snap.stats.events_matched);
    put_u64(buf, snap.stats.windows_closed);
    put_u64(buf, snap.stats.alerts);
    put_u64(buf, snap.stats.late_events);
    put_bool(buf, snap.overflow_reported);
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

type R<T> = Result<T, DecodeError>;

fn get_u8(buf: &mut Bytes) -> R<u8> {
    if !buf.has_remaining() {
        return Err(DecodeError::Truncated);
    }
    Ok(buf.get_u8())
}

fn get_i64(buf: &mut Bytes) -> R<i64> {
    let z = get_u64(buf)?;
    Ok(((z >> 1) as i64) ^ -((z & 1) as i64))
}

fn get_f64(buf: &mut Bytes) -> R<f64> {
    if buf.remaining() < 8 {
        return Err(DecodeError::Truncated);
    }
    Ok(f64::from_bits(buf.get_u64_le()))
}

fn get_bool(buf: &mut Bytes) -> R<bool> {
    match get_u8(buf)? {
        0 => Ok(false),
        1 => Ok(true),
        t => Err(DecodeError::BadTag("bool", t)),
    }
}

/// Read a sequence count, guarded: a corrupt length must not turn into an
/// OOM `Vec::with_capacity`. Every element is ≥ 1 byte on the wire, so a
/// count beyond the remaining bytes is a truncation.
fn get_len(buf: &mut Bytes) -> R<usize> {
    let n = get_u64(buf)?;
    if n > buf.remaining() as u64 {
        return Err(DecodeError::Truncated);
    }
    Ok(n as usize)
}

fn get_attr(buf: &mut Bytes) -> R<AttrValue> {
    match get_u8(buf)? {
        0 => Ok(AttrValue::Int(get_i64(buf)?)),
        1 => Ok(AttrValue::Float(get_f64(buf)?)),
        2 => Ok(AttrValue::Str(get_string(buf)?)),
        3 => Ok(AttrValue::Bool(get_bool(buf)?)),
        t => Err(DecodeError::BadTag("attr value", t)),
    }
}

fn get_value(buf: &mut Bytes) -> R<Value> {
    match get_u8(buf)? {
        0 => Ok(Value::Attr(get_attr(buf)?)),
        1 => {
            let n = get_len(buf)?;
            let mut set = std::collections::BTreeSet::new();
            for _ in 0..n {
                set.insert(get_string(buf)?.to_string());
            }
            Ok(Value::Set(Arc::new(set)))
        }
        2 => Ok(Value::Missing),
        t => Err(DecodeError::BadTag("value", t)),
    }
}

fn get_matcher(buf: &mut Bytes) -> R<MatcherSnapshot> {
    let n = get_len(buf)?;
    let mut partials = Vec::with_capacity(n);
    for _ in 0..n {
        let seq = get_u64(buf)?;
        let next = get_u64(buf)? as usize;
        let n_events = get_len(buf)?;
        let mut events = Vec::with_capacity(n_events);
        for _ in 0..n_events {
            events.push(match get_u8(buf)? {
                0 => None,
                1 => Some(decode_event(buf)?),
                t => return Err(DecodeError::BadTag("event option", t)),
            });
        }
        let n_bindings = get_len(buf)?;
        let mut bindings = Vec::with_capacity(n_bindings);
        for _ in 0..n_bindings {
            bindings.push(match get_u8(buf)? {
                0 => None,
                1 => Some(decode_entity(buf)?),
                t => return Err(DecodeError::BadTag("entity option", t)),
            });
        }
        let last_ts = Timestamp::from_millis(get_u64(buf)?);
        partials.push(PartialSnapshot {
            seq,
            next,
            events,
            bindings,
            last_ts,
        });
    }
    let next_seq = get_u64(buf)?;
    let n_emitted = get_len(buf)?;
    let mut emitted = Vec::with_capacity(n_emitted);
    for _ in 0..n_emitted {
        let n_ids = get_len(buf)?;
        let mut row = Vec::with_capacity(n_ids);
        for _ in 0..n_ids {
            row.push(get_u64(buf)?);
        }
        emitted.push(row);
    }
    let overflowed = get_bool(buf)?;
    Ok(MatcherSnapshot {
        partials,
        next_seq,
        emitted,
        overflowed,
    })
}

fn get_window(buf: &mut Bytes) -> R<WindowSnapshot> {
    let watermark = Timestamp::from_millis(get_u64(buf)?);
    let n = get_len(buf)?;
    let mut open = Vec::with_capacity(n);
    for _ in 0..n {
        open.push(get_u64(buf)?);
    }
    let closed = get_u64(buf)?;
    Ok(WindowSnapshot {
        watermark,
        open,
        closed,
    })
}

fn get_accum(buf: &mut Bytes) -> R<AccumSnapshot> {
    match get_u8(buf)? {
        0 => Ok(AccumSnapshot::Stats {
            count: get_u64(buf)?,
            sum: get_f64(buf)?,
            min: get_f64(buf)?,
            max: get_f64(buf)?,
            mean: get_f64(buf)?,
            m2: get_f64(buf)?,
        }),
        1 => {
            let n = get_len(buf)?;
            let mut items = Vec::with_capacity(n);
            for _ in 0..n {
                items.push(get_string(buf)?.to_string());
            }
            Ok(AccumSnapshot::Set(items))
        }
        2 => {
            let n = get_len(buf)?;
            let mut vals = Vec::with_capacity(n);
            for _ in 0..n {
                vals.push(get_f64(buf)?);
            }
            Ok(AccumSnapshot::Buffer(vals))
        }
        t => Err(DecodeError::BadTag("accumulator", t)),
    }
}

fn get_key_vals(buf: &mut Bytes) -> R<Vec<AttrValue>> {
    let n = get_len(buf)?;
    let mut key_vals = Vec::with_capacity(n);
    for _ in 0..n {
        key_vals.push(get_attr(buf)?);
    }
    Ok(key_vals)
}

fn get_state(buf: &mut Bytes) -> R<StateSnapshot> {
    let n_open = get_len(buf)?;
    let mut open = Vec::with_capacity(n_open);
    for _ in 0..n_open {
        let window = get_u64(buf)?;
        let n_groups = get_len(buf)?;
        let mut groups = Vec::with_capacity(n_groups);
        for _ in 0..n_groups {
            let key_vals = get_key_vals(buf)?;
            let n_accums = get_len(buf)?;
            let mut accums = Vec::with_capacity(n_accums);
            for _ in 0..n_accums {
                accums.push(get_accum(buf)?);
            }
            groups.push(GroupAccumSnapshot { key_vals, accums });
        }
        open.push((window, groups));
    }
    let n_history = get_len(buf)?;
    let mut history = Vec::with_capacity(n_history);
    for _ in 0..n_history {
        let key_vals = get_key_vals(buf)?;
        let n_windows = get_len(buf)?;
        let mut windows = Vec::with_capacity(n_windows);
        for _ in 0..n_windows {
            let window = get_u64(buf)?;
            let n_values = get_len(buf)?;
            let mut values = Vec::with_capacity(n_values);
            for _ in 0..n_values {
                values.push(get_value(buf)?);
            }
            windows.push((window, values));
        }
        history.push(GroupHistorySnapshot { key_vals, windows });
    }
    let first_window = match get_u8(buf)? {
        0 => None,
        1 => Some(get_u64(buf)?),
        t => return Err(DecodeError::BadTag("window option", t)),
    };
    Ok(StateSnapshot {
        open,
        history,
        first_window,
    })
}

fn get_invariant(buf: &mut Bytes) -> R<InvariantSnapshot> {
    let n = get_len(buf)?;
    let mut groups = Vec::with_capacity(n);
    for _ in 0..n {
        let label = get_string(buf)?.to_string();
        let n_vars = get_len(buf)?;
        let mut vars = Vec::with_capacity(n_vars);
        for _ in 0..n_vars {
            vars.push(get_value(buf)?);
        }
        let phase = match get_u8(buf)? {
            0 => Phase::Training {
                seen: get_u64(buf)? as usize,
            },
            1 => Phase::Detecting,
            t => return Err(DecodeError::BadTag("phase", t)),
        };
        groups.push(InvariantGroupSnapshot { label, vars, phase });
    }
    Ok(InvariantSnapshot { groups })
}

fn get_query_snapshot(buf: &mut Bytes) -> R<QuerySnapshot> {
    let matcher = match get_u8(buf)? {
        0 => None,
        1 => Some(get_matcher(buf)?),
        t => return Err(DecodeError::BadTag("matcher option", t)),
    };
    let window = match get_u8(buf)? {
        0 => None,
        1 => Some(get_window(buf)?),
        t => return Err(DecodeError::BadTag("window option", t)),
    };
    let state = match get_u8(buf)? {
        0 => None,
        1 => Some(get_state(buf)?),
        t => return Err(DecodeError::BadTag("state option", t)),
    };
    let invariant = match get_u8(buf)? {
        0 => None,
        1 => Some(get_invariant(buf)?),
        t => return Err(DecodeError::BadTag("invariant option", t)),
    };
    let n_distinct = get_len(buf)?;
    let mut distinct_seen = Vec::with_capacity(n_distinct);
    for _ in 0..n_distinct {
        let n = get_len(buf)?;
        let mut row = Vec::with_capacity(n);
        for _ in 0..n {
            row.push(get_string(buf)?.to_string());
        }
        distinct_seen.push(row);
    }
    let stats = QueryStats {
        events_seen: get_u64(buf)?,
        events_matched: get_u64(buf)?,
        windows_closed: get_u64(buf)?,
        alerts: get_u64(buf)?,
        late_events: get_u64(buf)?,
    };
    let overflow_reported = get_bool(buf)?;
    Ok(QuerySnapshot {
        matcher,
        window,
        state,
        invariant,
        distinct_seen,
        stats,
        overflow_reported,
    })
}

fn decode_impl(mut buf: Bytes) -> Result<Checkpoint, String> {
    if buf.remaining() < CHECKPOINT_MAGIC.len() {
        return Err("file shorter than the magic".to_string());
    }
    let magic = &buf.chunk()[..CHECKPOINT_MAGIC.len()];
    if magic != CHECKPOINT_MAGIC {
        return Err(format!("bad magic {magic:02x?}"));
    }
    buf.advance(CHECKPOINT_MAGIC.len());
    let version = get_u8(&mut buf).map_err(|e| e.to_string())?;
    // Version 1 is version 2 without the trailing adapter table.
    if version != CHECKPOINT_VERSION && version != 1 {
        return Err(format!(
            "version {version} (this build reads {CHECKPOINT_VERSION})"
        ));
    }
    let body = |buf: &mut Bytes| -> R<Checkpoint> {
        let offset = get_u64(buf)?;
        let frontier = Timestamp::from_millis(get_u64(buf)?);
        let config = QueryConfig {
            partial_match_cap: get_u64(buf)? as usize,
            allowed_lateness: saql_model::Duration::from_millis(get_u64(buf)?),
            exec: match get_u8(buf)? {
                0 => ExecMode::Compiled,
                1 => ExecMode::Interpreted,
                t => return Err(DecodeError::BadTag("exec mode", t)),
            },
        };
        let n_rows = get_len(buf)?;
        let mut rows = Vec::with_capacity(n_rows);
        for _ in 0..n_rows {
            let status = match get_u8(buf)? {
                0 => RowStatus::Active,
                1 => RowStatus::Paused,
                2 => RowStatus::Removed,
                t => return Err(DecodeError::BadTag("row status", t)),
            };
            let name = get_string(buf)?.to_string();
            let source = get_string(buf)?.to_string();
            let snapshot = if status == RowStatus::Removed {
                None
            } else {
                Some(get_query_snapshot(buf)?)
            };
            rows.push(CheckpointRow {
                name,
                source,
                status,
                snapshot,
            });
        }
        let mut adapters = Vec::new();
        if version >= 2 {
            let n = get_len(buf)?;
            for _ in 0..n {
                let upstream = get_string(buf)?.to_string();
                let seq = get_u64(buf)?;
                adapters.push((upstream, seq));
            }
        }
        Ok(Checkpoint {
            offset,
            frontier,
            config,
            rows,
            adapters,
        })
    };
    let ckpt = body(&mut buf).map_err(|e| e.to_string())?;
    if buf.has_remaining() {
        return Err(format!("{} trailing bytes", buf.remaining()));
    }
    Ok(ckpt)
}

// Keep the unused-import lint honest: `codec` itself is referenced for the
// doc link above.
const _: u8 = codec::FORMAT_VERSION;

#[cfg(test)]
mod tests {
    use super::*;
    use saql_model::event::EventBuilder;
    use saql_model::{Entity, ProcessInfo};

    fn sample_snapshot() -> QuerySnapshot {
        let event = EventBuilder::new(7, "h1", 1_234)
            .subject(ProcessInfo::new(10, "cmd.exe", "admin"))
            .starts_process(ProcessInfo::new(11, "osql.exe", "admin"))
            .build();
        QuerySnapshot {
            matcher: Some(MatcherSnapshot {
                partials: vec![PartialSnapshot {
                    seq: 3,
                    next: 1,
                    events: vec![Some(event), None],
                    bindings: vec![
                        Some(Entity::Process(ProcessInfo::new(10, "cmd.exe", "admin"))),
                        None,
                    ],
                    last_ts: Timestamp::from_millis(1_234),
                }],
                next_seq: 4,
                emitted: vec![vec![1, 2], vec![9]],
                overflowed: false,
            }),
            window: Some(WindowSnapshot {
                watermark: Timestamp::from_millis(60_000),
                open: vec![2, 3],
                closed: 2,
            }),
            state: Some(StateSnapshot {
                open: vec![(
                    2,
                    vec![GroupAccumSnapshot {
                        key_vals: vec![
                            AttrValue::Str("cmd.exe".into()),
                            AttrValue::Int(-5),
                            AttrValue::Float(2.5),
                            AttrValue::Bool(true),
                        ],
                        accums: vec![
                            AccumSnapshot::Stats {
                                count: 4,
                                sum: 10.0,
                                min: 1.0,
                                max: 4.0,
                                mean: 2.5,
                                m2: 5.000000000000001,
                            },
                            AccumSnapshot::Set(vec!["a".into(), "b".into()]),
                            AccumSnapshot::Buffer(vec![1.5, -0.0, f64::NAN]),
                        ],
                    }],
                )],
                history: vec![GroupHistorySnapshot {
                    key_vals: vec![AttrValue::Str("x".into())],
                    windows: vec![(
                        1,
                        vec![
                            Value::int(3),
                            Value::Missing,
                            Value::Set(Arc::new(
                                ["p", "q"].iter().map(|s| s.to_string()).collect(),
                            )),
                        ],
                    )],
                }],
                first_window: Some(1),
            }),
            invariant: Some(InvariantSnapshot {
                groups: vec![InvariantGroupSnapshot {
                    label: "host-1".into(),
                    vars: vec![Value::float(0.25)],
                    phase: Phase::Training { seen: 2 },
                }],
            }),
            distinct_seen: vec![vec!["a".into(), "b".into()]],
            stats: QueryStats {
                events_seen: 100,
                events_matched: 40,
                windows_closed: 2,
                alerts: 3,
                late_events: 1,
            },
            overflow_reported: true,
        }
    }

    fn sample_checkpoint() -> Checkpoint {
        Checkpoint {
            offset: 12_345,
            frontier: Timestamp::from_millis(98_765),
            config: QueryConfig::default(),
            adapters: vec![("burst".into(), 7)],
            rows: vec![
                CheckpointRow {
                    name: "live".into(),
                    source: "proc p start proc q as e\nreturn p".into(),
                    status: RowStatus::Active,
                    snapshot: Some(sample_snapshot()),
                },
                CheckpointRow {
                    name: "gone".into(),
                    source: "proc p start proc q as e\nreturn q".into(),
                    status: RowStatus::Removed,
                    snapshot: None,
                },
                CheckpointRow {
                    name: "held".into(),
                    source: "proc p start proc q as e\nreturn p, q".into(),
                    status: RowStatus::Paused,
                    snapshot: Some(QuerySnapshot {
                        matcher: None,
                        window: None,
                        state: None,
                        invariant: None,
                        distinct_seen: vec![],
                        stats: QueryStats::default(),
                        overflow_reported: false,
                    }),
                },
            ],
        }
    }

    fn assert_checkpoints_equal(a: &Checkpoint, b: &Checkpoint) {
        // QuerySnapshot has no PartialEq (floats, NaNs); the Debug render
        // is exhaustive and distinguishes NaN payload loss via bit dumps
        // of the derived formatting.
        assert_eq!(a.offset, b.offset);
        assert_eq!(a.frontier, b.frontier);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn roundtrip_exact() {
        let ckpt = sample_checkpoint();
        let back = Checkpoint::decode(ckpt.encode()).unwrap();
        assert_checkpoints_equal(&ckpt, &back);
    }

    #[test]
    fn write_atomic_then_load() {
        let dir = std::env::temp_dir().join(format!("saql-ckpt-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let ckpt = sample_checkpoint();
        let path = ckpt.write_atomic(&dir).unwrap();
        assert_eq!(path, Checkpoint::path_in(&dir));
        assert!(
            !dir.join(".checkpoint.saqlckp.tmp").exists(),
            "tmp file must be renamed away"
        );
        // Load via the directory and via the file itself.
        assert_checkpoints_equal(&ckpt, &Checkpoint::load(&dir).unwrap());
        assert_checkpoints_equal(&ckpt, &Checkpoint::load(&path).unwrap());
        // Overwrite is atomic too: a second checkpoint replaces the first.
        let mut next = sample_checkpoint();
        next.offset = 99_999;
        next.write_atomic(&dir).unwrap();
        assert_eq!(Checkpoint::load(&dir).unwrap().offset, 99_999);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncation_and_corruption_detected() {
        let data = sample_checkpoint().encode();
        // Every strict prefix fails loudly — no silent partial decode.
        for cut in [0, 4, 8, 9, data.len() / 2, data.len() - 1] {
            assert!(
                Checkpoint::decode(data.slice(..cut)).is_err(),
                "prefix of {cut} bytes must not decode"
            );
        }
        // Bad magic.
        let mut raw = data.to_vec();
        raw[0] = b'X';
        assert!(Checkpoint::decode(Bytes::from(raw)).is_err());
        // Unknown version.
        let mut raw = data.to_vec();
        raw[8] = 99;
        let err = Checkpoint::decode(Bytes::from(raw)).unwrap_err();
        assert!(err.to_string().contains("version 99"), "{err}");
        // Trailing garbage.
        let mut raw = data.to_vec();
        raw.push(0);
        assert!(Checkpoint::decode(Bytes::from(raw)).is_err());
    }

    #[test]
    fn zigzag_and_float_bit_exactness() {
        let mut buf = BytesMut::new();
        for v in [0i64, -1, 1, i64::MIN, i64::MAX, -123_456] {
            buf.clear();
            put_i64(&mut buf, v);
            let mut data = buf.clone().freeze();
            assert_eq!(get_i64(&mut data).unwrap(), v);
        }
        for v in [0.0f64, -0.0, f64::NAN, f64::INFINITY, 1.0e-300, -2.5] {
            buf.clear();
            put_f64(&mut buf, v);
            let mut data = buf.clone().freeze();
            assert_eq!(get_f64(&mut data).unwrap().to_bits(), v.to_bits());
        }
    }
}
