//! Detection alerts: what the engine reports when a query's conditions are
//! met by the event stream.

use std::fmt;

use saql_model::Timestamp;

use crate::query::QueryId;

/// Where in the stream an alert fired.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AlertOrigin {
    /// A rule-based full pattern match; carries the matched event ids in
    /// pattern order.
    Match { event_ids: Vec<u64> },
    /// A stateful model fired when the window `[start, end)` closed for the
    /// given group key.
    Window {
        start: Timestamp,
        end: Timestamp,
        group: String,
    },
}

/// One detection alert.
#[derive(Debug, Clone, PartialEq)]
pub struct Alert {
    /// Name of the query that produced the alert.
    pub query: String,
    /// Control-plane id of the query that produced the alert
    /// ([`QueryId::UNASSIGNED`] when emitted by a standalone
    /// [`crate::RunningQuery`]). This is the routing key for per-query
    /// subscriptions ([`crate::Engine::subscribe`]).
    pub query_id: QueryId,
    /// Event time at which the alert fired (last matched event, or window
    /// end).
    pub ts: Timestamp,
    pub origin: AlertOrigin,
    /// The `return` items: (label, rendered value).
    pub rows: Vec<(String, String)>,
}

impl Alert {
    /// Look up a returned value by its label.
    pub fn get(&self, label: &str) -> Option<&str> {
        self.rows
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, v)| v.as_str())
    }
}

impl fmt::Display for Alert {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[ALERT {} @{}]", self.query, self.ts)?;
        match &self.origin {
            AlertOrigin::Match { event_ids } => {
                write!(f, " events={event_ids:?}")?;
            }
            AlertOrigin::Window { start, end, group } => {
                write!(f, " window=[{start}, {end}) group={group}")?;
            }
        }
        for (label, value) in &self.rows {
            write!(f, " {label}={value}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alert_display_and_lookup() {
        let a = Alert {
            query: "exfil".into(),
            query_id: QueryId::new(3),
            ts: Timestamp::from_secs(9),
            origin: AlertOrigin::Match {
                event_ids: vec![1, 4, 7],
            },
            rows: vec![
                ("p1".into(), "cmd.exe".into()),
                ("i1".into(), "172.16.9.129".into()),
            ],
        };
        let s = a.to_string();
        assert!(s.contains("ALERT exfil"));
        assert!(s.contains("events=[1, 4, 7]"));
        assert!(s.contains("i1=172.16.9.129"));
        assert_eq!(a.get("p1"), Some("cmd.exe"));
        assert_eq!(a.get("zz"), None);
        assert_eq!(a.query_id, QueryId::new(3));
        assert_eq!(a.query_id.to_string(), "q#3");
        assert_eq!(QueryId::UNASSIGNED.to_string(), "q#unassigned");
    }

    #[test]
    fn window_origin_display() {
        let a = Alert {
            query: "sma".into(),
            query_id: QueryId::UNASSIGNED,
            ts: Timestamp::from_secs(600),
            origin: AlertOrigin::Window {
                start: Timestamp::ZERO,
                end: Timestamp::from_secs(600),
                group: "sqlservr.exe".into(),
            },
            rows: vec![],
        };
        assert!(a.to_string().contains("group=sqlservr.exe"));
    }
}
