//! The parallel sharded execution runtime: scheduler groups partitioned
//! across worker threads, events fanned out in batches.
//!
//! ```text
//!                 ┌── bounded batch channel ──► worker 0 (groups 0, N, …)──┐
//!   coordinator ──┼── bounded batch channel ──► worker 1 (groups 1, …)    ─┼─► merged
//!   (batches the  └── bounded batch channel ──► worker N-1 (…)           ──┘   alert
//!    event stream)                                                            channel
//! ```
//!
//! Design points:
//!
//! * **Groups are the sharding unit.** Queries are grouped by compatibility
//!   key first (preserving the master–dependent sharing win), then whole
//!   groups are dealt round-robin across shards. Two compatible queries
//!   never land on different shards.
//! * **Every shard sees every event.** Windows close on stream time, so a
//!   shard cannot skip events that miss its shapes; the coordinator
//!   broadcasts each [`EventBatch`] to all workers. Batches carry
//!   `Arc<Event>`s, so the broadcast clones handles, never payloads.
//! * **Key-partitioned queries** (opt-in via
//!   [`ParallelConfig::key_partitioning`]). A query whose state is keyed
//!   purely by group key ([`RunningQuery::partition_decision`]) is
//!   replicated to *every* shard instead of being pinned to one; replica
//!   `i` owns the rows whose key tuple hashes to `i mod workers` and
//!   skips the rest before field evaluation. Batches still broadcast in
//!   full — every replica's window clock then evolves exactly as the
//!   serial scheduler's, which is what keeps the serial/parallel alert
//!   multiset equivalence intact under lateness — but the per-row field
//!   programs, state observes, and deliveries split ~1/N per shard with
//!   zero duplicates. Control messages fan out to all shards for such
//!   queries, and [`query_snapshots`](ParallelEngine::query_snapshots)
//!   merges the per-replica [`QuerySnapshot`]s back into one canonical
//!   snapshot, so checkpoints are worker-count independent (resume may
//!   re-split at a different width).
//! * **Batched dispatch.** Events buffer into an [`EventBatch`] and ship
//!   when full, amortizing channel synchronization over
//!   [`ParallelConfig::batch_size`] events.
//! * **Non-blocking backpressure.** The coordinator never blocks on a full
//!   batch channel while alerts back up: it drains the merged alert channel
//!   between send retries, so a worker stalled on a full alert channel
//!   cannot deadlock the dispatcher.
//! * **Live query lifecycle.** Queries can be added, removed, paused, and
//!   resumed *mid-stream*: the coordinator flushes its partial batch, then
//!   ships a [`ControlMsg`] to the owning shard on the same bounded channel
//!   as the event batches. Each worker therefore sees a total order of
//!   batches and controls, so every lifecycle operation takes effect at an
//!   exact stream position — identical to performing it on the serial
//!   scheduler at that position (the work-partition audit and the
//!   serial/parallel equivalence property survive).
//! * **Graceful drain.** [`ParallelEngine::finish`] flushes the partial
//!   batch, closes the shard channels, drains alerts until every worker's
//!   sink disconnects, then joins workers and merges their
//!   [`ShardReport`]s into engine-wide [`SchedulerStats`].

use crossbeam::channel::{bounded, Receiver, TryRecvError, TrySendError};
use saql_stream::batch::DEFAULT_BATCH_SIZE;
use saql_stream::{EventBatch, SharedEvent};
use std::collections::HashMap;
use std::thread::JoinHandle;

use crate::alert::Alert;
use crate::error::EngineError;
use crate::query::{QueryConfig, QueryId, QuerySnapshot, QueryStats, RunningQuery};
use crate::scheduler::{SchedulerStats, ShardMerge};
use crate::shard::{run_worker, ControlMsg, Shard, ShardMsg, ShardReport};
use crate::sink::{AlertSink, ChannelSink};

/// Per-query state snapshots plus the alerts that surfaced while the
/// snapshot barrier drained (see [`ParallelEngine::query_snapshots`]).
type SnapshotsAndAlerts = (Vec<(QueryId, QuerySnapshot)>, Vec<Alert>);

/// Tuning knobs for the parallel runtime.
#[derive(Debug, Clone, Copy)]
pub struct ParallelConfig {
    /// Worker threads (also the shard count). Zero clamps to one.
    pub workers: usize,
    /// Events per dispatched batch.
    pub batch_size: usize,
    /// Batches buffered per worker channel before the coordinator backs
    /// off.
    pub batch_backlog: usize,
    /// Alerts buffered in the merged channel before workers block.
    pub alert_backlog: usize,
    /// Track per-event processing latency on every shard (forces the
    /// per-event execution path there; histograms merge at
    /// [`ParallelEngine::finish`]).
    pub record_latency: bool,
    /// Replicate partitionable queries across all shards, each replica
    /// owning the groups whose key tuple hashes to its shard index — one
    /// heavy query's work then splits ~1/N per worker. Off by default:
    /// replicated groups run one master check per shard, so merged
    /// `master_checks` exceed the serial scheduler's (the group-sharded
    /// audit invariant).
    pub key_partitioning: bool,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig {
            workers: 4,
            batch_size: DEFAULT_BATCH_SIZE,
            batch_backlog: 4,
            alert_backlog: 4096,
            record_latency: false,
            key_partitioning: false,
        }
    }
}

impl ParallelConfig {
    /// Defaults with an explicit worker count.
    pub fn with_workers(workers: usize) -> Self {
        ParallelConfig {
            workers,
            ..ParallelConfig::default()
        }
    }

    fn normalized(mut self) -> Self {
        self.workers = self.workers.max(1);
        self.batch_size = self.batch_size.max(1);
        self.batch_backlog = self.batch_backlog.max(1);
        self.alert_backlog = self.alert_backlog.max(1);
        self
    }
}

/// Live worker-thread state while a stream is in flight.
struct Running {
    shard_txs: Vec<crossbeam::channel::Sender<ShardMsg>>,
    alerts_rx: Receiver<Alert>,
    reports_rx: Receiver<ShardReport>,
    handles: Vec<JoinHandle<()>>,
}

/// Coordinator-side record of one live (registered, not yet removed)
/// query: enough to route control messages to its owning shard.
struct QueryInfo {
    name: String,
    key: String,
    /// Key-partitioned queries are replicated to every shard; control
    /// messages fan out instead of routing to one owner.
    partitioned: bool,
}

/// Merged end-of-stream state, available after [`ParallelEngine::finish`].
#[derive(Debug, Default)]
struct Drained {
    stats: SchedulerStats,
    shard_stats: Vec<(usize, SchedulerStats)>,
    query_stats: Vec<(String, QueryStats)>,
    error_count: u64,
    recent_errors: Vec<String>,
    dropped_alerts: u64,
    dropped_by_query: HashMap<QueryId, u64>,
    latency: Option<saql_analytics::Histogram>,
}

/// A sharded, multi-threaded counterpart to the serial [`crate::Engine`]
/// execution path: same queries, same alerts (as a multiset), spread over
/// `workers` threads.
///
/// Lifecycle: [`add`](Self::add)/[`register`](Self::register) queries —
/// before the first event *or mid-stream* — then push events
/// ([`process`](Self::process) or [`run`](Self::run)); worker threads spawn
/// lazily on the first event and shut down in [`finish`](Self::finish).
/// While the stream is live, [`remove`](Self::remove),
/// [`pause`](Self::pause), and [`resume`](Self::resume) reconfigure the
/// deployment without stopping the workers. A finished engine can be
/// inspected ([`stats`](Self::stats), [`query_stats`](Self::query_stats))
/// but not restarted.
pub struct ParallelEngine {
    config: ParallelConfig,
    query_config: QueryConfig,
    /// Queries registered before the workers spawn.
    pending: Vec<RunningQuery>,
    /// Live queries in registration order (pending or shard-hosted).
    queries: Vec<(QueryId, QueryInfo)>,
    /// Next id handed out by [`register`](Self::register) (standalone use;
    /// the [`crate::Engine`] facade assigns ids itself and calls
    /// [`add`](Self::add)).
    next_id: usize,
    /// Compat key → owning shard, for queries currently hosted on workers.
    assignment: HashMap<String, usize>,
    /// Compat key → live member count on the owning shard.
    key_members: HashMap<String, usize>,
    /// Round-robin cursor for assigning fresh compat keys to shards.
    next_group: usize,
    /// Snapshot of the group count at drain time.
    group_count: usize,
    buffer: EventBatch,
    running: Option<Running>,
    drained: Option<Drained>,
}

impl ParallelEngine {
    pub fn new(config: ParallelConfig, query_config: QueryConfig) -> Self {
        let config = config.normalized();
        ParallelEngine {
            config,
            query_config,
            pending: Vec::new(),
            queries: Vec::new(),
            next_id: 0,
            assignment: HashMap::new(),
            key_members: HashMap::new(),
            next_group: 0,
            group_count: 0,
            buffer: EventBatch::with_capacity(config.batch_size),
            running: None,
            drained: None,
        }
    }

    /// Worker threads this runtime shards over.
    pub fn workers(&self) -> usize {
        self.config.workers
    }

    /// Compile and register a query, before the first event or mid-stream.
    /// Returns the id to use for later control-plane calls.
    pub fn register(&mut self, name: &str, source: &str) -> Result<QueryId, saql_lang::LangError> {
        if self.ensure_not_drained().is_err() {
            return Err(saql_lang::LangError::semantic(
                EngineError::EngineFinished.to_string(),
                saql_lang::Span::default(),
            ));
        }
        let mut query = RunningQuery::compile(name, source, self.query_config)?;
        let id = QueryId::new(self.next_id);
        self.next_id += 1;
        query.set_id(id);
        self.add(query)
            .expect("drained state checked above; add cannot fail");
        Ok(id)
    }

    /// Register an already-compiled query (carrying its control-plane id).
    ///
    /// Legal at any stream position: before the workers spawn the query
    /// joins the pending set; afterwards the coordinator flushes its
    /// partial batch and ships an [`ControlMsg::AddQuery`] to the owning
    /// shard — a compat key already hosted somewhere keeps its shard, so
    /// the newcomer joins the existing group and shares its master. The
    /// returned alerts are any that arrived from the workers while
    /// flushing (delivery is asynchronous; see [`process`](Self::process)).
    ///
    /// After [`finish`](Self::finish) this returns
    /// [`EngineError::EngineFinished`]: the workers are gone, so the query
    /// could never observe an event (same lifecycle rule as
    /// [`process`](Self::process)).
    pub fn add(&mut self, query: RunningQuery) -> Result<Vec<Alert>, EngineError> {
        self.ensure_not_drained()?;
        let mut alerts = Vec::new();
        let partitioned = self.partitions(&query);
        self.queries.push((
            query.id(),
            QueryInfo {
                name: query.name().to_string(),
                key: query.compat_key().to_string(),
                partitioned,
            },
        ));
        self.next_id = self.next_id.max(query.id().index().saturating_add(1));
        if self.running.is_some() {
            self.flush_partial(&mut alerts);
            let key = query.compat_key().to_string();
            *self.key_members.entry(key.clone()).or_insert(0) += 1;
            if partitioned {
                // One replica per shard, each restored with a disjoint
                // slice of the query's (possibly restored) group state.
                for (shard, replica) in
                    query.replicas(self.config.workers).into_iter().enumerate()
                {
                    self.send_control(shard, ControlMsg::AddQuery(Box::new(replica)), &mut alerts);
                }
            } else {
                let shard = self.shard_for(&key);
                self.send_control(shard, ControlMsg::AddQuery(Box::new(query)), &mut alerts);
            }
        } else {
            self.pending.push(query);
        }
        Ok(alerts)
    }

    /// Whether this query runs key-partitioned under the current config.
    fn partitions(&self, query: &RunningQuery) -> bool {
        self.config.key_partitioning && query.partition_decision().is_ok()
    }

    /// Deregister a live query at the current stream position. Its pending
    /// window state is flushed (the returned/later-drained alerts include
    /// the flush), its compatibility group dissolves if it was the last
    /// member, and its per-query stats leave the engine with it. Unknown
    /// ids are a no-op.
    pub fn remove(&mut self, id: QueryId) -> Result<Vec<Alert>, EngineError> {
        self.ensure_not_drained()?;
        let mut alerts = Vec::new();
        let Some(pos) = self.queries.iter().position(|(qid, _)| *qid == id) else {
            return Ok(alerts);
        };
        let (_, info) = self.queries.remove(pos);
        if self.running.is_some() {
            self.flush_partial(&mut alerts);
            // A partitioned query has a replica on every shard, not an
            // owning shard in the assignment map.
            let shard = (!info.partitioned).then(|| self.assignment[&info.key]);
            let members = self
                .key_members
                .get_mut(&info.key)
                .expect("hosted key has a member count");
            *members -= 1;
            if *members == 0 {
                self.key_members.remove(&info.key);
                self.assignment.remove(&info.key);
            }
            match shard {
                Some(shard) => self.send_control(shard, ControlMsg::RemoveQuery(id), &mut alerts),
                None => {
                    for shard in 0..self.config.workers {
                        self.send_control(shard, ControlMsg::RemoveQuery(id), &mut alerts);
                    }
                }
            }
        } else {
            self.pending.retain(|q| q.id() != id);
        }
        Ok(alerts)
    }

    /// Flush one query's open windows in place — it stays registered and
    /// keeps running (the pipeline layered drain). Returns
    /// `(flushed, drained)`: the flushed window alerts of *this* query at
    /// the current stream position, plus any unrelated alerts that arrived
    /// while the barrier waited.
    pub fn flush_query(&mut self, id: QueryId) -> Result<(Vec<Alert>, Vec<Alert>), EngineError> {
        self.ensure_not_drained()?;
        let mut alerts = Vec::new();
        let Some((_, info)) = self.queries.iter().find(|(qid, _)| *qid == id) else {
            return Err(EngineError::UnknownQuery(id));
        };
        if self.running.is_none() {
            let flushed = self
                .pending
                .iter_mut()
                .find(|q| q.id() == id)
                .map(|q| q.finish())
                .unwrap_or_default();
            return Ok((flushed, alerts));
        }
        // Partitioned queries host one replica per shard, owning disjoint
        // groups — flush all of them and concatenate the disjoint results.
        let shards: Vec<usize> = if info.partitioned {
            (0..self.config.workers).collect()
        } else {
            vec![self.assignment[&info.key]]
        };
        self.flush_partial(&mut alerts);
        let (reply_tx, reply_rx) = bounded::<Vec<Alert>>(shards.len());
        for &shard in &shards {
            self.send_control(shard, ControlMsg::Flush(id, reply_tx.clone()), &mut alerts);
        }
        drop(reply_tx);
        let running = self
            .running
            .as_ref()
            .expect("running checked above; flush keeps workers alive");
        // Same non-deadlocking barrier as `query_snapshots`: the owning
        // worker may be blocked on a full alert channel ahead of the flush
        // message, so keep draining alerts while waiting for the replies.
        let mut flushed = Vec::new();
        let mut replies = 0usize;
        while replies < shards.len() {
            match reply_rx.recv_timeout(std::time::Duration::from_millis(1)) {
                Ok(batch) => {
                    flushed.extend(batch);
                    replies += 1;
                }
                Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                    drain_ready(&running.alerts_rx, &mut alerts);
                }
                Err(crossbeam::channel::RecvTimeoutError::Disconnected) => break,
            }
        }
        drain_ready(&running.alerts_rx, &mut alerts);
        Ok((flushed, alerts))
    }

    /// Barrier: dispatch the partial batch and wait until every worker has
    /// processed everything queued so far. Returns the alerts that arrived
    /// in the meantime. After `sync` returns, every query's clock reflects
    /// every event fed to the engine — the precondition for watermark
    /// punctuation on a derived (pipeline) stream.
    pub fn sync(&mut self) -> Result<Vec<Alert>, EngineError> {
        self.ensure_not_drained()?;
        let mut alerts = Vec::new();
        if self.running.is_none() {
            return Ok(alerts);
        }
        self.flush_partial(&mut alerts);
        let running = self
            .running
            .as_ref()
            .expect("running checked above; sync keeps workers alive");
        let expected = running.shard_txs.len();
        let (reply_tx, reply_rx) = bounded::<()>(expected);
        for tx in &running.shard_txs {
            send_draining(
                tx,
                ShardMsg::Control(ControlMsg::Sync(reply_tx.clone())),
                &running.alerts_rx,
                &mut alerts,
            );
        }
        drop(reply_tx);
        let mut replies = 0usize;
        // Same non-deadlocking barrier as `query_snapshots`: workers ahead
        // of the sync message may be blocked on a full alert channel.
        while replies < expected {
            match reply_rx.recv_timeout(std::time::Duration::from_millis(1)) {
                Ok(()) => replies += 1,
                Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                    drain_ready(&running.alerts_rx, &mut alerts);
                }
                Err(crossbeam::channel::RecvTimeoutError::Disconnected) => break,
            }
        }
        drain_ready(&running.alerts_rx, &mut alerts);
        Ok(alerts)
    }

    /// Detach a live query from the stream until [`resume`](Self::resume):
    /// it sees no events and no time, and emits nothing. Unknown ids are a
    /// no-op.
    pub fn pause(&mut self, id: QueryId) -> Result<Vec<Alert>, EngineError> {
        self.set_paused(id, true)
    }

    /// Re-attach a paused query at the current stream position.
    pub fn resume(&mut self, id: QueryId) -> Result<Vec<Alert>, EngineError> {
        self.set_paused(id, false)
    }

    fn set_paused(&mut self, id: QueryId, paused: bool) -> Result<Vec<Alert>, EngineError> {
        self.ensure_not_drained()?;
        let mut alerts = Vec::new();
        let Some((_, info)) = self.queries.iter().find(|(qid, _)| *qid == id) else {
            return Ok(alerts);
        };
        if self.running.is_some() {
            let shards: Vec<usize> = if info.partitioned {
                (0..self.config.workers).collect()
            } else {
                vec![self.assignment[&info.key]]
            };
            self.flush_partial(&mut alerts);
            for shard in shards {
                let msg = if paused {
                    ControlMsg::Pause(id)
                } else {
                    ControlMsg::Resume(id)
                };
                self.send_control(shard, msg, &mut alerts);
            }
        } else if let Some(q) = self.pending.iter_mut().find(|q| q.id() == id) {
            q.set_paused(paused);
        }
        Ok(alerts)
    }

    /// Whether a query with this id is live (registered and not removed).
    pub fn contains(&self, id: QueryId) -> bool {
        self.queries.iter().any(|(qid, _)| *qid == id)
    }

    /// Live query names, in registration order.
    pub fn query_names(&self) -> Vec<String> {
        self.queries
            .iter()
            .map(|(_, info)| info.name.clone())
            .collect()
    }

    /// Live query ids, in registration order.
    pub fn query_ids(&self) -> Vec<QueryId> {
        self.queries.iter().map(|(id, _)| *id).collect()
    }

    /// Compatibility groups across all shards.
    pub fn group_count(&self) -> usize {
        if self.drained.is_some() {
            return self.group_count;
        }
        if self.running.is_some() {
            return self.key_members.len();
        }
        let mut keys: Vec<&str> = self.pending.iter().map(|q| q.compat_key()).collect();
        keys.sort_unstable();
        keys.dedup();
        keys.len()
    }

    /// Push one event. Returns alerts that have *arrived* from workers so
    /// far — delivery is asynchronous, so they may stem from earlier events
    /// and alerts for this event may surface later (or in
    /// [`finish`](Self::finish)).
    ///
    /// Returns [`EngineError::EngineFinished`] after
    /// [`finish`](Self::finish): the workers are gone, so unlike the serial
    /// scheduler this engine cannot resume a drained stream (silently
    /// buffering the events would lose them).
    pub fn process(&mut self, event: &SharedEvent) -> Result<Vec<Alert>, EngineError> {
        self.ensure_not_drained()?;
        let mut alerts = Vec::new();
        self.ensure_started();
        self.buffer.push(event.clone());
        if self.buffer.is_full() {
            let batch = self.buffer.take();
            self.dispatch(batch, &mut alerts);
        } else if let Some(running) = &self.running {
            drain_ready(&running.alerts_rx, &mut alerts);
        }
        Ok(alerts)
    }

    /// Drive an entire stream to completion and return all alerts. Unlike
    /// the serial engine, ordering across queries is not stream order —
    /// equality with serial execution holds for the alert *multiset*.
    pub fn run(
        &mut self,
        stream: impl IntoIterator<Item = SharedEvent>,
    ) -> Result<Vec<Alert>, EngineError> {
        self.ensure_not_drained()?;
        let mut alerts = Vec::new();
        self.ensure_started();
        for event in stream {
            self.buffer.push(event);
            if self.buffer.is_full() {
                let batch = self.buffer.take();
                self.dispatch(batch, &mut alerts);
            }
        }
        alerts.extend(self.finish());
        Ok(alerts)
    }

    /// Drive a stream, delivering every alert to `sink` as it arrives from
    /// the workers. Returns the alert count.
    pub fn run_with_sink(
        &mut self,
        stream: impl IntoIterator<Item = SharedEvent>,
        sink: &mut dyn AlertSink,
    ) -> Result<u64, EngineError> {
        self.ensure_not_drained()?;
        let mut n = 0u64;
        let mut pending = Vec::new();
        self.ensure_started();
        for event in stream {
            self.buffer.push(event);
            if self.buffer.is_full() {
                let batch = self.buffer.take();
                self.dispatch(batch, &mut pending);
            }
            for alert in pending.drain(..) {
                n += 1;
                sink.deliver(&alert);
            }
        }
        for alert in self.finish() {
            n += 1;
            sink.deliver(&alert);
        }
        sink.flush();
        Ok(n)
    }

    /// End of stream: flush the partial batch, drain the workers, merge
    /// their reports, and return every remaining alert. Idempotent.
    pub fn finish(&mut self) -> Vec<Alert> {
        self.ensure_started();
        let mut alerts = Vec::new();
        self.flush_partial(&mut alerts);
        self.group_count = self.key_members.len();
        let Some(running) = self.running.take() else {
            return alerts;
        };
        // Closing the shard channels is the drain signal; workers flush
        // their remaining windows and hang up their alert sinks.
        drop(running.shard_txs);
        while let Ok(alert) = running.alerts_rx.recv() {
            alerts.push(alert);
        }
        let mut drained = Drained::default();
        let mut reports: Vec<ShardReport> = Vec::new();
        while let Ok(report) = running.reports_rx.recv() {
            reports.push(report);
        }
        // A panicked worker never sends its report, so its groups' alerts
        // are missing from the run — that must not pass silently.
        let expected_reports = running.handles.len();
        for handle in running.handles {
            if handle.join().is_err() {
                drained.error_count += 1;
                drained
                    .recent_errors
                    .push("shard worker panicked; its alerts are lost".to_string());
            }
        }
        if reports.len() < expected_reports {
            let missing = expected_reports - reports.len();
            drained.error_count += missing as u64;
            drained.recent_errors.push(format!(
                "{missing} shard report(s) missing; merged stats are partial"
            ));
        }
        reports.sort_by_key(|r| r.id);
        // Partitioned queries report once per shard under the same id;
        // their per-query stats fold into one row (replica slices are
        // disjoint, so counters sum; windows close on every replica, so
        // `windows_closed` takes the max).
        let mut stat_row: HashMap<QueryId, usize> = HashMap::new();
        for report in reports {
            // Batches broadcast to every shard (even in partitioned mode),
            // so `events` merges as a maximum.
            drained.stats.absorb_shard(report.stats, ShardMerge::Broadcast);
            drained.shard_stats.push((report.id, report.stats));
            for (qid, name, stats) in report.query_stats {
                match stat_row.get(&qid) {
                    Some(&row) => drained.query_stats[row].1.absorb_replica(&stats),
                    None => {
                        stat_row.insert(qid, drained.query_stats.len());
                        drained.query_stats.push((name, stats));
                    }
                }
            }
            drained.error_count += report.error_count;
            drained.recent_errors.extend(report.recent_errors);
            drained.dropped_alerts += report.dropped_alerts;
            for (id, n) in report.dropped_by_query {
                *drained.dropped_by_query.entry(id).or_insert(0) += n;
            }
            if let Some(shard_hist) = report.latency {
                match drained.latency.as_mut() {
                    Some(merged) => merged.merge(&shard_hist),
                    None => drained.latency = Some(shard_hist),
                }
            }
        }
        self.drained = Some(drained);
        alerts
    }

    /// Merged scheduler counters; complete after [`finish`](Self::finish),
    /// zero before.
    pub fn stats(&self) -> SchedulerStats {
        self.drained.as_ref().map(|d| d.stats).unwrap_or_default()
    }

    /// Per-shard `(shard id, counters)`, after [`finish`](Self::finish) —
    /// the work-partition audit: summed master checks equal the serial
    /// scheduler's, split across shards.
    pub fn shard_stats(&self) -> Vec<(usize, SchedulerStats)> {
        self.drained
            .as_ref()
            .map(|d| d.shard_stats.clone())
            .unwrap_or_default()
    }

    /// Per-query `(name, stats)`, available after [`finish`](Self::finish)
    /// (shards own the queries while the stream is live).
    pub fn query_stats(&self) -> Vec<(String, QueryStats)> {
        self.drained
            .as_ref()
            .map(|d| d.query_stats.clone())
            .unwrap_or_default()
    }

    /// Total runtime errors across queries, after [`finish`](Self::finish).
    pub fn error_count(&self) -> u64 {
        self.drained.as_ref().map(|d| d.error_count).unwrap_or(0)
    }

    /// Recent runtime error messages, after [`finish`](Self::finish).
    pub fn recent_errors(&self) -> Vec<String> {
        self.drained
            .as_ref()
            .map(|d| d.recent_errors.clone())
            .unwrap_or_default()
    }

    /// Alerts lost because a worker's sink disconnected (0 in normal runs).
    pub fn dropped_alerts(&self) -> u64 {
        self.drained.as_ref().map(|d| d.dropped_alerts).unwrap_or(0)
    }

    /// Forwarding drops attributed to the emitting query, after
    /// [`finish`](Self::finish) (empty in normal runs).
    pub fn dropped_alerts_by_query(&self) -> Vec<(QueryId, u64)> {
        let mut out: Vec<(QueryId, u64)> = self
            .drained
            .as_ref()
            .map(|d| d.dropped_by_query.iter().map(|(id, n)| (*id, *n)).collect())
            .unwrap_or_default();
        out.sort_by_key(|(id, _)| id.index());
        out
    }

    /// Per-event latency histogram merged across shards, after
    /// [`finish`](Self::finish), when [`ParallelConfig::record_latency`]
    /// was on and events were seen.
    pub fn latency(&self) -> Option<&saql_analytics::Histogram> {
        self.drained.as_ref().and_then(|d| d.latency.as_ref())
    }

    /// Capture every live query's dynamic state at the current stream
    /// position (engine checkpoints). On a running stream this flushes the
    /// coordinator's partial batch and ships an in-band snapshot request to
    /// every shard, so the captured state is exactly "all dispatched events
    /// processed, nothing after" — identical to snapshotting the serial
    /// scheduler at that position. Alerts that arrive while the barrier
    /// drains are returned alongside (delivery is asynchronous, as with
    /// [`process`](Self::process)).
    pub fn query_snapshots(&mut self) -> Result<SnapshotsAndAlerts, EngineError> {
        self.ensure_not_drained()?;
        let mut alerts = Vec::new();
        if self.running.is_none() {
            // Workers not spawned yet: the pending queries hold all state.
            let snaps = self
                .pending
                .iter()
                .map(|q| (q.id(), q.snapshot()))
                .collect();
            return Ok((snaps, alerts));
        }
        self.flush_partial(&mut alerts);
        let running = self
            .running
            .as_ref()
            .expect("running checked above; flush keeps workers alive");
        let expected = running.shard_txs.len();
        let (reply_tx, reply_rx) = bounded::<Vec<(QueryId, QuerySnapshot)>>(expected);
        for tx in &running.shard_txs {
            send_draining(
                tx,
                ShardMsg::Control(ControlMsg::Snapshot(reply_tx.clone())),
                &running.alerts_rx,
                &mut alerts,
            );
        }
        drop(reply_tx);
        let mut snaps = Vec::new();
        let mut replies = 0usize;
        // Workers ahead of the snapshot message may be blocked on a full
        // alert channel; keep draining it while waiting so the barrier
        // cannot deadlock. A disconnected reply channel means every live
        // worker answered (a panicked worker's queries are lost — finish()
        // reports the dead shard).
        while replies < expected {
            match reply_rx.recv_timeout(std::time::Duration::from_millis(1)) {
                Ok(batch) => {
                    snaps.extend(batch);
                    replies += 1;
                }
                Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                    drain_ready(&running.alerts_rx, &mut alerts);
                }
                Err(crossbeam::channel::RecvTimeoutError::Disconnected) => break,
            }
        }
        drain_ready(&running.alerts_rx, &mut alerts);
        snaps.sort_by_key(|(id, _)| id.index());
        // A partitioned query answered once per shard under the same id;
        // merge the replica snapshots back into one canonical snapshot, so
        // checkpoints are independent of the worker count that took them.
        let mut merged: Vec<(QueryId, QuerySnapshot)> = Vec::with_capacity(snaps.len());
        let mut parts: Vec<QuerySnapshot> = Vec::new();
        for (id, snap) in snaps {
            match merged.last() {
                Some((last, _)) if *last == id => parts.push(snap),
                _ => {
                    if let Some((id, base)) = merged.pop() {
                        merged.push((id, Self::fold_snapshot(base, std::mem::take(&mut parts))));
                    }
                    merged.push((id, snap));
                }
            }
        }
        if let Some((id, base)) = merged.pop() {
            merged.push((id, Self::fold_snapshot(base, parts)));
        }
        Ok((merged, alerts))
    }

    /// Merge trailing replica parts into a base snapshot (no-op for the
    /// common unpartitioned single-part case).
    fn fold_snapshot(base: QuerySnapshot, rest: Vec<QuerySnapshot>) -> QuerySnapshot {
        if rest.is_empty() {
            return base;
        }
        let mut parts = Vec::with_capacity(rest.len() + 1);
        parts.push(base);
        parts.extend(rest);
        QuerySnapshot::merge(parts).expect("nonempty replica set merges")
    }

    /// Partition pending groups over shards and spawn the workers.
    fn ensure_started(&mut self) {
        if self.running.is_some() || self.drained.is_some() {
            return;
        }
        let mut shards: Vec<Shard> = (0..self.config.workers).map(Shard::new).collect();
        if self.config.record_latency {
            for shard in &mut shards {
                shard.enable_latency_tracking();
            }
        }
        for query in std::mem::take(&mut self.pending) {
            let key = query.compat_key().to_string();
            *self.key_members.entry(key.clone()).or_insert(0) += 1;
            if self.partitions(&query) {
                // Replica i owns the groups hashing to shard i; restored
                // state (resume at a new worker count) re-splits here.
                for (i, replica) in query.replicas(self.config.workers).into_iter().enumerate() {
                    shards[i].assign(replica);
                }
            } else {
                let shard_idx = self.shard_for(&key);
                shards[shard_idx].assign(query);
            }
        }

        let (alert_sink, alerts_rx) = ChannelSink::new(self.config.alert_backlog);
        let (reports_tx, reports_rx) = bounded::<ShardReport>(self.config.workers);
        let mut shard_txs = Vec::with_capacity(self.config.workers);
        let mut handles = Vec::with_capacity(self.config.workers);
        for shard in shards {
            let (shard_tx, shard_rx) = bounded::<ShardMsg>(self.config.batch_backlog);
            let sink = alert_sink.clone();
            let reports = reports_tx.clone();
            handles.push(std::thread::spawn(move || {
                run_worker(shard, shard_rx, sink, reports)
            }));
            shard_txs.push(shard_tx);
        }
        // Drop the coordinator's copies so the channels disconnect once the
        // last worker hangs up.
        drop(alert_sink);
        drop(reports_tx);
        self.running = Some(Running {
            shard_txs,
            alerts_rx,
            reports_rx,
            handles,
        });
    }

    /// The shard hosting `key`, assigning fresh keys round-robin.
    fn shard_for(&mut self, key: &str) -> usize {
        if let Some(&shard) = self.assignment.get(key) {
            return shard;
        }
        let shard = self.next_group % self.config.workers;
        self.next_group += 1;
        self.assignment.insert(key.to_string(), shard);
        shard
    }

    /// Data-plane and lifecycle calls are rejected once the workers have
    /// shut down — accepting events or queries then would silently lose
    /// them (the known PR 3 wart was a panic here).
    fn ensure_not_drained(&self) -> Result<(), EngineError> {
        if self.drained.is_some() {
            Err(EngineError::EngineFinished)
        } else {
            Ok(())
        }
    }

    /// Dispatch the buffered partial batch, if any — the barrier that puts
    /// a control message at an exact stream position.
    fn flush_partial(&mut self, alerts: &mut Vec<Alert>) {
        if let Some(batch) = self.buffer.take_if_nonempty() {
            self.dispatch(batch, alerts);
        }
    }

    /// Broadcast one batch to every worker, draining arrived alerts while
    /// any shard channel is full (backpressure without deadlock). The last
    /// worker takes the batch by value — N-1 clones for N workers.
    fn dispatch(&mut self, batch: EventBatch, alerts: &mut Vec<Alert>) {
        let running = self
            .running
            .as_ref()
            .expect("dispatch only happens while running");
        let last = running.shard_txs.len() - 1;
        let mut batch = Some(batch);
        for (i, tx) in running.shard_txs.iter().enumerate() {
            let item = if i == last {
                batch
                    .take()
                    .expect("batch consumed only by the last worker")
            } else {
                batch
                    .as_ref()
                    .expect("batch lives until the last worker")
                    .clone()
            };
            send_draining(tx, ShardMsg::Events(item), &running.alerts_rx, alerts);
        }
        drain_ready(&running.alerts_rx, alerts);
    }

    /// Ship one control message to a single shard, with the same
    /// drain-while-full backpressure discipline as batch dispatch.
    fn send_control(&mut self, shard: usize, msg: ControlMsg, alerts: &mut Vec<Alert>) {
        let running = self
            .running
            .as_ref()
            .expect("control messages only flow while running");
        send_draining(
            &running.shard_txs[shard],
            ShardMsg::Control(msg),
            &running.alerts_rx,
            alerts,
        );
        drain_ready(&running.alerts_rx, alerts);
    }
}

/// Push one message into a shard channel, draining forwarded alerts while
/// the channel is full so a stalled worker cannot deadlock the coordinator.
fn send_draining(
    tx: &crossbeam::channel::Sender<ShardMsg>,
    msg: ShardMsg,
    alerts_rx: &Receiver<Alert>,
    alerts: &mut Vec<Alert>,
) {
    let mut item = msg;
    loop {
        match tx.try_send(item) {
            Ok(()) => return,
            Err(TrySendError::Full(back)) => {
                item = back;
                // Workers are behind: sleep on the alert channel instead of
                // spinning, so a saturated machine gives this core to the
                // workers. Forwarded alerts keep draining either way,
                // preserving deadlock freedom.
                if let Ok(alert) = alerts_rx.recv_timeout(std::time::Duration::from_millis(1)) {
                    alerts.push(alert);
                }
                drain_ready(alerts_rx, alerts);
            }
            // A worker can only disappear if it panicked; drop its share
            // rather than wedge the stream (finish() reports the dead
            // shard).
            Err(TrySendError::Disconnected(_)) => return,
        }
    }
}

impl Drop for ParallelEngine {
    fn drop(&mut self) {
        // Never leak worker threads: close channels and join.
        if self.running.is_some() {
            let _ = self.finish();
        }
    }
}

/// Move every already-arrived alert out of the channel without blocking.
fn drain_ready(rx: &Receiver<Alert>, out: &mut Vec<Alert>) {
    loop {
        match rx.try_recv() {
            Ok(alert) => out.push(alert),
            Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::Scheduler;
    use saql_model::event::EventBuilder;
    use saql_model::{NetworkInfo, ProcessInfo};
    use std::sync::Arc;

    fn rq(name: &str, src: &str) -> RunningQuery {
        RunningQuery::compile(name, src, QueryConfig::default()).unwrap()
    }

    fn start(id: u64, ts: u64, parent: &str, child: &str) -> SharedEvent {
        Arc::new(
            EventBuilder::new(id, "h", ts)
                .subject(ProcessInfo::new(1, parent, "u"))
                .starts_process(ProcessInfo::new(2, child, "u"))
                .build(),
        )
    }

    fn send(id: u64, ts: u64, exe: &str, dst: &str, amount: u64) -> SharedEvent {
        Arc::new(
            EventBuilder::new(id, "h", ts)
                .subject(ProcessInfo::new(1, exe, "u"))
                .sends(NetworkInfo::new("10.0.0.2", 44000, dst, 443, "tcp"))
                .amount(amount)
                .build(),
        )
    }

    fn sources() -> Vec<(&'static str, &'static str)> {
        vec![
            ("rule-a", "proc p1[\"%cmd.exe\"] start proc p2 as e\nreturn distinct p1, p2"),
            ("rule-b", "proc x start proc y[\"%osql.exe\"] as e\nreturn distinct x, y"),
            ("window", "proc p write ip i as evt #time(1 min)\nstate ss { amt := sum(evt.amount) } group by p\nalert ss[0].amt > 100\nreturn p, ss[0].amt"),
            ("count", "proc p write ip i as evt #time(2 min)\nstate ss { n := count() } group by p\nreturn p, ss[0].n"),
        ]
    }

    fn events() -> Vec<SharedEvent> {
        let mut out = Vec::new();
        for i in 0..200u64 {
            out.push(start(i * 3 + 1, i * 5_000, "cmd.exe", "osql.exe"));
            out.push(send(
                i * 3 + 2,
                i * 5_000 + 1_000,
                "sqlservr.exe",
                "10.0.0.9",
                90 + i,
            ));
            out.push(start(
                i * 3 + 3,
                i * 5_000 + 2_000,
                "explorer.exe",
                "calc.exe",
            ));
        }
        out
    }

    fn sorted(mut alerts: Vec<Alert>) -> Vec<String> {
        let mut keys: Vec<String> = alerts
            .drain(..)
            .map(|a| format!("{}|{a}", a.query))
            .collect();
        keys.sort();
        keys
    }

    /// Process on a live runtime (tests only hit the error path on purpose).
    fn par_process(par: &mut ParallelEngine, event: &SharedEvent) -> Vec<Alert> {
        par.process(event).expect("runtime not finished")
    }

    #[test]
    fn matches_serial_scheduler_across_worker_counts() {
        let mut serial = Scheduler::new();
        for (name, src) in sources() {
            serial.add(rq(name, src));
        }
        let mut serial_alerts = Vec::new();
        for e in events() {
            serial_alerts.extend(serial.process(&e));
        }
        serial_alerts.extend(serial.finish());

        for workers in [1usize, 2, 3, 8] {
            let mut par = ParallelEngine::new(
                ParallelConfig {
                    workers,
                    batch_size: 16,
                    ..ParallelConfig::default()
                },
                QueryConfig::default(),
            );
            for (name, src) in sources() {
                par.register(name, src).unwrap();
            }
            let par_alerts = par.run(events()).unwrap();
            assert_eq!(
                sorted(par_alerts),
                sorted(serial_alerts.clone()),
                "alert multiset diverged at {workers} workers"
            );
            assert_eq!(par.dropped_alerts(), 0);
        }
    }

    #[test]
    fn merged_stats_match_serial_counters() {
        let mut serial = Scheduler::new();
        for (name, src) in sources() {
            serial.add(rq(name, src));
        }
        for e in events() {
            serial.process(&e);
        }
        serial.finish();
        let expect = serial.stats();

        let mut par = ParallelEngine::new(ParallelConfig::with_workers(3), QueryConfig::default());
        for (name, src) in sources() {
            par.register(name, src).unwrap();
        }
        par.run(events()).unwrap();
        let got = par.stats();
        assert_eq!(got.events, expect.events);
        assert_eq!(got.master_checks, expect.master_checks);
        assert_eq!(got.deliveries, expect.deliveries);
        assert_eq!(got.data_copies, 0);
    }

    #[test]
    fn compatible_queries_stay_on_one_shard() {
        let mut par = ParallelEngine::new(ParallelConfig::with_workers(4), QueryConfig::default());
        for i in 0..8 {
            par.register(
                &format!("q{i}"),
                "proc p start proc q as e\nreturn distinct p, q",
            )
            .unwrap();
        }
        assert_eq!(par.group_count(), 1);
        par.run(vec![start(1, 10, "cmd.exe", "osql.exe")]).unwrap();
        // One group ⇒ exactly one master check per event, same as serial.
        assert_eq!(par.stats().master_checks, 1);
        assert_eq!(par.stats().deliveries, 8);
    }

    #[test]
    fn finish_without_events_flushes_cleanly() {
        let mut par = ParallelEngine::new(ParallelConfig::with_workers(2), QueryConfig::default());
        par.register("q", "proc p start proc q as e\nreturn p")
            .unwrap();
        assert!(par.finish().is_empty());
        assert_eq!(par.stats().events, 0);
        // Idempotent.
        assert!(par.finish().is_empty());
    }

    #[test]
    fn process_and_lifecycle_after_finish_return_finished_error() {
        let mut par = ParallelEngine::new(ParallelConfig::with_workers(2), QueryConfig::default());
        let id = par
            .register("q", "proc p start proc q as e\nreturn p")
            .unwrap();
        par.run(vec![start(1, 10, "a.exe", "b.exe")]).unwrap();
        // The PR 3 wart was a panic here; every data-plane and lifecycle
        // entry point now reports the finished engine instead.
        assert!(matches!(
            par.process(&start(2, 20, "a.exe", "b.exe")),
            Err(EngineError::EngineFinished)
        ));
        assert!(matches!(
            par.add(rq("late", "proc p start proc q as e\nreturn p")),
            Err(EngineError::EngineFinished)
        ));
        assert!(matches!(par.remove(id), Err(EngineError::EngineFinished)));
        assert!(matches!(par.pause(id), Err(EngineError::EngineFinished)));
        assert!(matches!(par.resume(id), Err(EngineError::EngineFinished)));
        assert!(matches!(
            par.run(vec![start(3, 30, "a.exe", "b.exe")]),
            Err(EngineError::EngineFinished)
        ));
        let err = par.register("late", "proc p start proc q as e\nreturn p");
        assert!(err.is_err());
        // The engine stays inspectable after the rejected calls.
        assert_eq!(par.stats().events, 1);
    }

    #[test]
    fn incremental_process_delivers_everything_by_finish() {
        let mut par = ParallelEngine::new(
            ParallelConfig {
                workers: 2,
                batch_size: 8,
                ..ParallelConfig::default()
            },
            QueryConfig::default(),
        );
        par.register(
            "q",
            "proc p1[\"%cmd.exe\"] start proc p2 as e\nreturn p1, p2",
        )
        .unwrap();
        let mut alerts = Vec::new();
        for e in events() {
            alerts.extend(par.process(&e).unwrap());
        }
        alerts.extend(par.finish());
        assert_eq!(alerts.len(), 200, "one alert per cmd.exe start");
    }

    #[test]
    fn run_with_sink_counts_all_alerts() {
        let mut par = ParallelEngine::new(ParallelConfig::with_workers(2), QueryConfig::default());
        par.register(
            "q",
            "proc p1[\"%cmd.exe\"] start proc p2 as e\nreturn p1, p2",
        )
        .unwrap();
        let mut sink = crate::sink::CollectSink::default();
        let n = par.run_with_sink(events(), &mut sink).unwrap();
        assert_eq!(n, 200);
        assert_eq!(sink.alerts.len(), 200);
    }

    #[test]
    fn mid_stream_register_joins_existing_group() {
        let mut par = ParallelEngine::new(
            ParallelConfig {
                workers: 2,
                batch_size: 4,
                ..ParallelConfig::default()
            },
            QueryConfig::default(),
        );
        par.register(
            "a",
            "proc p1[\"%cmd.exe\"] start proc p2 as e\nreturn p1, p2",
        )
        .unwrap();
        let mut alerts = Vec::new();
        // Start the stream, then attach a compatible query mid-flight.
        for i in 0..10u64 {
            alerts.extend(par_process(
                &mut par,
                &start(i + 1, (i + 1) * 1_000, "cmd.exe", "osql.exe"),
            ));
        }
        let id_b = par
            .register(
                "b",
                "proc p1 start proc p2[\"%osql.exe\"] as e\nreturn p1, p2",
            )
            .unwrap();
        assert!(par.contains(id_b));
        assert_eq!(par.group_count(), 1, "same compat key joins the group");
        for i in 10..20u64 {
            alerts.extend(par_process(
                &mut par,
                &start(i + 1, (i + 1) * 1_000, "cmd.exe", "osql.exe"),
            ));
        }
        alerts.extend(par.finish());
        let a_count = alerts.iter().filter(|a| a.query == "a").count();
        let b_count = alerts.iter().filter(|a| a.query == "b").count();
        assert_eq!(a_count, 20, "a saw the whole stream");
        assert_eq!(b_count, 10, "b saw exactly the post-registration suffix");
        // One group ⇒ one master check per event, even with the newcomer.
        assert_eq!(par.stats().master_checks, 20);
        assert_eq!(par.query_stats().len(), 2);
    }

    #[test]
    fn mid_stream_remove_flushes_windows_and_dissolves_group() {
        let mut par = ParallelEngine::new(
            ParallelConfig {
                workers: 3,
                batch_size: 4,
                ..ParallelConfig::default()
            },
            QueryConfig::default(),
        );
        let id_w = par
            .register(
                "w",
                "proc p write ip i as evt #time(1 min)\nstate ss { n := count() } group by p\nreturn p, ss[0].n",
            )
            .unwrap();
        par.register("r", "proc p start proc q as e\nreturn distinct p, q")
            .unwrap();
        let mut alerts = Vec::new();
        alerts.extend(par.process(&send(1, 1_000, "x.exe", "1.1.1.1", 5)).unwrap());
        alerts.extend(par_process(&mut par, &start(2, 2_000, "a.exe", "b.exe")));
        assert_eq!(par.group_count(), 2);
        // Deregister the window query mid-stream: its open window flushes.
        alerts.extend(par.remove(id_w).unwrap());
        assert!(!par.contains(id_w));
        assert_eq!(par.group_count(), 1, "write-group dissolved");
        alerts.extend(par.process(&send(3, 3_000, "x.exe", "1.1.1.1", 5)).unwrap());
        alerts.extend(par.finish());
        let w_alerts: Vec<_> = alerts.iter().filter(|a| a.query == "w").collect();
        assert_eq!(w_alerts.len(), 1, "{alerts:?}");
        assert_eq!(
            w_alerts[0].get("ss[0].n"),
            Some("1"),
            "post-removal event unseen"
        );
        assert_eq!(w_alerts[0].query_id, id_w);
        // Removed queries leave the stats with them.
        assert_eq!(par.query_stats().len(), 1);
    }

    #[test]
    fn mid_stream_pause_resume_skips_exactly_the_paused_span() {
        let mut par = ParallelEngine::new(
            ParallelConfig {
                workers: 2,
                batch_size: 2,
                ..ParallelConfig::default()
            },
            QueryConfig::default(),
        );
        let id = par
            .register(
                "q",
                "proc p1[\"%cmd.exe\"] start proc p2 as e\nreturn p1, p2",
            )
            .unwrap();
        let mut alerts = Vec::new();
        alerts.extend(par_process(
            &mut par,
            &start(1, 1_000, "cmd.exe", "osql.exe"),
        ));
        alerts.extend(par.pause(id).unwrap());
        for i in 2..=5u64 {
            alerts.extend(par_process(
                &mut par,
                &start(i, i * 1_000, "cmd.exe", "osql.exe"),
            ));
        }
        alerts.extend(par.resume(id).unwrap());
        alerts.extend(par_process(
            &mut par,
            &start(6, 6_000, "cmd.exe", "osql.exe"),
        ));
        alerts.extend(par.finish());
        assert_eq!(
            alerts.len(),
            2,
            "events 2..=5 fell in the pause: {alerts:?}"
        );
        assert!(alerts.iter().all(|a| a.query_id == id));
    }

    /// A heavy stateful-aggregation stream over `keys` distinct group keys
    /// — the key-partitioning target workload.
    fn keyed_events(n: u64, keys: u64) -> Vec<SharedEvent> {
        (0..n)
            .map(|i| {
                send(
                    i + 1,
                    i * 700,
                    &format!("p{}.exe", i % keys),
                    "10.0.0.9",
                    40 + (i % 90),
                )
            })
            .collect()
    }

    const HOT: &str = "proc p write ip i as evt #time(1 min)\nstate ss { amt := sum(evt.amount); n := count() } group by p\nalert ss[0].amt > 120\nreturn p, ss[0].amt, ss[0].n";

    #[test]
    fn partitioned_matches_serial_multiset_across_worker_counts() {
        let mut serial = Scheduler::new();
        serial.add(rq("hot", HOT));
        let mut serial_alerts = Vec::new();
        for e in keyed_events(400, 37) {
            serial_alerts.extend(serial.process(&e));
        }
        serial_alerts.extend(serial.finish());
        let expect = serial.stats();
        let expect_q = serial.queries().next().unwrap().stats();
        assert!(!serial_alerts.is_empty(), "workload must alert");

        for workers in [1usize, 2, 3, 8] {
            let mut par = ParallelEngine::new(
                ParallelConfig {
                    workers,
                    batch_size: 16,
                    key_partitioning: true,
                    ..ParallelConfig::default()
                },
                QueryConfig::default(),
            );
            par.register("hot", HOT).unwrap();
            let par_alerts = par.run(keyed_events(400, 37)).unwrap();
            assert_eq!(
                sorted(par_alerts),
                sorted(serial_alerts.clone()),
                "alert multiset diverged at {workers} workers"
            );
            let got = par.stats();
            // Each row is owned by exactly one replica, so deliveries stay
            // disjoint and sum to the serial count — the work-partition
            // audit's "0 duplicated deliveries".
            assert_eq!(got.deliveries, expect.deliveries);
            assert_eq!(got.events, expect.events);
            // The replication cost: one master check per shard per row.
            assert_eq!(got.master_checks, expect.master_checks * workers as u64);
            assert_eq!(got.data_copies, 0);
            if workers > 1 {
                let busy = par
                    .shard_stats()
                    .iter()
                    .filter(|(_, s)| s.deliveries > 0)
                    .count();
                assert!(busy > 1, "work did not spread across shards");
            }
            // Replica stats folded back into one row matching serial.
            let qs = par.query_stats();
            assert_eq!(qs.len(), 1);
            assert_eq!(qs[0].1.events_seen, expect_q.events_seen);
            assert_eq!(qs[0].1.events_matched, expect_q.events_matched);
            assert_eq!(qs[0].1.alerts, expect_q.alerts);
            assert_eq!(qs[0].1.windows_closed, expect_q.windows_closed);
        }
    }

    #[test]
    fn partitioned_checkpoint_resumes_at_different_worker_count() {
        let evs = keyed_events(400, 37);
        let mut serial = Scheduler::new();
        serial.add(rq("hot", HOT));
        let mut expected = Vec::new();
        for e in &evs {
            expected.extend(serial.process(e));
        }
        expected.extend(serial.finish());

        // First half at 3 workers, snapshot mid-stream, resume at 5.
        let mut par = ParallelEngine::new(
            ParallelConfig {
                workers: 3,
                batch_size: 8,
                key_partitioning: true,
                ..ParallelConfig::default()
            },
            QueryConfig::default(),
        );
        let id = par.register("hot", HOT).unwrap();
        let mut got = Vec::new();
        for e in &evs[..200] {
            got.extend(par_process(&mut par, e));
        }
        let (snaps, alerts) = par.query_snapshots().unwrap();
        got.extend(alerts);
        assert_eq!(snaps.len(), 1, "replica snapshots merge to one per query");
        let (snap_id, snap) = snaps.into_iter().next().unwrap();
        assert_eq!(snap_id, id);
        // Dropping the old engine discards its unflushed windows — the
        // resumed engine owns that state now.
        drop(par);

        let mut par = ParallelEngine::new(
            ParallelConfig {
                workers: 5,
                batch_size: 8,
                key_partitioning: true,
                ..ParallelConfig::default()
            },
            QueryConfig::default(),
        );
        let mut q = rq("hot", HOT);
        q.set_id(id);
        q.restore(snap);
        par.add(q).unwrap();
        for e in &evs[200..] {
            got.extend(par_process(&mut par, e));
        }
        got.extend(par.finish());
        assert_eq!(
            sorted(got),
            sorted(expected),
            "checkpoint at 3 workers + resume at 5 diverged from serial"
        );
    }

    #[test]
    fn partitioned_lifecycle_controls_fan_out() {
        let mut par = ParallelEngine::new(
            ParallelConfig {
                workers: 4,
                batch_size: 4,
                key_partitioning: true,
                ..ParallelConfig::default()
            },
            QueryConfig::default(),
        );
        let id = par.register("hot", HOT).unwrap();
        let evs = keyed_events(100, 11);
        let mut got = Vec::new();
        for e in &evs[..50] {
            got.extend(par_process(&mut par, e));
        }
        // In-place flush touches every replica; each owns disjoint groups,
        // so no group key appears twice in the flushed rows.
        let (flushed, rest) = par.flush_query(id).unwrap();
        got.extend(rest);
        assert!(!flushed.is_empty(), "open window per key expected");
        let mut rows: Vec<String> = flushed.iter().map(|a| a.to_string()).collect();
        let total = rows.len();
        rows.sort();
        rows.dedup();
        assert_eq!(rows.len(), total, "a replica duplicated a group flush");
        // Pause/resume/remove route to all shards without wedging.
        got.extend(par.pause(id).unwrap());
        for e in &evs[50..60] {
            got.extend(par_process(&mut par, e));
        }
        got.extend(par.resume(id).unwrap());
        got.extend(par.remove(id).unwrap());
        assert!(!par.contains(id));
        par.finish();
        assert_eq!(par.dropped_alerts(), 0);
        assert_eq!(par.error_count(), 0);
    }

    #[test]
    fn query_stats_surface_after_finish() {
        let mut par = ParallelEngine::new(ParallelConfig::with_workers(3), QueryConfig::default());
        for (name, src) in sources() {
            par.register(name, src).unwrap();
        }
        assert!(par.query_stats().is_empty(), "stats only after finish");
        par.run(events()).unwrap();
        let stats = par.query_stats();
        assert_eq!(stats.len(), sources().len());
        assert!(stats
            .iter()
            .any(|(name, s)| name == "rule-a" && s.alerts > 0));
        assert_eq!(par.error_count(), 0);
    }
}
