//! The concurrent query scheduler: the master–dependent-query scheme.
//!
//! Concurrent queries are divided into groups by *semantic compatibility*
//! (equal [`compat_key`](saql_lang::semantic::CheckedQuery::compat_key):
//! same event-pattern shapes and window). Each group shares a single copy of
//! the stream: only the group's **master check** touches the raw event (one
//! constraint-free shape test per group), and the **dependent** member
//! queries consume only events their master admits — they never re-scan the
//! stream. This is how SAQL keeps per-event work and data copies sublinear
//! in the number of concurrent queries.
//!
//! For the benchmark comparison, [`NaiveScheduler`] models how a generic
//! stream engine hosts the same queries: every query scans every event and
//! receives its **own deep copy** of the payload (the "multiple copies of
//! the data" the paper calls out).

use std::collections::HashMap;

use saql_model::Timestamp;
use saql_stream::{BatchView, EventBatch, SharedEvent};

use crate::alert::Alert;
use crate::query::{BatchCache, QueryId, QuerySnapshot, RunningQuery};

/// Scheduler execution counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct SchedulerStats {
    /// Events pushed through the scheduler.
    pub events: u64,
    /// Master shape checks performed (one per group per event).
    pub master_checks: u64,
    /// Events delivered to member queries (post master admit).
    pub deliveries: u64,
    /// Logical copies of event data made (always 0: members share the Arc).
    pub data_copies: u64,
}

/// How a shard's counters relate to the whole stream's, for
/// [`SchedulerStats::absorb_shard`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardMerge {
    /// Every shard observed the full event stream (the parallel runtime's
    /// dispatch, including key-partitioned mode — full batches broadcast so
    /// every replica's watermark evolves exactly as serial): `events`
    /// merges as a maximum.
    Broadcast,
    /// Each shard observed a disjoint slice of the stream (schedulers fed
    /// pre-routed sub-batches, e.g. via
    /// [`EventBatch::split_by_owner`](saql_stream::EventBatch::split_by_owner)):
    /// `events` sums, like the work counters.
    Disjoint,
}

impl SchedulerStats {
    /// Fold one shard's counters into an engine-wide view. The per-group
    /// work counters — checks, deliveries, copies — always add up across
    /// shards (group subsets and partitioned row slices are disjoint), but
    /// `events` depends on what each shard *saw*: the max under
    /// [`ShardMerge::Broadcast`], the sum under [`ShardMerge::Disjoint`].
    /// Taking the max over disjoint sub-streams would undercount the
    /// stream, which is exactly what a mode-unaware merge used to do.
    pub fn absorb_shard(&mut self, shard: SchedulerStats, mode: ShardMerge) {
        self.events = match mode {
            ShardMerge::Broadcast => self.events.max(shard.events),
            ShardMerge::Disjoint => self.events + shard.events,
        };
        self.master_checks += shard.master_checks;
        self.deliveries += shard.deliveries;
        self.data_copies += shard.data_copies;
    }
}

struct Group {
    key: String,
    members: Vec<RunningQuery>,
    /// Shared sub-plan cache for batched execution: predicate columns
    /// computed once per batch and reused by every member whose predicate
    /// set fingerprints equal (see [`BatchCache`]).
    cache: BatchCache,
}

/// Master–dependent concurrent query scheduler.
pub struct Scheduler {
    groups: Vec<Group>,
    by_key: HashMap<String, usize>,
    stats: SchedulerStats,
    /// Per-event end-to-end latency in nanoseconds, when enabled.
    latency: Option<saql_analytics::Histogram>,
}

impl Scheduler {
    pub fn new() -> Self {
        Scheduler {
            groups: Vec::new(),
            by_key: HashMap::new(),
            stats: SchedulerStats::default(),
            latency: None,
        }
    }

    /// Record per-event processing latency (adds one `Instant::now()` pair
    /// per event; off by default).
    pub fn enable_latency_tracking(&mut self) {
        self.latency
            .get_or_insert_with(saql_analytics::Histogram::new);
    }

    /// The latency histogram, if tracking is enabled and events were seen.
    pub fn latency(&self) -> Option<&saql_analytics::Histogram> {
        self.latency.as_ref()
    }

    /// Register a running query, grouping it with compatible ones.
    /// Returns `(group index, member index)`.
    pub fn add(&mut self, query: RunningQuery) -> (usize, usize) {
        let key = query.compat_key().to_string();
        let gi = match self.by_key.get(&key) {
            Some(&gi) => gi,
            None => {
                let gi = self.groups.len();
                self.groups.push(Group {
                    key: key.clone(),
                    members: Vec::new(),
                    cache: BatchCache::default(),
                });
                self.by_key.insert(key, gi);
                gi
            }
        };
        self.groups[gi].members.push(query);
        (gi, self.groups[gi].members.len() - 1)
    }

    /// Deregister a query by id, returning it (with its pending window
    /// state intact — the caller decides whether to flush it).
    ///
    /// Group maintenance is the interesting part of removal: taking the
    /// group's first member *promotes* the next dependent to master (all
    /// members share the shape, so any member's shape test is the master
    /// check), and taking the last member *dissolves* the group so later
    /// events no longer pay its master check.
    pub fn remove(&mut self, id: QueryId) -> Option<RunningQuery> {
        for gi in 0..self.groups.len() {
            let Some(mi) = self.groups[gi].members.iter().position(|q| q.id() == id) else {
                continue;
            };
            let query = self.groups[gi].members.remove(mi);
            if self.groups[gi].members.is_empty() {
                let dissolved = self.groups.remove(gi);
                self.by_key.remove(&dissolved.key);
                // Groups after the dissolved one shifted down by one.
                for (i, group) in self.groups.iter().enumerate().skip(gi) {
                    self.by_key.insert(group.key.clone(), i);
                }
            }
            return Some(query);
        }
        None
    }

    /// Detach a query from the stream without removing it (no events, no
    /// time advance, no alerts until [`resume`](Self::resume)). Returns
    /// `false` for an unknown id.
    pub fn pause(&mut self, id: QueryId) -> bool {
        self.set_paused(id, true)
    }

    /// Re-attach a paused query. Stream time catches up on the next event,
    /// closing any windows that came due while detached. Returns `false`
    /// for an unknown id.
    pub fn resume(&mut self, id: QueryId) -> bool {
        self.set_paused(id, false)
    }

    fn set_paused(&mut self, id: QueryId, paused: bool) -> bool {
        for group in &mut self.groups {
            if let Some(q) = group.members.iter_mut().find(|q| q.id() == id) {
                q.set_paused(paused);
                return true;
            }
        }
        false
    }

    /// Whether a query with this id is registered.
    pub fn contains(&self, id: QueryId) -> bool {
        self.queries().any(|q| q.id() == id)
    }

    /// Number of compatibility groups (== master queries == stream copies).
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Total registered queries.
    pub fn query_count(&self) -> usize {
        self.groups.iter().map(|g| g.members.len()).sum()
    }

    pub fn stats(&self) -> SchedulerStats {
        self.stats
    }

    /// Sizes of each group, keyed by compat key (diagnostics).
    pub fn group_sizes(&self) -> Vec<(String, usize)> {
        self.groups
            .iter()
            .map(|g| (g.key.clone(), g.members.len()))
            .collect()
    }

    /// Iterate over registered queries.
    pub fn queries(&self) -> impl Iterator<Item = &RunningQuery> {
        self.groups.iter().flat_map(|g| g.members.iter())
    }

    /// Capture each registered query's dynamic state, keyed by id (engine
    /// checkpoints). Must be called at a batch boundary — batch-transient
    /// caches are not part of the snapshot.
    pub fn query_snapshots(&self) -> Vec<(QueryId, QuerySnapshot)> {
        self.queries().map(|q| (q.id(), q.snapshot())).collect()
    }

    /// Push one event through every group.
    pub fn process(&mut self, event: &SharedEvent) -> Vec<Alert> {
        let started = self.latency.is_some().then(std::time::Instant::now);
        let alerts = self.process_inner(event);
        if let (Some(started), Some(hist)) = (started, self.latency.as_mut()) {
            hist.record(started.elapsed().as_nanos() as u64);
        }
        alerts
    }

    fn process_inner(&mut self, event: &SharedEvent) -> Vec<Alert> {
        self.stats.events += 1;
        let mut alerts = Vec::new();
        for group in &mut self.groups {
            // Time advances for every attached member regardless of shape
            // (windows close on stream time, not on matching events).
            // Paused members are detached: their stream is frozen until
            // resume.
            let mut attached = 0usize;
            for q in &mut group.members {
                if q.is_paused() {
                    continue;
                }
                attached += 1;
                // Pipeline stages run on their upstream's clock
                // (`accepts_time`); everything else on stream time.
                if q.accepts_time(event) {
                    alerts.extend(q.advance_time(event.ts));
                }
            }
            // A fully-paused group has no one to deliver to, so its master
            // check would be pure waste.
            if attached == 0 {
                continue;
            }
            // Master check: one shape test per group, performed against the
            // group's first member (all members share the shape by
            // construction, so a paused master still answers for the group).
            self.stats.master_checks += 1;
            let admit = group
                .members
                .first()
                .map(|m| m.shape_matches(event))
                .unwrap_or(false);
            if !admit {
                continue;
            }
            for q in &mut group.members {
                if q.is_paused() {
                    continue;
                }
                // A key-partitioned replica receives only the rows it owns
                // (always true for unpartitioned members), keeping
                // deliveries disjoint across shards.
                if !q.owns_event(event) {
                    continue;
                }
                self.stats.deliveries += 1;
                alerts.extend(q.process_payload(event));
            }
        }
        alerts
    }

    /// Push a whole batch through every group, batch-at-a-time.
    ///
    /// Phase one (prepare) computes each group's predicate columns once
    /// per batch — shared across members through the group's
    /// [`BatchCache`] — and each member's program prefixes column-wise.
    /// Phase two (drive) replays the exact event-major/group-major order of
    /// [`Self::process`], so the alert stream and stats are identical to
    /// feeding the events one at a time; only the probe count shrinks.
    ///
    /// Latency tracking needs one timestamp pair per event, so it falls
    /// back to the per-event path.
    pub fn process_batch(&mut self, batch: &EventBatch) -> Vec<Alert> {
        if self.latency.is_some() {
            let mut alerts = Vec::new();
            for event in batch {
                alerts.extend(self.process(event));
            }
            return alerts;
        }
        let view = BatchView::new(batch);
        for group in &mut self.groups {
            let Group { members, cache, .. } = group;
            cache.begin_batch();
            // Fully-paused groups are skipped per event anyway; paused
            // members never receive payloads, so only attached ones
            // prepare. Pause state cannot change mid-batch (control-plane
            // operations land between engine calls).
            for q in members.iter_mut() {
                if !q.is_paused() {
                    q.prepare_batch(&view, cache);
                }
            }
        }
        // Master admission masks are constant across the batch: one fold
        // per group instead of one shape probe per group per event.
        let masks: Vec<u64> = self
            .groups
            .iter()
            .map(|g| g.members.first().map(|m| m.shape_mask()).unwrap_or(0))
            .collect();
        let shapes = view.shape();
        let mut alerts = Vec::new();
        for (row, event) in view.events().iter().enumerate() {
            self.stats.events += 1;
            for (gi, group) in self.groups.iter_mut().enumerate() {
                let mut attached = 0usize;
                for q in &mut group.members {
                    if q.is_paused() {
                        continue;
                    }
                    attached += 1;
                    if q.accepts_time(event) {
                        alerts.extend(q.advance_time(event.ts));
                    }
                }
                if attached == 0 {
                    continue;
                }
                self.stats.master_checks += 1;
                if masks[gi] & (1u64 << shapes[row]) == 0 {
                    continue;
                }
                let Group { members, cache, .. } = group;
                for q in members.iter_mut() {
                    if q.is_paused() {
                        continue;
                    }
                    // Partitioned replicas own a disjoint row slice (the
                    // owner column was resolved in `prepare_batch`);
                    // unpartitioned members own every row.
                    if !q.owns_row(row) {
                        continue;
                    }
                    self.stats.deliveries += 1;
                    alerts.extend(q.process_payload_row(event, row, cache));
                }
            }
        }
        alerts
    }

    /// Flush one member's open windows in place without removing it (the
    /// layered pipeline drain: upstream stages flush first so their final
    /// alerts can still feed dependents). Returns `None` for an unknown id.
    pub fn flush_member(&mut self, id: QueryId) -> Option<Vec<Alert>> {
        for group in &mut self.groups {
            if let Some(q) = group.members.iter_mut().find(|q| q.id() == id) {
                return Some(q.finish());
            }
        }
        None
    }

    /// End of stream: flush all members — including paused ones, whose
    /// windows still hold whatever they absorbed before detaching.
    pub fn finish(&mut self) -> Vec<Alert> {
        let mut alerts = Vec::new();
        for group in &mut self.groups {
            for q in &mut group.members {
                alerts.extend(q.finish());
            }
        }
        alerts
    }
}

impl Default for Scheduler {
    fn default() -> Self {
        Scheduler::new()
    }
}

/// Baseline scheduler without sharing: every query checks every event and
/// gets a private deep copy of the payload, as a generic CEP engine hosting
/// independent queries would. Exists for the E4 benchmark comparison.
pub struct NaiveScheduler {
    queries: Vec<RunningQuery>,
    stats: SchedulerStats,
}

impl NaiveScheduler {
    pub fn new() -> Self {
        NaiveScheduler {
            queries: Vec::new(),
            stats: SchedulerStats::default(),
        }
    }

    pub fn add(&mut self, query: RunningQuery) {
        self.queries.push(query);
    }

    pub fn query_count(&self) -> usize {
        self.queries.len()
    }

    pub fn stats(&self) -> SchedulerStats {
        self.stats
    }

    pub fn queries(&self) -> impl Iterator<Item = &RunningQuery> {
        self.queries.iter()
    }

    /// Push one event: per query, deep-copy the payload (the per-query data
    /// copy the master–dependent scheme eliminates) and process it.
    pub fn process(&mut self, event: &SharedEvent) -> Vec<Alert> {
        self.stats.events += 1;
        let mut alerts = Vec::new();
        for q in &mut self.queries {
            self.stats.master_checks += 1; // every query scans every event
            let copy = std::sync::Arc::new(saql_model::Event::clone(event));
            self.stats.data_copies += 1;
            self.stats.deliveries += 1;
            alerts.extend(q.advance_time(event.ts));
            alerts.extend(q.process_payload(&copy));
        }
        alerts
    }

    pub fn finish(&mut self) -> Vec<Alert> {
        let mut alerts = Vec::new();
        for q in &mut self.queries {
            alerts.extend(q.finish());
        }
        alerts
    }

    /// Advance time only (parity with [`Scheduler`], used by benches).
    pub fn advance_time(&mut self, ts: Timestamp) -> Vec<Alert> {
        let mut alerts = Vec::new();
        for q in &mut self.queries {
            alerts.extend(q.advance_time(ts));
        }
        alerts
    }
}

impl Default for NaiveScheduler {
    fn default() -> Self {
        NaiveScheduler::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QueryConfig;
    use saql_model::event::EventBuilder;
    use saql_model::{NetworkInfo, ProcessInfo};
    use std::sync::Arc;

    fn rq(name: &str, src: &str) -> RunningQuery {
        RunningQuery::compile(name, src, QueryConfig::default()).unwrap()
    }

    fn start(id: u64, ts: u64, parent: &str, child: &str) -> SharedEvent {
        Arc::new(
            EventBuilder::new(id, "h", ts)
                .subject(ProcessInfo::new(1, parent, "u"))
                .starts_process(ProcessInfo::new(2, child, "u"))
                .build(),
        )
    }

    fn send(id: u64, ts: u64, exe: &str, dst: &str, amount: u64) -> SharedEvent {
        Arc::new(
            EventBuilder::new(id, "h", ts)
                .subject(ProcessInfo::new(1, exe, "u"))
                .sends(NetworkInfo::new("10.0.0.2", 44000, dst, 443, "tcp"))
                .amount(amount)
                .build(),
        )
    }

    #[test]
    fn compatible_queries_share_a_group() {
        let mut s = Scheduler::new();
        s.add(rq(
            "a",
            "proc p1[\"%cmd.exe\"] start proc p2 as e\nreturn p1",
        ));
        s.add(rq("b", "proc x start proc y[\"%osql.exe\"] as e\nreturn x"));
        s.add(rq("c", "proc p write ip i as e\nreturn p"));
        assert_eq!(s.query_count(), 3);
        assert_eq!(s.group_count(), 2, "{:?}", s.group_sizes());
    }

    #[test]
    fn master_admits_only_shape_matches() {
        let mut s = Scheduler::new();
        s.add(rq(
            "a",
            "proc p1[\"%cmd.exe\"] start proc p2 as e\nreturn p1",
        ));
        s.add(rq(
            "b",
            "proc p1[\"%excel.exe\"] start proc p2 as e\nreturn p1",
        ));
        // A network event: shape check fails once for the whole group.
        s.process(&send(1, 10, "cmd.exe", "1.1.1.1", 5));
        assert_eq!(s.stats().master_checks, 1);
        assert_eq!(s.stats().deliveries, 0);
        // A process-start event: one check, two deliveries.
        let alerts = s.process(&start(2, 20, "cmd.exe", "osql.exe"));
        assert_eq!(s.stats().master_checks, 2);
        assert_eq!(s.stats().deliveries, 2);
        // Only query `a`'s constraints match.
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].query, "a");
    }

    #[test]
    fn scheduler_results_match_standalone_execution() {
        let sources = [
            ("q1", "proc p1[\"%cmd.exe\"] start proc p2[\"%osql.exe\"] as e\nreturn distinct p1, p2"),
            ("q2", "proc p1[\"%excel.exe\"] start proc p2 as e\nreturn distinct p1, p2"),
            ("q3", "proc p write ip i as evt #time(1 min)\nstate ss { amt := sum(evt.amount) } group by p\nalert ss[0].amt > 100\nreturn p, ss[0].amt"),
        ];
        let events: Vec<SharedEvent> = vec![
            start(1, 1_000, "cmd.exe", "osql.exe"),
            start(2, 2_000, "excel.exe", "cscript.exe"),
            send(3, 3_000, "sqlservr.exe", "10.0.0.9", 500),
            start(4, 61_000, "cmd.exe", "calc.exe"),
            send(5, 62_000, "sqlservr.exe", "10.0.0.9", 50),
            send(6, 200_000, "chrome.exe", "8.8.8.8", 10),
        ];

        let mut standalone_alerts = Vec::new();
        for (name, src) in sources {
            let mut q = rq(name, src);
            for e in &events {
                standalone_alerts.extend(q.process(e));
            }
            standalone_alerts.extend(q.finish());
        }

        let mut s = Scheduler::new();
        for (name, src) in sources {
            s.add(rq(name, src));
        }
        let mut sched_alerts = Vec::new();
        for e in &events {
            sched_alerts.extend(s.process(e));
        }
        sched_alerts.extend(s.finish());

        let norm = |mut v: Vec<Alert>| {
            v.sort_by(|a, b| {
                (a.query.clone(), format!("{a}")).cmp(&(b.query.clone(), format!("{b}")))
            });
            v.into_iter().map(|a| a.to_string()).collect::<Vec<_>>()
        };
        assert_eq!(norm(standalone_alerts), norm(sched_alerts));
    }

    #[test]
    fn naive_scheduler_copies_per_query() {
        let mut n = NaiveScheduler::new();
        for i in 0..4 {
            n.add(rq(&format!("q{i}"), "proc p start proc q as e\nreturn p"));
        }
        n.process(&start(1, 10, "a.exe", "b.exe"));
        assert_eq!(n.stats().data_copies, 4);
        assert_eq!(n.stats().master_checks, 4);
        // Master–dependent makes zero copies for the same workload.
        let mut s = Scheduler::new();
        for i in 0..4 {
            s.add(rq(&format!("q{i}"), "proc p start proc q as e\nreturn p"));
        }
        s.process(&start(1, 10, "a.exe", "b.exe"));
        assert_eq!(s.stats().data_copies, 0);
        assert_eq!(s.stats().master_checks, 1);
    }

    fn rq_id(name: &str, src: &str, id: usize) -> RunningQuery {
        let mut q = rq(name, src);
        q.set_id(QueryId::new(id));
        q
    }

    #[test]
    fn remove_promotes_dependents_and_dissolves_groups() {
        let mut s = Scheduler::new();
        s.add(rq_id("a", "proc p start proc q as e\nreturn p", 0));
        s.add(rq_id("b", "proc p start proc q as e\nreturn q", 1));
        s.add(rq_id("c", "proc p write ip i as e\nreturn p", 2));
        assert_eq!(s.group_count(), 2);
        // Removing the master of the start-group promotes `b`.
        let removed = s.remove(QueryId::new(0)).expect("a is registered");
        assert_eq!(removed.name(), "a");
        assert_eq!(s.group_count(), 2);
        assert_eq!(s.query_count(), 2);
        let alerts = s.process(&start(1, 10, "x.exe", "y.exe"));
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].query, "b");
        // Removing the last member dissolves the group: no more master
        // checks for its shape.
        let checks_before = s.stats().master_checks;
        s.remove(QueryId::new(1)).expect("b is registered");
        assert_eq!(s.group_count(), 1);
        s.process(&start(2, 20, "x.exe", "y.exe"));
        // Only the write-group's check remains (and it rejects the shape).
        assert_eq!(s.stats().master_checks, checks_before + 1);
        // The ip-write group keyed map survived the index shift.
        assert!(s.contains(QueryId::new(2)));
        assert!(!s.contains(QueryId::new(1)));
        assert!(s.remove(QueryId::new(7)).is_none());
    }

    #[test]
    fn paused_queries_see_no_events_or_time() {
        let mut s = Scheduler::new();
        s.add(rq_id(
            "w",
            "proc p write ip i as evt #time(1 min)\nstate ss { n := count() } group by p\nreturn p, ss[0].n",
            0,
        ));
        assert!(s.pause(QueryId::new(0)));
        // Events and a window boundary pass while paused: nothing happens.
        let mut alerts = Vec::new();
        alerts.extend(s.process(&send(1, 1_000, "x.exe", "1.1.1.1", 5)));
        alerts.extend(s.process(&send(2, 120_000, "x.exe", "1.1.1.1", 5)));
        assert!(alerts.is_empty());
        assert_eq!(s.stats().deliveries, 0);
        assert_eq!(s.stats().master_checks, 0, "fully-paused group skipped");
        // Resume: the query only ever sees post-resume events.
        assert!(s.resume(QueryId::new(0)));
        alerts.extend(s.process(&send(3, 130_000, "x.exe", "1.1.1.1", 5)));
        alerts.extend(s.finish());
        assert_eq!(alerts.len(), 1, "{alerts:?}");
        assert_eq!(alerts[0].get("ss[0].n"), Some("1"));
        assert!(!s.pause(QueryId::new(9)), "unknown id");
    }

    #[test]
    fn pause_of_master_keeps_group_running() {
        let mut s = Scheduler::new();
        s.add(rq_id("a", "proc p start proc q as e\nreturn p", 0));
        s.add(rq_id("b", "proc p start proc q as e\nreturn q", 1));
        s.pause(QueryId::new(0));
        let alerts = s.process(&start(1, 10, "x.exe", "y.exe"));
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].query, "b");
        assert_eq!(s.stats().master_checks, 1);
        assert_eq!(s.stats().deliveries, 1, "paused member not delivered to");
    }

    #[test]
    fn absorb_shard_merges_events_by_mode() {
        let a = SchedulerStats {
            events: 100,
            master_checks: 10,
            deliveries: 5,
            data_copies: 0,
        };
        let b = SchedulerStats {
            events: 40,
            master_checks: 7,
            deliveries: 3,
            data_copies: 1,
        };
        let mut broadcast = a;
        broadcast.absorb_shard(b, ShardMerge::Broadcast);
        assert_eq!(broadcast.events, 100, "every shard saw the full stream");
        let mut disjoint = a;
        disjoint.absorb_shard(b, ShardMerge::Disjoint);
        assert_eq!(
            disjoint.events, 140,
            "disjoint sub-streams sum; a max would undercount"
        );
        for merged in [broadcast, disjoint] {
            assert_eq!(merged.master_checks, 17);
            assert_eq!(merged.deliveries, 8);
            assert_eq!(merged.data_copies, 1);
        }
    }

    #[test]
    fn batched_processing_matches_per_event() {
        let sources = [
            ("q1", "proc p1[\"%cmd.exe\"] start proc p2[\"%osql.exe\"] as e\nreturn distinct p1, p2"),
            ("q2", "proc p1[\"%excel.exe\"] start proc p2 as e\nreturn distinct p1, p2"),
            ("q3", "proc p write ip i as evt #time(1 min)\nstate ss { amt := sum(evt.amount) } group by p\nalert ss[0].amt > 100\nreturn p, ss[0].amt"),
            ("q4", "proc p write ip i as evt #time(1 min)\nstate ss { amt := sum(evt.amount) } group by p\nalert ss[0].amt > 400\nreturn p"),
        ];
        let events: Vec<SharedEvent> = vec![
            start(1, 1_000, "cmd.exe", "osql.exe"),
            start(2, 2_000, "excel.exe", "cscript.exe"),
            send(3, 3_000, "sqlservr.exe", "10.0.0.9", 500),
            start(4, 61_000, "cmd.exe", "calc.exe"),
            send(5, 62_000, "sqlservr.exe", "10.0.0.9", 50),
            send(6, 200_000, "chrome.exe", "8.8.8.8", 10),
        ];

        let mut per_event = Scheduler::new();
        let mut batched_s = Scheduler::new();
        for (name, src) in sources {
            per_event.add(rq(name, src));
            batched_s.add(rq(name, src));
        }
        let mut expected = Vec::new();
        for e in &events {
            expected.extend(per_event.process(e));
        }
        expected.extend(per_event.finish());

        let mut got = Vec::new();
        for batch in saql_stream::batched(events.clone(), 4) {
            got.extend(batched_s.process_batch(&batch));
        }
        got.extend(batched_s.finish());

        let render = |v: &[Alert]| v.iter().map(|a| a.to_string()).collect::<Vec<_>>();
        assert_eq!(render(&expected), render(&got), "ordered alert streams");
        assert_eq!(per_event.stats().events, batched_s.stats().events);
        assert_eq!(
            per_event.stats().master_checks,
            batched_s.stats().master_checks
        );
        assert_eq!(per_event.stats().deliveries, batched_s.stats().deliveries);
    }

    #[test]
    fn window_time_advances_even_without_shape_matches() {
        // A windowed query over network writes must close its window when a
        // later *process* event (shape mismatch) advances stream time.
        let mut s = Scheduler::new();
        s.add(rq(
            "w",
            "proc p write ip i as evt #time(1 min)\nstate ss { n := count() } group by p\nreturn p, ss[0].n",
        ));
        s.add(rq("r", "proc p start proc q as e\nreturn p"));
        let mut alerts = Vec::new();
        alerts.extend(s.process(&send(1, 1_000, "x.exe", "1.1.1.1", 5)));
        // 10 minutes later, only process events.
        alerts.extend(s.process(&start(2, 600_000, "a.exe", "b.exe")));
        let w_alerts: Vec<_> = alerts.iter().filter(|a| a.query == "w").collect();
        assert_eq!(w_alerts.len(), 1, "window should have closed: {alerts:?}");
    }
}
