//! Runtime values for SAQL expression evaluation.
//!
//! Expressions mix scalars (event attributes, aggregates) with *sets* (the
//! `set(...)` aggregate and invariant variables) and must degrade gracefully
//! over missing data: a reference into an absent past window (`ss[2]` before
//! the third window) yields [`Value::Missing`], which propagates through
//! arithmetic and makes comparisons false — queries stay quiet until their
//! history warms up, instead of erroring.

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

use saql_model::AttrValue;

/// A set of attribute values, normalized to their display strings (SAQL sets
/// are sets of entity attributes — executable names, ips — which are
/// strings; numeric members normalize via `Display`).
pub type SetValues = BTreeSet<String>;

/// A runtime value.
#[derive(Debug, Clone)]
pub enum Value {
    /// A scalar attribute value.
    Attr(AttrValue),
    /// A set (shared: set states are cloned into window history and
    /// invariants).
    Set(Arc<SetValues>),
    /// Absent data (unknown name at runtime, missing past window, absent
    /// group). Propagates through operators; truthiness is `false`.
    Missing,
}

impl Value {
    pub fn int(v: i64) -> Value {
        Value::Attr(AttrValue::Int(v))
    }

    pub fn float(v: f64) -> Value {
        Value::Attr(AttrValue::Float(v))
    }

    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Attr(AttrValue::str(s))
    }

    pub fn bool(b: bool) -> Value {
        Value::Attr(AttrValue::Bool(b))
    }

    pub fn empty_set() -> Value {
        Value::Set(Arc::new(BTreeSet::new()))
    }

    pub fn set_from<I: IntoIterator<Item = String>>(items: I) -> Value {
        Value::Set(Arc::new(items.into_iter().collect()))
    }

    /// Numeric view (missing/sets/strings have none).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Attr(a) => a.as_f64(),
            _ => None,
        }
    }

    /// Truthiness for alert conditions: `Missing` is false.
    pub fn truthy(&self) -> bool {
        match self {
            Value::Attr(a) => a.truthy(),
            Value::Set(s) => !s.is_empty(),
            Value::Missing => false,
        }
    }

    pub fn is_missing(&self) -> bool {
        matches!(self, Value::Missing)
    }

    /// Cardinality for `|expr|`: set size, or absolute value for numbers.
    pub fn cardinality(&self) -> Value {
        match self {
            Value::Set(s) => Value::int(s.len() as i64),
            Value::Attr(a) => match a.as_f64() {
                Some(x) => Value::float(x.abs()),
                None => Value::Missing,
            },
            Value::Missing => Value::Missing,
        }
    }

    /// Set union; `Missing` acts as the empty set so invariant updates can
    /// run before any window has produced a state.
    pub fn union(&self, other: &Value) -> Value {
        match (self.as_set(), other.as_set()) {
            (Some(a), Some(b)) => {
                let mut out = a.clone();
                out.extend(b.iter().cloned());
                Value::Set(Arc::new(out))
            }
            _ => Value::Missing,
        }
    }

    /// Set difference (`a diff b` = members of `a` not in `b`).
    pub fn diff(&self, other: &Value) -> Value {
        match (self.as_set(), other.as_set()) {
            (Some(a), Some(b)) => Value::Set(Arc::new(a.difference(b).cloned().collect())),
            _ => Value::Missing,
        }
    }

    /// Set intersection.
    pub fn intersect(&self, other: &Value) -> Value {
        match (self.as_set(), other.as_set()) {
            (Some(a), Some(b)) => Value::Set(Arc::new(a.intersection(b).cloned().collect())),
            _ => Value::Missing,
        }
    }

    /// View as a set; `Missing` views as the (static) empty set.
    fn as_set(&self) -> Option<&SetValues> {
        static EMPTY: std::sync::OnceLock<SetValues> = std::sync::OnceLock::new();
        match self {
            Value::Set(s) => Some(s),
            Value::Missing => Some(EMPTY.get_or_init(BTreeSet::new)),
            Value::Attr(_) => None,
        }
    }

    /// Loose equality matching [`AttrValue::loose_eq`]; sets compare by
    /// content; `Missing` equals nothing.
    pub fn loose_eq(&self, other: &Value) -> Option<bool> {
        match (self, other) {
            (Value::Missing, _) | (_, Value::Missing) => None,
            (Value::Attr(a), Value::Attr(b)) => Some(a.loose_eq(b)),
            (Value::Set(a), Value::Set(b)) => Some(a == b),
            _ => Some(false),
        }
    }

    /// Loose ordering; `None` for incomparable kinds or missing data.
    pub fn loose_cmp(&self, other: &Value) -> Option<std::cmp::Ordering> {
        match (self, other) {
            (Value::Attr(a), Value::Attr(b)) => a.loose_cmp(b),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Attr(a) => write!(f, "{a}"),
            Value::Set(s) => {
                write!(f, "{{")?;
                for (i, m) in s.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{m}")?;
                }
                write!(f, "}}")
            }
            Value::Missing => write!(f, "<missing>"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(items: &[&str]) -> Value {
        Value::set_from(items.iter().map(|s| s.to_string()))
    }

    #[test]
    fn cardinality_of_sets_and_numbers() {
        assert_eq!(set(&["a", "b"]).cardinality().as_f64(), Some(2.0));
        assert_eq!(Value::int(-7).cardinality().as_f64(), Some(7.0));
        assert!(Value::Missing.cardinality().is_missing());
        assert!(Value::str("x").cardinality().is_missing());
    }

    #[test]
    fn union_diff_intersect() {
        let a = set(&["x", "y"]);
        let b = set(&["y", "z"]);
        assert_eq!(a.union(&b).to_string(), "{x, y, z}");
        assert_eq!(a.diff(&b).to_string(), "{x}");
        assert_eq!(a.intersect(&b).to_string(), "{y}");
    }

    #[test]
    fn missing_acts_as_empty_set_in_set_ops() {
        let a = set(&["p.exe"]);
        assert_eq!(Value::Missing.union(&a).to_string(), "{p.exe}");
        assert_eq!(a.diff(&Value::Missing).to_string(), "{p.exe}");
        assert_eq!(a.intersect(&Value::Missing).to_string(), "{}");
    }

    #[test]
    fn set_ops_with_scalars_are_missing() {
        assert!(set(&["a"]).union(&Value::int(3)).is_missing());
    }

    #[test]
    fn truthiness() {
        assert!(!Value::Missing.truthy());
        assert!(set(&["a"]).truthy());
        assert!(!Value::empty_set().truthy());
        assert!(Value::int(1).truthy());
        assert!(!Value::bool(false).truthy());
    }

    #[test]
    fn loose_eq_and_cmp() {
        assert_eq!(Value::int(3).loose_eq(&Value::float(3.0)), Some(true));
        assert_eq!(Value::Missing.loose_eq(&Value::int(3)), None);
        assert_eq!(set(&["a"]).loose_eq(&set(&["a"])), Some(true));
        assert_eq!(set(&["a"]).loose_eq(&Value::int(1)), Some(false));
        assert_eq!(
            Value::int(1).loose_cmp(&Value::int(2)),
            Some(std::cmp::Ordering::Less)
        );
        assert_eq!(set(&["a"]).loose_cmp(&set(&["b"])), None);
    }

    #[test]
    fn display_formats() {
        assert_eq!(set(&["b", "a"]).to_string(), "{a, b}");
        assert_eq!(Value::Missing.to_string(), "<missing>");
        assert_eq!(Value::float(2.0).to_string(), "2.0");
    }
}
