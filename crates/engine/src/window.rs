//! Sliding-window assignment.
//!
//! SAQL windows are event-time based: `#time(size, slide)` defines windows
//! `W_k = [k·slide, k·slide + size)`. With `slide == size` the windows
//! tumble (the paper's queries); with `slide < size` they overlap and an
//! event belongs to several consecutive windows.
//!
//! Window *closing* is driven by the stream watermark (the maximum event
//! time seen): `W_k` closes once the watermark reaches its end. The
//! [`WindowDriver`] tracks which windows have observed events and hands out
//! close notifications in window order.

use std::collections::BTreeSet;

use saql_lang::ast::WindowSpec;
use saql_model::Timestamp;

/// Pure window arithmetic for a `#time(size, slide)` spec.
#[derive(Debug, Clone, Copy)]
pub struct WindowAssigner {
    size_ms: u64,
    slide_ms: u64,
}

impl WindowAssigner {
    pub fn new(spec: WindowSpec) -> Self {
        let size_ms = spec.size.as_millis();
        let slide_ms = spec.slide.as_millis();
        assert!(size_ms > 0 && slide_ms > 0, "parser rejects zero windows");
        WindowAssigner { size_ms, slide_ms }
    }

    /// Window ids containing the given event time (inclusive range).
    pub fn windows_for(&self, ts: Timestamp) -> std::ops::RangeInclusive<u64> {
        let t = ts.as_millis();
        let hi = t / self.slide_ms;
        let lo = if t < self.size_ms {
            0
        } else {
            (t - self.size_ms) / self.slide_ms + 1
        };
        lo..=hi
    }

    /// `[start, end)` bounds of window `k`.
    pub fn bounds(&self, k: u64) -> (Timestamp, Timestamp) {
        let start = k * self.slide_ms;
        (
            Timestamp::from_millis(start),
            Timestamp::from_millis(start + self.size_ms),
        )
    }

    /// Whether window `k` should close at the given watermark.
    pub fn closes_at(&self, k: u64, watermark: Timestamp) -> bool {
        self.bounds(k).1 <= watermark
    }
}

/// Tracks open windows and the stream watermark for one query.
///
/// `allowed_lateness` delays window closing: a window closes only once the
/// watermark passes `window end + lateness`, so events arriving up to that
/// much out of timestamp order still land in their window (agent feeds from
/// many hosts merge with bounded skew).
#[derive(Debug)]
pub struct WindowDriver {
    assigner: WindowAssigner,
    lateness_ms: u64,
    watermark: Timestamp,
    /// Windows that observed at least one matching event and have not
    /// closed yet.
    open: BTreeSet<u64>,
    closed: u64,
}

impl WindowDriver {
    pub fn new(spec: WindowSpec) -> Self {
        Self::with_lateness(spec, saql_model::Duration::ZERO)
    }

    /// Driver that tolerates events up to `lateness` behind the watermark.
    pub fn with_lateness(spec: WindowSpec, lateness: saql_model::Duration) -> Self {
        WindowDriver {
            assigner: WindowAssigner::new(spec),
            lateness_ms: lateness.as_millis(),
            watermark: Timestamp::ZERO,
            open: BTreeSet::new(),
            closed: 0,
        }
    }

    pub fn assigner(&self) -> &WindowAssigner {
        &self.assigner
    }

    fn due(&self, k: u64) -> bool {
        let close_at =
            self.assigner.bounds(k).1 + saql_model::Duration::from_millis(self.lateness_ms);
        close_at <= self.watermark
    }

    /// Advance the watermark (monotone) and return the window ids that are
    /// now due to close, in ascending order.
    pub fn advance(&mut self, ts: Timestamp) -> Vec<u64> {
        if ts > self.watermark {
            self.watermark = ts;
        }
        let mut due = Vec::new();
        while let Some(&k) = self.open.first() {
            if self.due(k) {
                self.open.remove(&k);
                due.push(k);
                self.closed += 1;
            } else {
                break;
            }
        }
        due
    }

    /// Record that a matching event at `ts` contributes to its windows;
    /// returns the ids the caller should fold the event into (late windows —
    /// already closed — are excluded).
    pub fn observe(&mut self, ts: Timestamp) -> Vec<u64> {
        let mut ks = Vec::new();
        self.observe_into(ts, &mut ks);
        ks
    }

    /// [`observe`](Self::observe) into a caller-owned buffer (cleared
    /// first) — the per-event path reuses one, so window assignment never
    /// allocates.
    pub fn observe_into(&mut self, ts: Timestamp, ks: &mut Vec<u64>) {
        ks.clear();
        for k in self.assigner.windows_for(ts) {
            if !self.due(k) {
                self.open.insert(k);
                ks.push(k);
            }
        }
    }

    /// Close every still-open window (end of stream), ascending.
    pub fn drain(&mut self) -> Vec<u64> {
        let due: Vec<u64> = self.open.iter().copied().collect();
        self.closed += due.len() as u64;
        self.open.clear();
        due
    }

    /// Total windows closed so far.
    pub fn closed_count(&self) -> u64 {
        self.closed
    }

    pub fn watermark(&self) -> Timestamp {
        self.watermark
    }

    /// Capture the driver's dynamic state (engine checkpoints). The window
    /// spec itself is static — it is recompiled from the query source.
    pub fn snapshot(&self) -> WindowSnapshot {
        WindowSnapshot {
            watermark: self.watermark,
            open: self.open.iter().copied().collect(),
            closed: self.closed,
        }
    }

    /// Restore the dynamic state captured by [`snapshot`](Self::snapshot)
    /// onto a freshly compiled driver with the same spec.
    pub fn restore(&mut self, snap: WindowSnapshot) {
        self.watermark = snap.watermark;
        self.open = snap.open.into_iter().collect();
        self.closed = snap.closed;
    }
}

/// Dynamic state of a [`WindowDriver`], exact under snapshot → restore.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowSnapshot {
    pub watermark: Timestamp,
    /// Open window ids, ascending.
    pub open: Vec<u64>,
    pub closed: u64,
}

impl WindowSnapshot {
    /// Fold another partitioned replica's view of the same query clock into
    /// this one. A replica only *opens* the windows its owned rows landed
    /// in, so the canonical open set is the union; the watermark advances
    /// identically everywhere (batches broadcast), so max is exact. The
    /// closed counter is diagnostics — max is the best single-replica
    /// lower bound (replicas close disjoint window subsets).
    pub fn absorb_replica(&mut self, part: &WindowSnapshot) {
        self.watermark = self.watermark.max(part.watermark);
        for &k in &part.open {
            if !self.open.contains(&k) {
                self.open.push(k);
            }
        }
        self.open.sort_unstable();
        self.closed = self.closed.max(part.closed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saql_model::Duration;

    fn spec(size_s: u64, slide_s: u64) -> WindowSpec {
        WindowSpec {
            size: Duration::from_secs(size_s),
            slide: Duration::from_secs(slide_s),
        }
    }

    #[test]
    fn tumbling_assignment() {
        let a = WindowAssigner::new(spec(10, 10));
        assert_eq!(a.windows_for(Timestamp::from_secs(0)), 0..=0);
        assert_eq!(a.windows_for(Timestamp::from_millis(9_999)), 0..=0);
        assert_eq!(a.windows_for(Timestamp::from_secs(10)), 1..=1);
        assert_eq!(a.windows_for(Timestamp::from_secs(25)), 2..=2);
    }

    #[test]
    fn sliding_assignment_overlaps() {
        // size 10s, slide 5s: ts=12s is in W1 [5,15) and W2 [10,20).
        let a = WindowAssigner::new(spec(10, 5));
        assert_eq!(a.windows_for(Timestamp::from_secs(12)), 1..=2);
        // Early events fall only into the windows that exist.
        assert_eq!(a.windows_for(Timestamp::from_secs(3)), 0..=0);
        assert_eq!(a.windows_for(Timestamp::from_secs(7)), 0..=1);
    }

    #[test]
    fn bounds_and_closing() {
        let a = WindowAssigner::new(spec(10, 10));
        let (s, e) = a.bounds(3);
        assert_eq!(s, Timestamp::from_secs(30));
        assert_eq!(e, Timestamp::from_secs(40));
        assert!(!a.closes_at(3, Timestamp::from_millis(39_999)));
        assert!(a.closes_at(3, Timestamp::from_secs(40)));
    }

    #[test]
    fn driver_closes_in_order() {
        let mut d = WindowDriver::new(spec(10, 10));
        d.advance(Timestamp::from_secs(1));
        assert_eq!(d.observe(Timestamp::from_secs(1)), vec![0]);
        // Watermark 12s: window 0 (ends at 10s) closes.
        assert_eq!(d.advance(Timestamp::from_secs(12)), vec![0]);
        assert_eq!(d.observe(Timestamp::from_secs(12)), vec![1]);
        // Jump to 35s: window 1 closes; nothing else was open.
        assert_eq!(d.advance(Timestamp::from_secs(35)), vec![1]);
        assert_eq!(d.closed_count(), 2);
    }

    #[test]
    fn late_events_are_not_observed() {
        let mut d = WindowDriver::new(spec(10, 10));
        d.advance(Timestamp::from_secs(25));
        // ts=5s is in window 0, which already closed at watermark 25s.
        assert!(d.observe(Timestamp::from_secs(5)).is_empty());
    }

    #[test]
    fn drain_closes_everything() {
        let mut d = WindowDriver::new(spec(10, 10));
        d.observe(Timestamp::from_secs(1));
        d.observe(Timestamp::from_secs(15));
        assert_eq!(d.drain(), vec![0, 1]);
        assert_eq!(d.drain(), Vec::<u64>::new());
    }

    #[test]
    fn allowed_lateness_delays_closing_and_accepts_stragglers() {
        use saql_model::Duration;
        let mut d = WindowDriver::with_lateness(spec(10, 10), Duration::from_secs(5));
        d.advance(Timestamp::from_secs(1));
        d.observe(Timestamp::from_secs(1));
        // Watermark 12s: window 0 ends at 10s but lateness holds it open.
        assert!(d.advance(Timestamp::from_secs(12)).is_empty());
        // An out-of-order event at 8s still lands in window 0.
        assert_eq!(d.observe(Timestamp::from_secs(8)), vec![0]);
        // Watermark 15s (= 10s end + 5s lateness): now it closes.
        assert_eq!(d.advance(Timestamp::from_secs(15)), vec![0]);
        // Further stragglers for window 0 are rejected.
        assert!(d.observe(Timestamp::from_secs(9)).is_empty());
    }

    #[test]
    fn watermark_is_monotone() {
        let mut d = WindowDriver::new(spec(10, 10));
        d.advance(Timestamp::from_secs(30));
        d.advance(Timestamp::from_secs(20));
        assert_eq!(d.watermark(), Timestamp::from_secs(30));
    }
}
