//! The engine facade: register SAQL query text, push a stream through, and
//! collect alerts — the programmatic equivalent of the demo's command-line
//! UI session.

use saql_lang::LangError;
use saql_stream::SharedEvent;

use crate::alert::Alert;
use crate::query::{QueryConfig, QueryStats, RunningQuery};
use crate::runtime::{ParallelConfig, ParallelEngine};
use crate::scheduler::{Scheduler, SchedulerStats};

/// Engine-wide configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineConfig {
    pub query: QueryConfig,
    /// Track per-event end-to-end latency (one clock read pair per event).
    /// Serial execution only; the parallel runtime reports no histogram.
    pub record_latency: bool,
    /// Worker threads for the parallel sharded runtime. `0` (the default)
    /// runs the serial scheduler on the calling thread; any other value
    /// shards scheduler groups across that many workers (see
    /// [`crate::runtime`]).
    pub workers: usize,
}

/// Handle to a registered query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QueryId(usize);

/// The SAQL anomaly query engine.
///
/// ```
/// use saql_engine::Engine;
/// use saql_model::event::EventBuilder;
/// use saql_model::ProcessInfo;
/// use std::sync::Arc;
///
/// let mut engine = Engine::new(Default::default());
/// engine
///     .register("osql-start", "proc p1[\"%cmd.exe\"] start proc p2[\"%osql.exe\"] as e1\nreturn p1, p2")
///     .unwrap();
/// let event = Arc::new(
///     EventBuilder::new(1, "db-server", 1_000)
///         .subject(ProcessInfo::new(10, "cmd.exe", "admin"))
///         .starts_process(ProcessInfo::new(11, "osql.exe", "admin"))
///         .build(),
/// );
/// let alerts = engine.process(&event);
/// assert_eq!(alerts.len(), 1);
/// assert_eq!(alerts[0].query, "osql-start");
/// ```
pub struct Engine {
    backend: Backend,
    names: Vec<String>,
    config: EngineConfig,
}

/// Execution strategy behind the facade: the single-threaded scheduler, or
/// the sharded multi-threaded runtime.
enum Backend {
    Serial(Scheduler),
    Parallel(ParallelEngine),
}

impl Engine {
    pub fn new(config: EngineConfig) -> Self {
        let backend = if config.workers == 0 {
            let mut scheduler = Scheduler::new();
            if config.record_latency {
                scheduler.enable_latency_tracking();
            }
            Backend::Serial(scheduler)
        } else {
            Backend::Parallel(ParallelEngine::new(
                ParallelConfig::with_workers(config.workers),
                config.query,
            ))
        };
        Engine {
            backend,
            names: Vec::new(),
            config,
        }
    }

    /// An engine on the parallel sharded runtime with `workers` threads
    /// (`0` falls back to serial execution).
    pub fn with_workers(config: EngineConfig, workers: usize) -> Self {
        Engine::new(EngineConfig { workers, ..config })
    }

    /// Worker threads in use (`0` = serial execution on the caller).
    pub fn workers(&self) -> usize {
        match &self.backend {
            Backend::Serial(_) => 0,
            Backend::Parallel(runtime) => runtime.workers(),
        }
    }

    /// Per-event latency histogram (ns), when
    /// [`EngineConfig::record_latency`] is on (serial execution only).
    pub fn latency(&self) -> Option<&saql_analytics::Histogram> {
        match &self.backend {
            Backend::Serial(scheduler) => scheduler.latency(),
            Backend::Parallel(_) => None,
        }
    }

    /// Parse, check, and register a query. Errors carry spans renderable
    /// against `source` (see [`LangError::render`]).
    pub fn register(&mut self, name: &str, source: &str) -> Result<QueryId, LangError> {
        let query = RunningQuery::compile(name, source, self.config.query)?;
        match &mut self.backend {
            Backend::Serial(scheduler) => {
                scheduler.add(query);
            }
            Backend::Parallel(runtime) => runtime.add(query),
        }
        self.names.push(name.to_string());
        Ok(QueryId(self.names.len() - 1))
    }

    /// Registered query names, in registration order.
    pub fn query_names(&self) -> &[String] {
        &self.names
    }

    /// Number of scheduler compatibility groups currently formed.
    pub fn group_count(&self) -> usize {
        match &self.backend {
            Backend::Serial(scheduler) => scheduler.group_count(),
            Backend::Parallel(runtime) => runtime.group_count(),
        }
    }

    /// Execution counters. In parallel mode these are the merged per-shard
    /// counters and are complete once [`finish`](Self::finish) ran.
    pub fn scheduler_stats(&self) -> SchedulerStats {
        match &self.backend {
            Backend::Serial(scheduler) => scheduler.stats(),
            Backend::Parallel(runtime) => runtime.stats(),
        }
    }

    /// Per-query execution stats, `(name, stats)` in arbitrary order. In
    /// parallel mode the shards own the queries while the stream is live,
    /// so stats surface after [`finish`](Self::finish).
    pub fn query_stats(&self) -> Vec<(String, QueryStats)> {
        match &self.backend {
            Backend::Serial(scheduler) => scheduler
                .queries()
                .map(|q| (q.name().to_string(), q.stats()))
                .collect(),
            Backend::Parallel(runtime) => runtime.query_stats(),
        }
    }

    /// Total runtime errors across queries (the error reporter).
    pub fn error_count(&self) -> u64 {
        match &self.backend {
            Backend::Serial(scheduler) => scheduler.queries().map(|q| q.errors().total()).sum(),
            Backend::Parallel(runtime) => runtime.error_count(),
        }
    }

    /// Recent runtime error messages across queries.
    pub fn recent_errors(&self) -> Vec<String> {
        match &self.backend {
            Backend::Serial(scheduler) => scheduler
                .queries()
                .flat_map(|q| {
                    q.errors()
                        .recent()
                        .map(move |e| format!("{}: {e}", q.name()))
                })
                .collect(),
            Backend::Parallel(runtime) => runtime.recent_errors(),
        }
    }

    /// Push one event through all registered queries. Serial execution
    /// returns this event's alerts synchronously; the parallel runtime
    /// returns alerts as they arrive from the workers (everything is
    /// delivered by [`finish`](Self::finish)).
    pub fn process(&mut self, event: &SharedEvent) -> Vec<Alert> {
        match &mut self.backend {
            Backend::Serial(scheduler) => scheduler.process(event),
            Backend::Parallel(runtime) => runtime.process(event),
        }
    }

    /// Drive an entire stream and flush; returns all alerts. Serial
    /// execution yields emission order; parallel yields the same alerts as
    /// a multiset, interleaved across shards.
    pub fn run(&mut self, stream: impl IntoIterator<Item = SharedEvent>) -> Vec<Alert> {
        match &mut self.backend {
            Backend::Serial(scheduler) => {
                let mut alerts = Vec::new();
                for event in stream {
                    alerts.extend(scheduler.process(&event));
                }
                alerts.extend(scheduler.finish());
                alerts
            }
            Backend::Parallel(runtime) => runtime.run(stream),
        }
    }

    /// Drive a stream, delivering every alert to `sink` as it fires
    /// (the SIEM-forwarding path; see [`crate::sink`]). Returns the alert
    /// count.
    pub fn run_with_sink(
        &mut self,
        stream: impl IntoIterator<Item = SharedEvent>,
        sink: &mut dyn crate::sink::AlertSink,
    ) -> u64 {
        match &mut self.backend {
            Backend::Serial(scheduler) => {
                let mut n = 0u64;
                for event in stream {
                    for alert in scheduler.process(&event) {
                        n += 1;
                        sink.deliver(&alert);
                    }
                }
                for alert in scheduler.finish() {
                    n += 1;
                    sink.deliver(&alert);
                }
                sink.flush();
                n
            }
            Backend::Parallel(runtime) => runtime.run_with_sink(stream, sink),
        }
    }

    /// Flush end-of-stream state (close remaining windows; in parallel
    /// mode, drain and join the workers).
    pub fn finish(&mut self) -> Vec<Alert> {
        match &mut self.backend {
            Backend::Serial(scheduler) => scheduler.finish(),
            Backend::Parallel(runtime) => runtime.finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saql_model::event::EventBuilder;
    use saql_model::ProcessInfo;
    use std::sync::Arc;

    fn start(id: u64, ts: u64, parent: &str, child: &str) -> SharedEvent {
        Arc::new(
            EventBuilder::new(id, "h", ts)
                .subject(ProcessInfo::new(1, parent, "u"))
                .starts_process(ProcessInfo::new(2, child, "u"))
                .build(),
        )
    }

    #[test]
    fn register_and_run() {
        let mut e = Engine::new(EngineConfig::default());
        e.register(
            "q",
            "proc p1[\"%cmd.exe\"] start proc p2 as e1\nreturn p1, p2",
        )
        .unwrap();
        let alerts = e.run(vec![
            start(1, 10, "cmd.exe", "osql.exe"),
            start(2, 20, "explorer.exe", "notepad.exe"),
        ]);
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].get("p2"), Some("osql.exe"));
    }

    #[test]
    fn register_error_carries_span() {
        let mut e = Engine::new(EngineConfig::default());
        let err = e
            .register("bad", "proc p teleport proc q as e\nreturn p")
            .unwrap_err();
        assert!(err.message.contains("teleport"));
        assert_eq!(err.span.line, 1);
    }

    #[test]
    fn multiple_queries_grouped() {
        let mut e = Engine::new(EngineConfig::default());
        for i in 0..8 {
            e.register(&format!("q{i}"), "proc p start proc q as e\nreturn p")
                .unwrap();
        }
        assert_eq!(e.group_count(), 1);
        assert_eq!(e.query_names().len(), 8);
    }

    #[test]
    fn latency_tracking_records_per_event() {
        let mut e = Engine::new(EngineConfig {
            record_latency: true,
            ..Default::default()
        });
        e.register("q", "proc p start proc q as e\nreturn p")
            .unwrap();
        e.run(
            (0..50)
                .map(|i| start(i, i * 10, "a.exe", "b.exe"))
                .collect::<Vec<_>>(),
        );
        let hist = e.latency().expect("tracking enabled");
        assert_eq!(hist.count(), 50);
        assert!(hist.quantile(0.5).unwrap() > 0);
        // Disabled by default.
        let e2 = Engine::new(EngineConfig::default());
        assert!(e2.latency().is_none());
    }

    #[test]
    fn parallel_backend_matches_serial_results() {
        let events: Vec<SharedEvent> = (0..100)
            .map(|i| {
                if i % 3 == 0 {
                    start(i, i * 1_000, "cmd.exe", "osql.exe")
                } else {
                    start(i, i * 1_000, "explorer.exe", "notepad.exe")
                }
            })
            .collect();
        let sources = [
            (
                "a",
                "proc p1[\"%cmd.exe\"] start proc p2 as e\nreturn p1, p2",
            ),
            (
                "b",
                "proc p1 start proc p2[\"%notepad.exe\"] as e\nreturn p1, p2",
            ),
        ];
        let mut serial = Engine::new(EngineConfig::default());
        let mut parallel = Engine::with_workers(EngineConfig::default(), 2);
        assert_eq!(serial.workers(), 0);
        assert_eq!(parallel.workers(), 2);
        for (name, src) in sources {
            serial.register(name, src).unwrap();
            parallel.register(name, src).unwrap();
        }
        let norm = |mut v: Vec<Alert>| {
            let mut keys: Vec<String> = v.drain(..).map(|a| format!("{}|{a}", a.query)).collect();
            keys.sort();
            keys
        };
        let serial_alerts = norm(serial.run(events.clone()));
        let parallel_alerts = norm(parallel.run(events));
        assert_eq!(serial_alerts, parallel_alerts);
        assert_eq!(
            parallel.scheduler_stats().events,
            serial.scheduler_stats().events
        );
        assert_eq!(parallel.query_stats().len(), 2);
        assert!(parallel.latency().is_none());
    }

    #[test]
    fn run_with_sink_streams_json() {
        let mut e = Engine::new(EngineConfig::default());
        e.register("q", "proc p start proc q as e\nreturn p, q")
            .unwrap();
        let mut sink = crate::sink::JsonLinesSink::new(Vec::new());
        let n = e.run_with_sink(vec![start(1, 10, "cmd.exe", "osql.exe")], &mut sink);
        assert_eq!(n, 1);
        let text = String::from_utf8(sink.into_inner()).unwrap();
        assert!(text.contains("\"query\":\"q\""), "{text}");
        assert!(text.contains("\"p\":\"cmd.exe\""), "{text}");
    }

    #[test]
    fn stats_and_errors_accessible() {
        let mut e = Engine::new(EngineConfig::default());
        e.register("q", "proc p start proc q as e\nreturn p")
            .unwrap();
        e.run(vec![start(1, 10, "a", "b")]);
        let stats = e.query_stats();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].1.alerts, 1);
        assert_eq!(e.error_count(), 0);
        assert!(e.recent_errors().is_empty());
    }
}
