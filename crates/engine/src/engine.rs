//! The engine facade: register SAQL query text, push a stream through, and
//! collect alerts — the programmatic equivalent of the demo's command-line
//! UI session.

use saql_lang::LangError;
use saql_stream::SharedEvent;

use crate::alert::Alert;
use crate::query::{QueryConfig, QueryStats, RunningQuery};
use crate::scheduler::{Scheduler, SchedulerStats};

/// Engine-wide configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineConfig {
    pub query: QueryConfig,
    /// Track per-event end-to-end latency (one clock read pair per event).
    pub record_latency: bool,
}

/// Handle to a registered query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QueryId(usize);

/// The SAQL anomaly query engine.
///
/// ```
/// use saql_engine::Engine;
/// use saql_model::event::EventBuilder;
/// use saql_model::ProcessInfo;
/// use std::sync::Arc;
///
/// let mut engine = Engine::new(Default::default());
/// engine
///     .register("osql-start", "proc p1[\"%cmd.exe\"] start proc p2[\"%osql.exe\"] as e1\nreturn p1, p2")
///     .unwrap();
/// let event = Arc::new(
///     EventBuilder::new(1, "db-server", 1_000)
///         .subject(ProcessInfo::new(10, "cmd.exe", "admin"))
///         .starts_process(ProcessInfo::new(11, "osql.exe", "admin"))
///         .build(),
/// );
/// let alerts = engine.process(&event);
/// assert_eq!(alerts.len(), 1);
/// assert_eq!(alerts[0].query, "osql-start");
/// ```
pub struct Engine {
    scheduler: Scheduler,
    names: Vec<String>,
    config: EngineConfig,
}

impl Engine {
    pub fn new(config: EngineConfig) -> Self {
        let mut scheduler = Scheduler::new();
        if config.record_latency {
            scheduler.enable_latency_tracking();
        }
        Engine {
            scheduler,
            names: Vec::new(),
            config,
        }
    }

    /// Per-event latency histogram (ns), when
    /// [`EngineConfig::record_latency`] is on.
    pub fn latency(&self) -> Option<&saql_analytics::Histogram> {
        self.scheduler.latency()
    }

    /// Parse, check, and register a query. Errors carry spans renderable
    /// against `source` (see [`LangError::render`]).
    pub fn register(&mut self, name: &str, source: &str) -> Result<QueryId, LangError> {
        let query = RunningQuery::compile(name, source, self.config.query)?;
        self.scheduler.add(query);
        self.names.push(name.to_string());
        Ok(QueryId(self.names.len() - 1))
    }

    /// Registered query names, in registration order.
    pub fn query_names(&self) -> &[String] {
        &self.names
    }

    /// Number of scheduler compatibility groups currently formed.
    pub fn group_count(&self) -> usize {
        self.scheduler.group_count()
    }

    pub fn scheduler_stats(&self) -> SchedulerStats {
        self.scheduler.stats()
    }

    /// Per-query execution stats, `(name, stats)` in arbitrary order.
    pub fn query_stats(&self) -> Vec<(String, QueryStats)> {
        self.scheduler
            .queries()
            .map(|q| (q.name().to_string(), q.stats()))
            .collect()
    }

    /// Total runtime errors across queries (the error reporter).
    pub fn error_count(&self) -> u64 {
        self.scheduler.queries().map(|q| q.errors().total()).sum()
    }

    /// Recent runtime error messages across queries.
    pub fn recent_errors(&self) -> Vec<String> {
        self.scheduler
            .queries()
            .flat_map(|q| {
                q.errors()
                    .recent()
                    .map(move |e| format!("{}: {e}", q.name()))
            })
            .collect()
    }

    /// Push one event through all registered queries.
    pub fn process(&mut self, event: &SharedEvent) -> Vec<Alert> {
        self.scheduler.process(event)
    }

    /// Drive an entire stream and flush; returns all alerts in emission
    /// order.
    pub fn run(&mut self, stream: impl IntoIterator<Item = SharedEvent>) -> Vec<Alert> {
        let mut alerts = Vec::new();
        for event in stream {
            alerts.extend(self.scheduler.process(&event));
        }
        alerts.extend(self.scheduler.finish());
        alerts
    }

    /// Drive a stream, delivering every alert to `sink` as it fires
    /// (the SIEM-forwarding path; see [`crate::sink`]). Returns the alert
    /// count.
    pub fn run_with_sink(
        &mut self,
        stream: impl IntoIterator<Item = SharedEvent>,
        sink: &mut dyn crate::sink::AlertSink,
    ) -> u64 {
        let mut n = 0u64;
        for event in stream {
            for alert in self.scheduler.process(&event) {
                n += 1;
                sink.deliver(&alert);
            }
        }
        for alert in self.scheduler.finish() {
            n += 1;
            sink.deliver(&alert);
        }
        sink.flush();
        n
    }

    /// Flush end-of-stream state (close remaining windows).
    pub fn finish(&mut self) -> Vec<Alert> {
        self.scheduler.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saql_model::event::EventBuilder;
    use saql_model::ProcessInfo;
    use std::sync::Arc;

    fn start(id: u64, ts: u64, parent: &str, child: &str) -> SharedEvent {
        Arc::new(
            EventBuilder::new(id, "h", ts)
                .subject(ProcessInfo::new(1, parent, "u"))
                .starts_process(ProcessInfo::new(2, child, "u"))
                .build(),
        )
    }

    #[test]
    fn register_and_run() {
        let mut e = Engine::new(EngineConfig::default());
        e.register(
            "q",
            "proc p1[\"%cmd.exe\"] start proc p2 as e1\nreturn p1, p2",
        )
        .unwrap();
        let alerts = e.run(vec![
            start(1, 10, "cmd.exe", "osql.exe"),
            start(2, 20, "explorer.exe", "notepad.exe"),
        ]);
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].get("p2"), Some("osql.exe"));
    }

    #[test]
    fn register_error_carries_span() {
        let mut e = Engine::new(EngineConfig::default());
        let err = e
            .register("bad", "proc p teleport proc q as e\nreturn p")
            .unwrap_err();
        assert!(err.message.contains("teleport"));
        assert_eq!(err.span.line, 1);
    }

    #[test]
    fn multiple_queries_grouped() {
        let mut e = Engine::new(EngineConfig::default());
        for i in 0..8 {
            e.register(&format!("q{i}"), "proc p start proc q as e\nreturn p")
                .unwrap();
        }
        assert_eq!(e.group_count(), 1);
        assert_eq!(e.query_names().len(), 8);
    }

    #[test]
    fn latency_tracking_records_per_event() {
        let mut e = Engine::new(EngineConfig {
            record_latency: true,
            ..Default::default()
        });
        e.register("q", "proc p start proc q as e\nreturn p")
            .unwrap();
        e.run(
            (0..50)
                .map(|i| start(i, i * 10, "a.exe", "b.exe"))
                .collect::<Vec<_>>(),
        );
        let hist = e.latency().expect("tracking enabled");
        assert_eq!(hist.count(), 50);
        assert!(hist.quantile(0.5).unwrap() > 0);
        // Disabled by default.
        let e2 = Engine::new(EngineConfig::default());
        assert!(e2.latency().is_none());
    }

    #[test]
    fn run_with_sink_streams_json() {
        let mut e = Engine::new(EngineConfig::default());
        e.register("q", "proc p start proc q as e\nreturn p, q")
            .unwrap();
        let mut sink = crate::sink::JsonLinesSink::new(Vec::new());
        let n = e.run_with_sink(vec![start(1, 10, "cmd.exe", "osql.exe")], &mut sink);
        assert_eq!(n, 1);
        let text = String::from_utf8(sink.into_inner()).unwrap();
        assert!(text.contains("\"query\":\"q\""), "{text}");
        assert!(text.contains("\"p\":\"cmd.exe\""), "{text}");
    }

    #[test]
    fn stats_and_errors_accessible() {
        let mut e = Engine::new(EngineConfig::default());
        e.register("q", "proc p start proc q as e\nreturn p")
            .unwrap();
        e.run(vec![start(1, 10, "a", "b")]);
        let stats = e.query_stats();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].1.alerts, 1);
        assert_eq!(e.error_count(), 0);
        assert!(e.recent_errors().is_empty());
    }
}
