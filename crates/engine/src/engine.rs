//! The engine facade: the query *control plane* over a running stream.
//!
//! [`Engine::register`] attaches a SAQL query to a live engine and returns a
//! [`QueryId`] handle; [`deregister`](Engine::deregister),
//! [`pause`](Engine::pause)/[`resume`](Engine::resume), and
//! [`subscribe`](Engine::subscribe) operate on that handle **mid-stream on
//! both backends** — the serial scheduler applies them immediately, the
//! parallel runtime ships them as control messages applied at batch
//! boundaries (see [`crate::runtime`]). This is the analyst-session model of
//! the paper: queries are submitted, tuned, and retired against a stream
//! that never stops.

use std::collections::HashMap;

use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use saql_lang::{LangError, Span};
use saql_stream::{EventBatch, SharedEvent, DEFAULT_BATCH_SIZE};

use crate::alert::Alert;
use crate::error::EngineError;
use crate::query::{QueryConfig, QueryStats, RunningQuery};
use crate::runtime::{ParallelConfig, ParallelEngine};
use crate::scheduler::{Scheduler, SchedulerStats};

pub use crate::query::QueryId;

/// Engine-wide configuration.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    pub query: QueryConfig,
    /// Track per-event end-to-end latency (one clock read pair per event).
    /// On the parallel backend every shard records its own histogram and
    /// they merge at [`Engine::finish`] (forces the per-event execution
    /// path on the shards).
    pub record_latency: bool,
    /// Worker threads for the parallel sharded runtime. `0` (the default)
    /// runs the serial scheduler on the calling thread; any other value
    /// shards scheduler groups across that many workers (see
    /// [`crate::runtime`]).
    pub workers: usize,
    /// Alerts buffered per [`Engine::subscribe`] channel before further
    /// alerts for that subscriber are dropped (and counted in
    /// [`Engine::dropped_alerts`]). Zero clamps to one.
    pub subscription_backlog: usize,
    /// Events per execution batch — the **one knob** governing batch
    /// sizing end to end: the session pump chunks merged events into
    /// [`EventBatch`]es of this size for [`Engine::process_batch`], and the
    /// parallel runtime dispatches worker batches of the same size. Zero
    /// clamps to one.
    pub batch_size: usize,
    /// Key-partitioned execution on the parallel backend: partitionable
    /// queries (state keyed purely by group key) are replicated across all
    /// shards, each replica owning the groups whose key tuple hashes to
    /// its shard — one heavy query's work splits ~1/N per worker. Ignored
    /// on the serial backend (`workers == 0`). Off by default; see
    /// [`crate::runtime::ParallelConfig::key_partitioning`].
    pub key_partitioning: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            query: QueryConfig::default(),
            record_latency: false,
            workers: 0,
            subscription_backlog: 1024,
            batch_size: DEFAULT_BATCH_SIZE,
            key_partitioning: false,
        }
    }
}

/// Lifecycle state of a registered query, tracked by the facade.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum QueryStatus {
    Active,
    Paused,
    Removed,
}

/// One registry row; the row index is the query's [`QueryId`].
struct QueryEntry {
    name: String,
    /// Retained SAQL source text, so checkpoints can recompile the exact
    /// plan on [`Engine::resume_from`].
    source: String,
    status: QueryStatus,
    /// Upstream query name when this row is a pipeline stage (`from query
    /// NAME`) — deregistration of an upstream with live dependents is
    /// refused.
    input: Option<String>,
}

/// The SAQL anomaly query engine.
///
/// ```
/// use saql_engine::Engine;
/// use saql_model::event::EventBuilder;
/// use saql_model::ProcessInfo;
/// use std::sync::Arc;
///
/// let mut engine = Engine::new(Default::default());
/// engine
///     .register("osql-start", "proc p1[\"%cmd.exe\"] start proc p2[\"%osql.exe\"] as e1\nreturn p1, p2")
///     .unwrap();
/// let event = Arc::new(
///     EventBuilder::new(1, "db-server", 1_000)
///         .subject(ProcessInfo::new(10, "cmd.exe", "admin"))
///         .starts_process(ProcessInfo::new(11, "osql.exe", "admin"))
///         .build(),
/// );
/// let alerts = engine.process(&event).unwrap();
/// assert_eq!(alerts.len(), 1);
/// assert_eq!(alerts[0].query, "osql-start");
/// ```
pub struct Engine {
    backend: Backend,
    /// Registry of every query ever registered; row index == `QueryId`.
    /// Ids are never reused, so deregistered rows stay as tombstones.
    registry: Vec<QueryEntry>,
    /// Per-query subscription routing table.
    subscriptions: HashMap<QueryId, Vec<Sender<Alert>>>,
    /// Subscriptions of deregistered queries awaiting closure: on the
    /// parallel backend the final window flush arrives asynchronously, so
    /// the channel must stay routable until [`finish`](Self::finish) has
    /// delivered everything. (Serial deregistration closes immediately.)
    retired_subscriptions: Vec<QueryId>,
    /// Alerts dropped because a subscription channel was full.
    subscription_drops: u64,
    /// Subscription drops attributed to the emitting query.
    subscription_drops_by_query: HashMap<QueryId, u64>,
    /// Alerts produced by control-plane operations (e.g. the window flush
    /// of a deregistered query) waiting to be returned by the next
    /// [`process`](Self::process)/[`finish`](Self::finish) call. Already
    /// routed to subscribers.
    pending: Vec<Alert>,
    /// Whether [`finish`](Self::finish) has run. The serial backend stays
    /// fully operable afterwards; the parallel backend's workers are gone,
    /// so its control plane rejects further changes.
    finished: bool,
    /// Facade-level observer invoked for every alert as it is routed —
    /// the metrics tap serving layers hang per-query counters and
    /// delivery-latency histograms on. See [`set_alert_hook`](Self::set_alert_hook).
    alert_hook: Option<AlertHook>,
    config: EngineConfig,
}

/// Observer installed with [`Engine::set_alert_hook`]: called once per
/// alert, in emission order, on the engine thread.
pub type AlertHook = Box<dyn FnMut(&Alert) + Send>;

/// Execution strategy behind the facade: the single-threaded scheduler, or
/// the sharded multi-threaded runtime.
enum Backend {
    Serial(Scheduler),
    // Boxed: the runtime's coordinator state dwarfs the serial scheduler.
    Parallel(Box<ParallelEngine>),
}

impl Engine {
    pub fn new(config: EngineConfig) -> Self {
        let backend = if config.workers == 0 {
            let mut scheduler = Scheduler::new();
            if config.record_latency {
                scheduler.enable_latency_tracking();
            }
            Backend::Serial(scheduler)
        } else {
            Backend::Parallel(Box::new(ParallelEngine::new(
                ParallelConfig {
                    batch_size: config.batch_size.max(1),
                    record_latency: config.record_latency,
                    key_partitioning: config.key_partitioning,
                    ..ParallelConfig::with_workers(config.workers)
                },
                config.query,
            )))
        };
        Engine {
            backend,
            registry: Vec::new(),
            subscriptions: HashMap::new(),
            retired_subscriptions: Vec::new(),
            subscription_drops: 0,
            subscription_drops_by_query: HashMap::new(),
            pending: Vec::new(),
            finished: false,
            alert_hook: None,
            config,
        }
    }

    /// Install an observer called once per alert, in emission order, on the
    /// engine thread, as alerts are routed to subscribers (data-plane
    /// batches, control-plane flushes, and [`finish`](Self::finish) alike).
    /// At most one hook is live; installing replaces the previous one, and
    /// `clear_alert_hook` removes it. The hook runs regardless of whether
    /// any subscription exists — it observes, it cannot veto or mutate.
    pub fn set_alert_hook(&mut self, hook: AlertHook) {
        self.alert_hook = Some(hook);
    }

    /// Remove the alert observer installed by
    /// [`set_alert_hook`](Self::set_alert_hook).
    pub fn clear_alert_hook(&mut self) {
        self.alert_hook = None;
    }

    /// An engine on the parallel sharded runtime with `workers` threads
    /// (`0` falls back to serial execution).
    pub fn with_workers(config: EngineConfig, workers: usize) -> Self {
        Engine::new(EngineConfig { workers, ..config })
    }

    /// Worker threads in use (`0` = serial execution on the caller).
    pub fn workers(&self) -> usize {
        match &self.backend {
            Backend::Serial(_) => 0,
            Backend::Parallel(runtime) => runtime.workers(),
        }
    }

    /// Per-event latency histogram (ns), when
    /// [`EngineConfig::record_latency`] is on.
    ///
    /// Serial execution exposes it live; on the parallel backend each shard
    /// records the *processing* latency of its own slice (shards overlap in
    /// wall-clock time, so the merged histogram measures per-shard work,
    /// not end-to-end delivery) and the merge surfaces after
    /// [`finish`](Self::finish).
    pub fn latency(&self) -> Option<&saql_analytics::Histogram> {
        match &self.backend {
            Backend::Serial(scheduler) => scheduler.latency(),
            Backend::Parallel(runtime) => runtime.latency(),
        }
    }

    // ------------------------------------------------------------------
    // Control plane
    // ------------------------------------------------------------------

    /// Parse, check, and attach a query to the engine — before the first
    /// event or live, mid-stream. Returns the [`QueryId`] handle for the
    /// other control-plane calls ([`deregister`](Self::deregister),
    /// [`pause`](Self::pause), [`resume`](Self::resume),
    /// [`subscribe`](Self::subscribe)). Compile errors carry spans
    /// renderable against `source` (see [`LangError::render`]); registering
    /// a name that is already live is rejected the same way, so
    /// [`query_stats`](Self::query_stats) names stay unambiguous.
    ///
    /// A live attach/detach session:
    ///
    /// ```
    /// use saql_engine::{Engine, EngineConfig};
    /// use saql_model::event::EventBuilder;
    /// use saql_model::ProcessInfo;
    /// use std::sync::Arc;
    ///
    /// let start = |id: u64, ts: u64, parent: &str, child: &str| Arc::new(
    ///     EventBuilder::new(id, "host", ts)
    ///         .subject(ProcessInfo::new(1, parent, "u"))
    ///         .starts_process(ProcessInfo::new(2, child, "u"))
    ///         .build(),
    /// );
    /// let mut engine = Engine::new(EngineConfig::default());
    ///
    /// // Attach a query and subscribe to exactly its alerts.
    /// let id = engine
    ///     .register("cmd-watch", "proc p1[\"%cmd.exe\"] start proc p2 as e\nreturn p1, p2")
    ///     .unwrap();
    /// let inbox = engine.subscribe(id).unwrap();
    /// engine.process(&start(1, 10, "cmd.exe", "osql.exe")).unwrap();
    /// assert_eq!(inbox.try_recv().unwrap().query, "cmd-watch");
    ///
    /// // Live names are exclusive while registered...
    /// assert!(engine.register("cmd-watch", "proc p start proc q as e\nreturn p").is_err());
    ///
    /// // ...detach mid-stream and the name frees up; the stream never stops.
    /// engine.deregister(id).unwrap();
    /// let id2 = engine
    ///     .register("cmd-watch", "proc p start proc q as e\nreturn p")
    ///     .unwrap();
    /// assert_ne!(id, id2, "ids are never reused");
    /// let alerts = engine.process(&start(2, 20, "cmd.exe", "calc.exe")).unwrap();
    /// assert_eq!(alerts.len(), 1);
    /// assert_eq!(alerts[0].query_id, id2);
    /// ```
    pub fn register(&mut self, name: &str, source: &str) -> Result<QueryId, LangError> {
        if self.parallel_finished() {
            return Err(LangError::semantic(
                EngineError::EngineFinished.to_string(),
                Span::default(),
            ));
        }
        if self
            .registry
            .iter()
            .any(|e| e.status != QueryStatus::Removed && e.name == name)
        {
            return Err(LangError::semantic(
                format!(
                    "query name `{name}` is already registered on this engine \
                     (deregister it first, or pick another name)"
                ),
                Span::default(),
            ));
        }
        let mut query = RunningQuery::compile(name, source, self.config.query)?;
        if let Some(up) = query.pipeline_input() {
            if self.find(up).is_none() {
                let span = query.pipeline_input_span().unwrap_or_default();
                return Err(LangError::semantic(
                    format!(
                        "`from query {up}` references no registered query \
                         (register the upstream stage first)"
                    ),
                    span,
                ));
            }
        }
        let input = query.pipeline_input().map(str::to_string);
        let id = QueryId::new(self.registry.len());
        query.set_id(id);
        let drained = match &mut self.backend {
            Backend::Serial(scheduler) => {
                scheduler.add(query);
                Vec::new()
            }
            // `parallel_finished` was checked above, so the runtime is live.
            Backend::Parallel(runtime) => runtime
                .add(query)
                .expect("runtime is live: finished engines reject register"),
        };
        self.absorb(drained);
        self.registry.push(QueryEntry {
            name: name.to_string(),
            source: source.to_string(),
            status: QueryStatus::Active,
            input,
        });
        Ok(id)
    }

    /// Detach a query from the engine at the current stream position. Its
    /// open windows are flushed — those final alerts surface through the
    /// normal delivery path (the next [`process`](Self::process) /
    /// [`finish`](Self::finish) return, and any subscribers) — then the
    /// query, its stats, and its compatibility-group membership are gone.
    /// The id is retired, never reused; the name becomes available again.
    pub fn deregister(&mut self, id: QueryId) -> Result<(), EngineError> {
        self.expect_mutable()?;
        self.expect_live(id)?;
        let name = &self.registry[id.index()].name;
        let dependents: Vec<&str> = self
            .registry
            .iter()
            .filter(|e| e.status != QueryStatus::Removed && e.input.as_deref() == Some(name))
            .map(|e| e.name.as_str())
            .collect();
        if !dependents.is_empty() {
            return Err(EngineError::PipelineDependents {
                query: name.clone(),
                dependents: dependents.iter().map(|d| d.to_string()).collect(),
            });
        }
        let serial = matches!(self.backend, Backend::Serial(_));
        let drained = match &mut self.backend {
            Backend::Serial(scheduler) => {
                let mut query = scheduler
                    .remove(id)
                    .expect("facade registry and scheduler agree on live ids");
                query.finish()
            }
            Backend::Parallel(runtime) => runtime.remove(id)?,
        };
        self.absorb(drained);
        self.registry[id.index()].status = QueryStatus::Removed;
        // Close the query's subscriptions once the final flush is routed:
        // serial flushes synchronously (routed by `absorb` just above); the
        // parallel flush arrives asynchronously, so its channels stay
        // routable until `finish` has delivered everything.
        if serial {
            self.subscriptions.remove(&id);
        } else {
            self.retired_subscriptions.push(id);
        }
        Ok(())
    }

    /// Flush one live query's open windows at the current stream position
    /// without deregistering it — the pipeline layered drain: upstream
    /// stages flush first so their final window alerts can still feed
    /// dependents before *those* flush in turn. The flushed alerts are
    /// returned, and also routed to subscribers and buffered for the next
    /// data-plane call like any control-plane alert.
    pub fn flush_query(&mut self, id: QueryId) -> Result<Vec<Alert>, EngineError> {
        self.expect_mutable()?;
        self.expect_live(id)?;
        let flushed = match &mut self.backend {
            Backend::Serial(scheduler) => scheduler
                .flush_member(id)
                .expect("facade registry and scheduler agree on live ids"),
            Backend::Parallel(runtime) => {
                let (flushed, drained) = runtime.flush_query(id)?;
                self.absorb(drained);
                flushed
            }
        };
        self.absorb(flushed.clone());
        Ok(flushed)
    }

    /// Synchronize with the data plane: when this returns, every event fed
    /// so far has been fully processed and every alert it produced has been
    /// routed (to subscribers) and buffered for the next data-plane call.
    /// The serial backend is always synchronous, so this is a no-op there;
    /// the parallel backend runs a worker barrier. The pipeline wiring
    /// syncs before punctuating a derived stream, so a punctuation can
    /// never outrun an upstream alert still being computed on a worker.
    pub fn sync(&mut self) -> Result<(), EngineError> {
        self.expect_mutable()?;
        let drained = match &mut self.backend {
            Backend::Serial(_) => Vec::new(),
            Backend::Parallel(runtime) => runtime.sync()?,
        };
        self.absorb(drained);
        Ok(())
    }

    /// Detach a query from the stream without removing it: while paused it
    /// sees no events and no time, and emits nothing. Idempotent.
    pub fn pause(&mut self, id: QueryId) -> Result<(), EngineError> {
        self.expect_mutable()?;
        self.expect_live(id)?;
        let drained = match &mut self.backend {
            Backend::Serial(scheduler) => {
                scheduler.pause(id);
                Vec::new()
            }
            Backend::Parallel(runtime) => runtime.pause(id)?,
        };
        self.absorb(drained);
        self.registry[id.index()].status = QueryStatus::Paused;
        Ok(())
    }

    /// Re-attach a paused query at the current stream position. Events
    /// that arrived during the pause are gone for this query; stream time
    /// catches up on the next event. Idempotent.
    pub fn resume(&mut self, id: QueryId) -> Result<(), EngineError> {
        self.expect_mutable()?;
        self.expect_live(id)?;
        let drained = match &mut self.backend {
            Backend::Serial(scheduler) => {
                scheduler.resume(id);
                Vec::new()
            }
            Backend::Parallel(runtime) => runtime.resume(id)?,
        };
        self.absorb(drained);
        self.registry[id.index()].status = QueryStatus::Active;
        Ok(())
    }

    /// Open a per-query alert channel: the receiver gets a clone of every
    /// alert this query emits from now on (including the final window
    /// flush if the query is later deregistered), and nothing from any
    /// other query. Alerts still flow through the normal
    /// [`process`](Self::process)/[`run`](Self::run) returns — subscribers
    /// are an additional fan-out, the per-user delivery path. The channel
    /// closes (the receiver disconnects) once its query is deregistered
    /// and the flush is delivered — immediately on the serial backend, at
    /// [`finish`](Self::finish) on the parallel one.
    ///
    /// The channel buffers [`EngineConfig::subscription_backlog`] alerts; a
    /// full channel drops further alerts for that subscriber (counted in
    /// [`dropped_alerts`](Self::dropped_alerts)) rather than stalling the
    /// stream. Dropping the receiver unsubscribes.
    pub fn subscribe(&mut self, id: QueryId) -> Result<Receiver<Alert>, EngineError> {
        self.subscribe_with_capacity(id, self.config.subscription_backlog)
    }

    /// [`subscribe`](Self::subscribe) with an explicit channel capacity
    /// (zero clamps to one).
    pub fn subscribe_with_capacity(
        &mut self,
        id: QueryId,
        capacity: usize,
    ) -> Result<Receiver<Alert>, EngineError> {
        // A subscription opened after the parallel drain could never close
        // or deliver; reject it rather than hand out a dead channel.
        self.expect_mutable()?;
        self.expect_live(id)?;
        let (tx, rx) = bounded(capacity.max(1));
        self.subscriptions.entry(id).or_default().push(tx);
        Ok(rx)
    }

    /// Whether this id names a live (active or paused) query.
    pub fn contains(&self, id: QueryId) -> bool {
        self.registry
            .get(id.index())
            .is_some_and(|e| e.status != QueryStatus::Removed)
    }

    /// Whether this live query is currently paused.
    pub fn is_paused(&self, id: QueryId) -> bool {
        self.registry
            .get(id.index())
            .is_some_and(|e| e.status == QueryStatus::Paused)
    }

    /// The live query registered under `name`, if any.
    pub fn find(&self, name: &str) -> Option<QueryId> {
        self.registry
            .iter()
            .position(|e| e.status != QueryStatus::Removed && e.name == name)
            .map(QueryId::new)
    }

    /// Live query names, in registration order.
    pub fn query_names(&self) -> Vec<String> {
        self.registry
            .iter()
            .filter(|e| e.status != QueryStatus::Removed)
            .map(|e| e.name.clone())
            .collect()
    }

    /// The name of a live query.
    pub fn name_of(&self, id: QueryId) -> Option<&str> {
        self.registry
            .get(id.index())
            .filter(|e| e.status != QueryStatus::Removed)
            .map(|e| e.name.as_str())
    }

    /// The engine-wide configuration this engine was built with.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The upstream a live query consumes (`from query NAME`), if it is a
    /// pipeline stage.
    pub fn input_of(&self, id: QueryId) -> Option<&str> {
        self.registry
            .get(id.index())
            .filter(|e| e.status != QueryStatus::Removed)
            .and_then(|e| e.input.as_deref())
    }

    /// Live pipeline edges as `(downstream, upstream)` ids, in
    /// registration order — the topology the session-level pipeline
    /// wiring (and `saql explain`) reconstructs after a resume.
    pub fn pipeline_edges(&self) -> Vec<(QueryId, QueryId)> {
        self.registry
            .iter()
            .enumerate()
            .filter(|(_, e)| e.status != QueryStatus::Removed)
            .filter_map(|(i, e)| {
                let up = e.input.as_deref()?;
                Some((QueryId::new(i), self.find(up)?))
            })
            .collect()
    }

    /// Live query ids, in registration order.
    pub fn query_ids(&self) -> Vec<QueryId> {
        self.registry
            .iter()
            .enumerate()
            .filter(|(_, e)| e.status != QueryStatus::Removed)
            .map(|(i, _)| QueryId::new(i))
            .collect()
    }

    fn expect_live(&self, id: QueryId) -> Result<(), EngineError> {
        if self.contains(id) {
            Ok(())
        } else {
            Err(EngineError::UnknownQuery(id))
        }
    }

    /// Whether the deployment can still change: always on the serial
    /// backend, and until [`finish`](Self::finish) on the parallel one.
    fn parallel_finished(&self) -> bool {
        self.finished && matches!(self.backend, Backend::Parallel(_))
    }

    fn expect_mutable(&self) -> Result<(), EngineError> {
        if self.parallel_finished() {
            Err(EngineError::EngineFinished)
        } else {
            Ok(())
        }
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// Number of scheduler compatibility groups currently formed.
    pub fn group_count(&self) -> usize {
        match &self.backend {
            Backend::Serial(scheduler) => scheduler.group_count(),
            Backend::Parallel(runtime) => runtime.group_count(),
        }
    }

    /// Execution counters. In parallel mode these are the merged per-shard
    /// counters and are complete once [`finish`](Self::finish) ran.
    pub fn scheduler_stats(&self) -> SchedulerStats {
        match &self.backend {
            Backend::Serial(scheduler) => scheduler.stats(),
            Backend::Parallel(runtime) => runtime.stats(),
        }
    }

    /// Per-shard `(shard id, counters)` — the work-partition view of the
    /// parallel runtime, available after [`finish`](Self::finish). Serial
    /// execution has no shards, so this is empty there (use
    /// [`scheduler_stats`](Self::scheduler_stats)).
    pub fn shard_stats(&self) -> Vec<(usize, SchedulerStats)> {
        match &self.backend {
            Backend::Serial(_) => Vec::new(),
            Backend::Parallel(runtime) => runtime.shard_stats(),
        }
    }

    /// Alerts dropped on their way to a consumer: full per-query
    /// subscription channels (both backends, counted live), plus parallel
    /// worker sinks whose receiver hung up (complete after
    /// [`finish`](Self::finish); 0 in normal runs).
    pub fn dropped_alerts(&self) -> u64 {
        let backend = match &self.backend {
            Backend::Serial(_) => 0,
            Backend::Parallel(runtime) => runtime.dropped_alerts(),
        };
        backend + self.subscription_drops
    }

    /// [`dropped_alerts`](Self::dropped_alerts) attributed to the emitting
    /// query, `(id, drops)` sorted by id. Subscription-channel drops count
    /// live on both backends; parallel worker-sink drops join after
    /// [`finish`](Self::finish). Queries with no drops are absent.
    pub fn dropped_alerts_by_query(&self) -> Vec<(QueryId, u64)> {
        let mut merged: HashMap<QueryId, u64> = self.subscription_drops_by_query.clone();
        if let Backend::Parallel(runtime) = &self.backend {
            for (id, n) in runtime.dropped_alerts_by_query() {
                *merged.entry(id).or_insert(0) += n;
            }
        }
        let mut out: Vec<(QueryId, u64)> = merged.into_iter().collect();
        out.sort_by_key(|(id, _)| id.index());
        out
    }

    /// Per-query execution stats, `(name, stats)` in arbitrary order, for
    /// live queries (deregistered queries leave with their stats). In
    /// parallel mode the shards own the queries while the stream is live,
    /// so stats surface after [`finish`](Self::finish).
    pub fn query_stats(&self) -> Vec<(String, QueryStats)> {
        match &self.backend {
            Backend::Serial(scheduler) => scheduler
                .queries()
                .map(|q| (q.name().to_string(), q.stats()))
                .collect(),
            Backend::Parallel(runtime) => runtime.query_stats(),
        }
    }

    /// Total runtime errors across queries (the error reporter).
    pub fn error_count(&self) -> u64 {
        match &self.backend {
            Backend::Serial(scheduler) => scheduler.queries().map(|q| q.errors().total()).sum(),
            Backend::Parallel(runtime) => runtime.error_count(),
        }
    }

    /// Recent runtime error messages across queries.
    pub fn recent_errors(&self) -> Vec<String> {
        match &self.backend {
            Backend::Serial(scheduler) => scheduler
                .queries()
                .flat_map(|q| {
                    q.errors()
                        .recent()
                        .map(move |e| format!("{}: {e}", q.name()))
                })
                .collect(),
            Backend::Parallel(runtime) => runtime.recent_errors(),
        }
    }

    // ------------------------------------------------------------------
    // Checkpoint / resume
    // ------------------------------------------------------------------

    /// Capture the engine's full dynamic state at the current stream
    /// position: every registered query's window/group/invariant/
    /// partial-match state plus its name, source text, and lifecycle
    /// status (tombstones included, so resumed [`QueryId`]s align with the
    /// original run's). `offset` is the position of the next unprocessed
    /// event in the durable store; `frontier` is the session's merge
    /// frontier at that position — both are carried verbatim so
    /// [`resume_from`](Self::resume_from) can reattach the store exactly
    /// where this run left off.
    ///
    /// Must be taken at a batch boundary (between `process*` calls —
    /// [`crate::RunSession`] checkpoints there). On the parallel backend
    /// the partial dispatch batch is flushed and the snapshot request rides
    /// the shard channels in-band, so the captured state is identical to
    /// the serial scheduler's at the same position. Alerts arriving during
    /// the barrier surface on the next data-plane call, as with any
    /// control-plane operation.
    ///
    /// Subscriptions are not part of a checkpoint (channels cannot outlive
    /// the process); resumed engines start with none.
    pub fn checkpoint(
        &mut self,
        offset: u64,
        frontier: saql_model::Timestamp,
    ) -> Result<crate::checkpoint::Checkpoint, EngineError> {
        use crate::checkpoint::{Checkpoint, CheckpointRow, RowStatus};
        self.expect_mutable()?;
        let (snaps, drained) = match &mut self.backend {
            Backend::Serial(scheduler) => (scheduler.query_snapshots(), Vec::new()),
            Backend::Parallel(runtime) => runtime.query_snapshots()?,
        };
        self.absorb(drained);
        let mut by_id: HashMap<usize, crate::query::QuerySnapshot> =
            snaps.into_iter().map(|(id, s)| (id.index(), s)).collect();
        let mut rows = Vec::with_capacity(self.registry.len());
        for (i, entry) in self.registry.iter().enumerate() {
            let (status, snapshot) = match entry.status {
                QueryStatus::Removed => (RowStatus::Removed, None),
                live => {
                    let snap = by_id.remove(&i).ok_or_else(|| {
                        EngineError::Checkpoint(format!(
                            "state for query `{}` is missing from the backend \
                             (a shard worker died?)",
                            entry.name
                        ))
                    })?;
                    let status = if live == QueryStatus::Paused {
                        RowStatus::Paused
                    } else {
                        RowStatus::Active
                    };
                    (status, Some(snap))
                }
            };
            rows.push(CheckpointRow {
                name: entry.name.clone(),
                source: entry.source.clone(),
                status,
                snapshot,
            });
        }
        Ok(Checkpoint {
            offset,
            frontier,
            config: self.config.query,
            rows,
            // Pipeline adapter positions are session-level state: the
            // wiring layer stamps them before the checkpoint is written.
            adapters: Vec::new(),
        })
    }

    /// Reconstruct an engine from a [`checkpoint`](Self::checkpoint):
    /// every query is recompiled from its retained source under the
    /// checkpoint's [`QueryConfig`] (plan identity), its dynamic state is
    /// restored exactly, and its [`QueryId`] is its original registry
    /// index (tombstones are replayed so ids align). Feeding the resumed
    /// engine the event suffix from the checkpoint's `offset` yields the
    /// same alerts the uninterrupted run would have produced from that
    /// position — ordered on the serial backend, as a multiset on the
    /// parallel one.
    ///
    /// `config.query` is ignored in favor of the checkpoint's (changing
    /// execution semantics mid-resume would fork the alert stream); the
    /// backend choice (`workers`), batch size, and other knobs are free.
    pub fn resume_from(
        checkpoint: crate::checkpoint::Checkpoint,
        config: EngineConfig,
    ) -> Result<Engine, EngineError> {
        use crate::checkpoint::RowStatus;
        let config = EngineConfig {
            query: checkpoint.config,
            ..config
        };
        let mut engine = Engine::new(config);
        for (i, row) in checkpoint.rows.into_iter().enumerate() {
            let status = match row.status {
                RowStatus::Removed => QueryStatus::Removed,
                RowStatus::Paused => QueryStatus::Paused,
                RowStatus::Active => QueryStatus::Active,
            };
            let mut input = None;
            if status != QueryStatus::Removed {
                let mut query = RunningQuery::compile(&row.name, &row.source, checkpoint.config)
                    .map_err(|e| {
                        EngineError::Checkpoint(format!(
                            "query `{}` no longer compiles: {}",
                            row.name, e.message
                        ))
                    })?;
                input = query.pipeline_input().map(str::to_string);
                query.set_id(QueryId::new(i));
                let snap = row.snapshot.ok_or_else(|| {
                    EngineError::Checkpoint(format!(
                        "checkpoint row for live query `{}` carries no state",
                        row.name
                    ))
                })?;
                query.restore(snap);
                if status == QueryStatus::Paused {
                    query.set_paused(true);
                }
                match &mut engine.backend {
                    Backend::Serial(scheduler) => {
                        scheduler.add(query);
                    }
                    Backend::Parallel(runtime) => {
                        runtime
                            .add(query)
                            .expect("fresh runtime: workers not started, add cannot fail");
                    }
                }
            }
            engine.registry.push(QueryEntry {
                name: row.name,
                source: row.source,
                status,
                input,
            });
        }
        Ok(engine)
    }

    // ------------------------------------------------------------------
    // Data plane
    // ------------------------------------------------------------------

    /// Push one event through all registered queries. Serial execution
    /// returns this event's alerts synchronously; the parallel runtime
    /// returns alerts as they arrive from the workers (everything is
    /// delivered by [`finish`](Self::finish)). Alerts buffered by
    /// control-plane operations (a deregistration's window flush) are
    /// prepended.
    ///
    /// Returns [`EngineError::EngineFinished`] on a finished *parallel*
    /// engine (its workers are gone, so the event would be silently lost);
    /// the serial backend stays operable after [`finish`](Self::finish)
    /// and never fails here.
    pub fn process(&mut self, event: &SharedEvent) -> Result<Vec<Alert>, EngineError> {
        let fresh = match &mut self.backend {
            Backend::Serial(scheduler) => scheduler.process(event),
            Backend::Parallel(runtime) => runtime.process(event)?,
        };
        self.route(&fresh);
        Ok(self.drain_pending(fresh))
    }

    /// Push a run of consecutive events through all registered queries
    /// batch-at-a-time. On the serial backend this is the vectorized path
    /// (see [`crate::scheduler::Scheduler::process_batch`]): predicate
    /// columns are computed once per batch and shared within compatibility
    /// groups, and the alert stream is identical — ordered — to feeding
    /// the same events through [`process`](Self::process) one at a time.
    /// The parallel runtime re-batches internally at shard boundaries, so
    /// events are forwarded to it individually; shards then run the same
    /// vectorized path per dispatch batch.
    ///
    /// Same [`EngineError::EngineFinished`] contract as
    /// [`process`](Self::process).
    pub fn process_batch(&mut self, batch: &EventBatch) -> Result<Vec<Alert>, EngineError> {
        let fresh = match &mut self.backend {
            Backend::Serial(scheduler) => scheduler.process_batch(batch),
            Backend::Parallel(runtime) => {
                let mut alerts = Vec::new();
                for event in batch {
                    alerts.extend(runtime.process(event)?);
                }
                alerts
            }
        };
        self.route(&fresh);
        Ok(self.drain_pending(fresh))
    }

    /// Events per execution batch ([`EngineConfig::batch_size`], clamped to
    /// at least one) — the chunk size the session pump feeds
    /// [`process_batch`](Self::process_batch) with.
    pub fn batch_size(&self) -> usize {
        self.config.batch_size.max(1)
    }

    /// Drive an entire stream and flush; returns all alerts. Serial
    /// execution yields emission order; parallel yields the same alerts as
    /// a multiset, interleaved across shards.
    ///
    /// A thin wrapper over [`session`](Self::session): one
    /// [arrival-order](saql_stream::Lateness::ArrivalOrder) iterator source,
    /// which passes the caller's stream through untouched (no reordering,
    /// no late drops). Multi-source or live ingestion goes through
    /// [`Engine::session`] directly.
    ///
    /// Like [`process`](Self::process), returns
    /// [`EngineError::EngineFinished`] on a finished *parallel* engine —
    /// its workers are gone, so the stream would be silently lost.
    pub fn run(
        &mut self,
        stream: impl IntoIterator<Item = SharedEvent>,
    ) -> Result<Vec<Alert>, EngineError> {
        self.expect_mutable()?;
        let mut session = self.session();
        session.attach_with(
            saql_stream::source::IterSource::new("run", stream),
            saql_stream::Lateness::ArrivalOrder,
        );
        Ok(session.drain())
    }

    /// Drive a stream, delivering every alert to `sink` as it fires
    /// (the SIEM-forwarding path; see [`crate::sink`]). Per-query
    /// subscribers still receive their copies. Returns the alert count.
    ///
    /// Like [`run`](Self::run), a thin wrapper over a single-source
    /// arrival-order [`session`](Self::session), with the same
    /// [`EngineError::EngineFinished`] contract.
    pub fn run_with_sink(
        &mut self,
        stream: impl IntoIterator<Item = SharedEvent>,
        sink: &mut dyn crate::sink::AlertSink,
    ) -> Result<u64, EngineError> {
        self.expect_mutable()?;
        let mut session = self.session();
        session.attach_with(
            saql_stream::source::IterSource::new("run", stream),
            saql_stream::Lateness::ArrivalOrder,
        );
        Ok(session.drain_into(sink))
    }

    /// Flush end-of-stream state (close remaining windows; in parallel
    /// mode, drain and join the workers).
    pub fn finish(&mut self) -> Vec<Alert> {
        let fresh = match &mut self.backend {
            Backend::Serial(scheduler) => scheduler.finish(),
            Backend::Parallel(runtime) => runtime.finish(),
        };
        self.finished = true;
        self.route(&fresh);
        // Every deregistered query's flush is now delivered: close the
        // subscriptions that were kept routable for it.
        for id in self.retired_subscriptions.drain(..) {
            self.subscriptions.remove(&id);
        }
        self.drain_pending(fresh)
    }

    /// Buffer control-plane alerts for the next data-plane return, routing
    /// them to subscribers first.
    fn absorb(&mut self, alerts: Vec<Alert>) {
        if alerts.is_empty() {
            return;
        }
        self.route(&alerts);
        self.pending.extend(alerts);
    }

    /// Prepend buffered control-plane alerts to a data-plane batch.
    fn drain_pending(&mut self, fresh: Vec<Alert>) -> Vec<Alert> {
        if self.pending.is_empty() {
            return fresh;
        }
        let mut alerts = std::mem::take(&mut self.pending);
        alerts.extend(fresh);
        alerts
    }

    /// Fan alerts out to their queries' subscribers. A full channel drops
    /// (and counts) rather than stalling the stream; a disconnected
    /// receiver unsubscribes.
    fn route(&mut self, alerts: &[Alert]) {
        if let Some(hook) = self.alert_hook.as_mut() {
            for alert in alerts {
                hook(alert);
            }
        }
        if self.subscriptions.is_empty() {
            return;
        }
        let mut dropped = 0u64;
        let mut pruned = false;
        for alert in alerts {
            if let Some(senders) = self.subscriptions.get_mut(&alert.query_id) {
                let mut lost = 0u64;
                senders.retain(|tx| match tx.try_send(alert.clone()) {
                    Ok(()) => true,
                    Err(TrySendError::Full(_)) => {
                        lost += 1;
                        true
                    }
                    Err(TrySendError::Disconnected(_)) => {
                        pruned = true;
                        false
                    }
                });
                if lost > 0 {
                    dropped += lost;
                    *self
                        .subscription_drops_by_query
                        .entry(alert.query_id)
                        .or_insert(0) += lost;
                }
            }
        }
        if pruned {
            // Keep the no-subscriber fast path honest: a query whose every
            // receiver hung up should cost nothing again.
            self.subscriptions.retain(|_, senders| !senders.is_empty());
        }
        self.subscription_drops += dropped;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saql_model::event::EventBuilder;
    use saql_model::ProcessInfo;
    use std::sync::Arc;

    fn start(id: u64, ts: u64, parent: &str, child: &str) -> SharedEvent {
        Arc::new(
            EventBuilder::new(id, "h", ts)
                .subject(ProcessInfo::new(1, parent, "u"))
                .starts_process(ProcessInfo::new(2, child, "u"))
                .build(),
        )
    }

    #[test]
    fn register_and_run() {
        let mut e = Engine::new(EngineConfig::default());
        e.register(
            "q",
            "proc p1[\"%cmd.exe\"] start proc p2 as e1\nreturn p1, p2",
        )
        .unwrap();
        let alerts = e
            .run(vec![
                start(1, 10, "cmd.exe", "osql.exe"),
                start(2, 20, "explorer.exe", "notepad.exe"),
            ])
            .unwrap();
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].get("p2"), Some("osql.exe"));
    }

    #[test]
    fn register_error_carries_span() {
        let mut e = Engine::new(EngineConfig::default());
        let err = e
            .register("bad", "proc p teleport proc q as e\nreturn p")
            .unwrap_err();
        assert!(err.message.contains("teleport"));
        assert_eq!(err.span.line, 1);
    }

    #[test]
    fn duplicate_names_rejected_until_deregistered() {
        let src = "proc p start proc q as e\nreturn p";
        for workers in [0usize, 2] {
            let mut e = Engine::with_workers(EngineConfig::default(), workers);
            let id = e.register("watch", src).unwrap();
            let err = e.register("watch", src).unwrap_err();
            assert!(err.message.contains("already registered"), "{err:?}");
            // The engine is untouched by the rejected registration.
            assert_eq!(e.query_names(), vec!["watch".to_string()]);
            e.deregister(id).unwrap();
            let id2 = e.register("watch", src).unwrap();
            assert_ne!(id, id2);
            assert_eq!(e.query_names(), vec!["watch".to_string()]);
        }
    }

    #[test]
    fn control_plane_rejects_unknown_ids() {
        let mut e = Engine::new(EngineConfig::default());
        let ghost = QueryId::new(7);
        assert!(matches!(
            e.deregister(ghost),
            Err(EngineError::UnknownQuery(id)) if id == ghost
        ));
        assert!(e.pause(ghost).is_err());
        assert!(e.resume(ghost).is_err());
        assert!(e.subscribe(ghost).is_err());
        let id = e
            .register("q", "proc p start proc q as e\nreturn p")
            .unwrap();
        e.deregister(id).unwrap();
        assert!(e.deregister(id).is_err(), "retired ids are not live");
        assert!(!e.contains(id));
    }

    #[test]
    fn parallel_control_plane_errors_after_finish_instead_of_panicking() {
        let src = "proc p start proc q as e\nreturn p";
        let mut e = Engine::with_workers(EngineConfig::default(), 2);
        let id = e.register("q", src).unwrap();
        e.run(vec![start(1, 10, "a.exe", "b.exe")]).unwrap(); // run() ends in finish()
        assert!(matches!(e.deregister(id), Err(EngineError::EngineFinished)));
        assert!(matches!(e.pause(id), Err(EngineError::EngineFinished)));
        assert!(matches!(e.resume(id), Err(EngineError::EngineFinished)));
        assert!(matches!(e.subscribe(id), Err(EngineError::EngineFinished)));
        let err = e.register("late", src).unwrap_err();
        assert!(err.message.contains("already finished"), "{err:?}");
        // Locationless: no caret blaming the (valid) query text.
        assert!(!err.render(src).contains('^'), "{}", err.render(src));
        // The data plane reports the finished engine too (the PR 3 wart
        // was a panic inside the parallel runtime here).
        assert!(matches!(
            e.process(&start(2, 20, "a.exe", "b.exe")),
            Err(EngineError::EngineFinished)
        ));
        // ...and so do whole-stream runs: nothing is silently dropped.
        assert!(matches!(
            e.run(vec![start(3, 30, "a.exe", "b.exe")]),
            Err(EngineError::EngineFinished)
        ));
        let mut sink = crate::sink::CollectSink::default();
        assert!(matches!(
            e.run_with_sink(vec![start(4, 40, "a.exe", "b.exe")], &mut sink),
            Err(EngineError::EngineFinished)
        ));
        assert!(sink.alerts.is_empty());
        // Serial engines stay fully operable after finish.
        let mut s = Engine::new(EngineConfig::default());
        let sid = s.register("q", src).unwrap();
        s.run(vec![start(1, 10, "a.exe", "b.exe")]).unwrap();
        s.pause(sid).unwrap();
        s.resume(sid).unwrap();
        s.deregister(sid).unwrap();
        s.register("q2", src).unwrap();
        assert_eq!(s.process(&start(2, 20, "a.exe", "b.exe")).unwrap().len(), 1);
    }

    #[test]
    fn multiple_queries_grouped() {
        let mut e = Engine::new(EngineConfig::default());
        for i in 0..8 {
            e.register(&format!("q{i}"), "proc p start proc q as e\nreturn p")
                .unwrap();
        }
        assert_eq!(e.group_count(), 1);
        assert_eq!(e.query_names().len(), 8);
        assert_eq!(e.query_ids().len(), 8);
    }

    #[test]
    fn subscription_delivers_only_that_query() {
        for workers in [0usize, 2] {
            let mut e = Engine::with_workers(EngineConfig::default(), workers);
            let id_a = e
                .register(
                    "a",
                    "proc p1[\"%cmd.exe\"] start proc p2 as e\nreturn p1, p2",
                )
                .unwrap();
            let id_b = e
                .register(
                    "b",
                    "proc p1 start proc p2[\"%notepad.exe\"] as e\nreturn p1, p2",
                )
                .unwrap();
            let inbox_a = e.subscribe(id_a).unwrap();
            let inbox_b = e.subscribe(id_b).unwrap();
            e.run(vec![
                start(1, 10, "cmd.exe", "osql.exe"),
                start(2, 20, "explorer.exe", "notepad.exe"),
                start(3, 30, "cmd.exe", "calc.exe"),
            ])
            .unwrap();
            let got_a: Vec<Alert> = inbox_a.try_iter().collect();
            let got_b: Vec<Alert> = inbox_b.try_iter().collect();
            assert_eq!(got_a.len(), 2, "workers={workers}");
            assert!(got_a.iter().all(|a| a.query_id == id_a && a.query == "a"));
            assert_eq!(got_b.len(), 1, "workers={workers}");
            assert_eq!(got_b[0].query_id, id_b);
            assert_eq!(e.dropped_alerts(), 0);
        }
    }

    #[test]
    fn full_subscription_drops_and_counts_instead_of_stalling() {
        let mut e = Engine::new(EngineConfig::default());
        let id = e
            .register("q", "proc p start proc q as e\nreturn p, q")
            .unwrap();
        let inbox = e.subscribe_with_capacity(id, 1).unwrap();
        e.process(&start(1, 10, "a.exe", "b.exe")).unwrap();
        e.process(&start(2, 20, "a.exe", "b.exe")).unwrap();
        e.process(&start(3, 30, "a.exe", "b.exe")).unwrap();
        assert_eq!(inbox.try_iter().count(), 1, "capacity-1 channel");
        assert_eq!(e.dropped_alerts(), 2);
        // A dropped receiver unsubscribes (pruned from the routing table)
        // without counting further drops.
        drop(inbox);
        e.process(&start(4, 40, "a.exe", "b.exe")).unwrap();
        assert_eq!(e.dropped_alerts(), 2);
        assert!(
            e.subscriptions.is_empty(),
            "disconnected subscriber must be pruned"
        );
    }

    #[test]
    fn deregister_flushes_open_windows_through_normal_delivery() {
        let mut e = Engine::new(EngineConfig::default());
        let id = e
            .register(
                "w",
                "proc p write ip i as evt #time(1 min)\nstate ss { n := count() } group by p\nreturn p, ss[0].n",
            )
            .unwrap();
        let inbox = e.subscribe(id).unwrap();
        let write = Arc::new(
            EventBuilder::new(1, "h", 1_000)
                .subject(ProcessInfo::new(1, "x.exe", "u"))
                .sends(saql_model::NetworkInfo::new(
                    "10.0.0.2", 44000, "1.1.1.1", 443, "tcp",
                ))
                .amount(5)
                .build(),
        );
        assert!(e.process(&write).unwrap().is_empty(), "window still open");
        e.deregister(id).unwrap();
        // The flush alert surfaces on the next data-plane call and reached
        // the subscriber.
        let alerts = e.process(&start(2, 2_000, "a.exe", "b.exe")).unwrap();
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].query_id, id);
        assert_eq!(inbox.try_iter().count(), 1);
        assert!(e.query_stats().is_empty(), "stats left with the query");
        // Serial deregistration closes the subscription immediately (the
        // flush was routed synchronously): no channel lingers, and the
        // receiver observes the disconnect.
        assert!(e.subscriptions.is_empty(), "subscription closed");
        assert!(inbox.try_recv().is_err());
    }

    #[test]
    fn parallel_deregister_keeps_subscription_routable_until_finish() {
        let mut e = Engine::with_workers(EngineConfig::default(), 2);
        let id = e
            .register(
                "w",
                "proc p write ip i as evt #time(1 min)\nstate ss { n := count() } group by p\nreturn p, ss[0].n",
            )
            .unwrap();
        let inbox = e.subscribe(id).unwrap();
        let write = Arc::new(
            EventBuilder::new(1, "h", 1_000)
                .subject(ProcessInfo::new(1, "x.exe", "u"))
                .sends(saql_model::NetworkInfo::new(
                    "10.0.0.2", 44000, "1.1.1.1", 443, "tcp",
                ))
                .amount(5)
                .build(),
        );
        e.process(&write).unwrap();
        e.deregister(id).unwrap();
        assert!(
            !e.subscriptions.is_empty(),
            "parallel flush is asynchronous: channel stays routable"
        );
        e.finish();
        assert!(e.subscriptions.is_empty(), "closed once flush delivered");
        assert_eq!(inbox.try_iter().count(), 1, "flush reached subscriber");
        assert!(inbox.try_recv().is_err(), "receiver sees the disconnect");
    }

    #[test]
    fn pause_and_resume_mid_stream_serial_matches_parallel() {
        let run = |workers: usize| -> Vec<String> {
            let mut e = Engine::with_workers(EngineConfig::default(), workers);
            let id = e
                .register(
                    "q",
                    "proc p1[\"%cmd.exe\"] start proc p2 as e\nreturn p1, p2",
                )
                .unwrap();
            let mut alerts = Vec::new();
            alerts.extend(e.process(&start(1, 10, "cmd.exe", "a.exe")).unwrap());
            e.pause(id).unwrap();
            assert!(e.is_paused(id));
            alerts.extend(e.process(&start(2, 20, "cmd.exe", "b.exe")).unwrap());
            e.resume(id).unwrap();
            assert!(!e.is_paused(id));
            alerts.extend(e.process(&start(3, 30, "cmd.exe", "c.exe")).unwrap());
            alerts.extend(e.finish());
            let mut keys: Vec<String> = alerts.iter().map(|a| a.to_string()).collect();
            keys.sort();
            keys
        };
        let serial = run(0);
        assert_eq!(serial.len(), 2, "event 2 fell inside the pause");
        for workers in [1usize, 2, 4] {
            assert_eq!(run(workers), serial, "workers={workers}");
        }
    }

    #[test]
    fn latency_tracking_records_per_event() {
        let mut e = Engine::new(EngineConfig {
            record_latency: true,
            ..Default::default()
        });
        e.register("q", "proc p start proc q as e\nreturn p")
            .unwrap();
        e.run(
            (0..50)
                .map(|i| start(i, i * 10, "a.exe", "b.exe"))
                .collect::<Vec<_>>(),
        )
        .unwrap();
        let hist = e.latency().expect("tracking enabled");
        assert_eq!(hist.count(), 50);
        assert!(hist.quantile(0.5).unwrap() > 0);
        // Disabled by default.
        let e2 = Engine::new(EngineConfig::default());
        assert!(e2.latency().is_none());
    }

    #[test]
    fn parallel_backend_matches_serial_results() {
        let events: Vec<SharedEvent> = (0..100)
            .map(|i| {
                if i % 3 == 0 {
                    start(i, i * 1_000, "cmd.exe", "osql.exe")
                } else {
                    start(i, i * 1_000, "explorer.exe", "notepad.exe")
                }
            })
            .collect();
        let sources = [
            (
                "a",
                "proc p1[\"%cmd.exe\"] start proc p2 as e\nreturn p1, p2",
            ),
            (
                "b",
                "proc p1 start proc p2[\"%notepad.exe\"] as e\nreturn p1, p2",
            ),
        ];
        let mut serial = Engine::new(EngineConfig::default());
        let mut parallel = Engine::with_workers(EngineConfig::default(), 2);
        assert_eq!(serial.workers(), 0);
        assert_eq!(parallel.workers(), 2);
        for (name, src) in sources {
            serial.register(name, src).unwrap();
            parallel.register(name, src).unwrap();
        }
        let norm = |mut v: Vec<Alert>| {
            let mut keys: Vec<String> = v.drain(..).map(|a| format!("{}|{a}", a.query)).collect();
            keys.sort();
            keys
        };
        let serial_alerts = norm(serial.run(events.clone()).unwrap());
        let parallel_alerts = norm(parallel.run(events).unwrap());
        assert_eq!(serial_alerts, parallel_alerts);
        assert_eq!(
            parallel.scheduler_stats().events,
            serial.scheduler_stats().events
        );
        assert_eq!(parallel.query_stats().len(), 2);
        assert!(parallel.latency().is_none());
        // The facade surfaces the per-shard work partition after finish.
        let shards = parallel.shard_stats();
        assert_eq!(shards.len(), 2);
        assert_eq!(
            shards.iter().map(|(_, s)| s.master_checks).sum::<u64>(),
            serial.scheduler_stats().master_checks
        );
        assert!(serial.shard_stats().is_empty(), "serial has no shards");
        assert_eq!(parallel.dropped_alerts(), 0);
    }

    #[test]
    fn run_with_sink_streams_json() {
        let mut e = Engine::new(EngineConfig::default());
        e.register("q", "proc p start proc q as e\nreturn p, q")
            .unwrap();
        let mut sink = crate::sink::JsonLinesSink::new(Vec::new());
        let n = e
            .run_with_sink(vec![start(1, 10, "cmd.exe", "osql.exe")], &mut sink)
            .unwrap();
        assert_eq!(n, 1);
        let text = String::from_utf8(sink.into_inner()).unwrap();
        assert!(text.contains("\"query\":\"q\""), "{text}");
        assert!(text.contains("\"query_id\":0"), "{text}");
        assert!(text.contains("\"p\":\"cmd.exe\""), "{text}");
    }

    #[test]
    fn stats_and_errors_accessible() {
        let mut e = Engine::new(EngineConfig::default());
        e.register("q", "proc p start proc q as e\nreturn p")
            .unwrap();
        e.run(vec![start(1, 10, "a", "b")]).unwrap();
        let stats = e.query_stats();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].1.alerts, 1);
        assert_eq!(e.error_count(), 0);
        assert!(e.recent_errors().is_empty());
    }
}
