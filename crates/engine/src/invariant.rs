//! Invariant-based anomaly models.
//!
//! An `invariant[N][offline]` block trains per-group invariant variables
//! over each group's first `N` windows (e.g. the set of child processes
//! Apache is *allowed* to spawn), then switches to detection. In `offline`
//! mode the invariant freezes after training; in `online` mode it keeps
//! absorbing non-alerting windows, adapting to drift.

use std::collections::HashMap;

use saql_lang::ast::{InvariantBlock, InvariantMode};

use crate::eval::{eval, Scope};
use crate::value::Value;

/// Training status of one group's invariant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Still absorbing training windows (no alerts fire).
    Training { seen: usize },
    /// Detection mode.
    Detecting,
}

#[derive(Debug)]
struct GroupInvariant {
    vars: HashMap<String, Value>,
    phase: Phase,
}

/// Runtime for one invariant block, tracking per-group training state.
#[derive(Debug)]
pub struct InvariantRuntime {
    block: InvariantBlock,
    groups: HashMap<String, GroupInvariant>,
}

impl InvariantRuntime {
    pub fn new(block: &InvariantBlock) -> Self {
        InvariantRuntime {
            block: block.clone(),
            groups: HashMap::new(),
        }
    }

    /// Current phase of a group (groups appear on their first window).
    pub fn phase(&self, group: &str) -> Option<Phase> {
        self.groups.get(group).map(|g| g.phase)
    }

    /// Invariant variables of a group, for alert-scope construction.
    /// Empty while the group is unknown.
    pub fn vars(&self, group: &str) -> HashMap<String, Value> {
        match self.groups.get(group) {
            Some(g) => g.vars.clone(),
            None => HashMap::new(),
        }
    }

    /// Observe one closed window for `group`. `scope` must resolve the state
    /// fields (`ss.set_proc`) for that window.
    ///
    /// Returns `true` if the group is in detection mode **after** this
    /// window's bookkeeping — i.e. the caller should evaluate the alert
    /// condition. During training, updates run and no alert is possible.
    pub fn on_window(&mut self, group: &str, scope: &Scope<'_>) -> bool {
        let entry = self.groups.entry(group.to_string()).or_insert_with(|| {
            // First sight of the group: run the `:=` initializers.
            let mut vars = HashMap::new();
            for stmt in &self.block.stmts {
                if stmt.init {
                    let seeded = eval(&stmt.expr, &Scope::empty());
                    vars.insert(stmt.var.clone(), seeded);
                }
            }
            GroupInvariant {
                vars,
                phase: Phase::Training { seen: 0 },
            }
        });

        match entry.phase {
            Phase::Training { seen } => {
                Self::run_updates(&self.block, &mut entry.vars, scope);
                let seen = seen + 1;
                entry.phase = if seen >= self.block.train_windows {
                    Phase::Detecting
                } else {
                    Phase::Training { seen }
                };
                false
            }
            Phase::Detecting => true,
        }
    }

    /// In `online` mode, absorb a non-alerting detection window into the
    /// invariant (call after the alert evaluated false).
    pub fn absorb_online(&mut self, group: &str, scope: &Scope<'_>) {
        if self.block.mode != InvariantMode::Online {
            return;
        }
        if let Some(entry) = self.groups.get_mut(group) {
            if entry.phase == Phase::Detecting {
                Self::run_updates(&self.block, &mut entry.vars, scope);
            }
        }
    }

    fn run_updates(block: &InvariantBlock, vars: &mut HashMap<String, Value>, scope: &Scope<'_>) {
        for stmt in &block.stmts {
            if stmt.init {
                continue;
            }
            // Update expressions see the current invariant vars plus the
            // window scope; graft the vars into a derived scope.
            let s = Scope {
                events: scope.events.clone(),
                entities: scope.entities.clone(),
                group_keys: scope.group_keys.clone(),
                states: scope.states,
                invariants: vars.clone(),
                cluster: scope.cluster,
            };
            let next = eval(&stmt.expr, &s);
            if !next.is_missing() {
                vars.insert(stmt.var.clone(), next);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::StateLookup;
    use saql_lang::parse;

    fn block(train: usize, mode: &str) -> InvariantBlock {
        let src = format!(
            "proc p1 start proc p2 as evt #time(10 s)\nstate ss {{ set_proc := set(p2.exe_name) }} group by p1\ninvariant[{train}][{mode}] {{\n a := empty_set\n a = a union ss.set_proc\n}}\nalert |ss.set_proc diff a| > 0\nreturn p1"
        );
        parse(&src).unwrap().invariants.remove(0)
    }

    /// Fake state resolving `ss.set_proc` to a fixed set.
    struct FixedState(Vec<&'static str>);

    impl StateLookup for FixedState {
        fn state_value(&self, name: &str, back: usize, field: Option<&str>) -> Value {
            if name == "ss" && back == 0 && field == Some("set_proc") {
                Value::set_from(self.0.iter().map(|s| s.to_string()))
            } else {
                Value::Missing
            }
        }
    }

    fn scope_with(state: &FixedState) -> Scope<'_> {
        let mut s = Scope::empty();
        s.states = state;
        s
    }

    #[test]
    fn trains_then_detects() {
        let mut inv = InvariantRuntime::new(&block(3, "offline"));
        let normal = FixedState(vec!["php.exe"]);
        for i in 0..3 {
            let ready = inv.on_window("apache.exe", &scope_with(&normal));
            assert!(!ready, "window {i} must still be training");
        }
        assert_eq!(inv.phase("apache.exe"), Some(Phase::Detecting));
        assert!(inv.on_window("apache.exe", &scope_with(&normal)));
        // The trained invariant contains the union of training windows.
        let vars = inv.vars("apache.exe");
        assert_eq!(vars["a"].to_string(), "{php.exe}");
    }

    #[test]
    fn union_accumulates_across_training_windows() {
        let mut inv = InvariantRuntime::new(&block(2, "offline"));
        inv.on_window("apache.exe", &scope_with(&FixedState(vec!["php.exe"])));
        inv.on_window(
            "apache.exe",
            &scope_with(&FixedState(vec!["rotatelogs.exe"])),
        );
        let vars = inv.vars("apache.exe");
        assert_eq!(vars["a"].to_string(), "{php.exe, rotatelogs.exe}");
    }

    #[test]
    fn offline_mode_freezes_after_training() {
        let mut inv = InvariantRuntime::new(&block(1, "offline"));
        inv.on_window("g", &scope_with(&FixedState(vec!["php.exe"])));
        // Detection window with a new process; offline must not absorb it.
        assert!(inv.on_window("g", &scope_with(&FixedState(vec!["cmd.exe"]))));
        inv.absorb_online("g", &scope_with(&FixedState(vec!["cmd.exe"])));
        assert_eq!(inv.vars("g")["a"].to_string(), "{php.exe}");
    }

    #[test]
    fn online_mode_absorbs_after_training() {
        let mut inv = InvariantRuntime::new(&block(1, "online"));
        inv.on_window("g", &scope_with(&FixedState(vec!["php.exe"])));
        assert!(inv.on_window("g", &scope_with(&FixedState(vec!["cgi.exe"]))));
        inv.absorb_online("g", &scope_with(&FixedState(vec!["cgi.exe"])));
        assert_eq!(inv.vars("g")["a"].to_string(), "{cgi.exe, php.exe}");
    }

    #[test]
    fn groups_train_independently() {
        let mut inv = InvariantRuntime::new(&block(2, "offline"));
        inv.on_window("apache-1", &scope_with(&FixedState(vec!["php.exe"])));
        inv.on_window("apache-1", &scope_with(&FixedState(vec!["php.exe"])));
        // apache-2 appears later: still training while apache-1 detects.
        assert!(!inv.on_window("apache-2", &scope_with(&FixedState(vec!["perl.exe"]))));
        assert!(inv.on_window("apache-1", &scope_with(&FixedState(vec!["php.exe"]))));
        assert_eq!(inv.phase("apache-2"), Some(Phase::Training { seen: 1 }));
    }

    #[test]
    fn unknown_group_has_no_vars() {
        let inv = InvariantRuntime::new(&block(2, "offline"));
        assert!(inv.vars("nobody").is_empty());
        assert_eq!(inv.phase("nobody"), None);
    }
}
