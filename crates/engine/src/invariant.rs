//! Invariant-based anomaly models.
//!
//! An `invariant[N][offline]` block trains per-group invariant variables
//! over each group's first `N` windows (e.g. the set of child processes
//! Apache is *allowed* to spawn), then switches to detection. In `offline`
//! mode the invariant freezes after training; in `online` mode it keeps
//! absorbing non-alerting windows, adapting to drift.
//!
//! The runtime owns *when* statements run (phases, per-group bookkeeping)
//! but not *how* they evaluate: callers supply an evaluator closure
//! `(statement index, current variables) → value`, which the engine backs
//! with either a compiled program or the interpreter oracle. Variables are
//! slot-indexed (`:=` initialization order) — the close-time contexts read
//! them as a plain slice.

use saql_lang::ast::{InvariantBlock, InvariantMode};

use crate::value::Value;

/// Training status of one group's invariant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Still absorbing training windows (no alerts fire).
    Training { seen: usize },
    /// Detection mode.
    Detecting,
}

#[derive(Debug)]
struct GroupInvariant {
    vars: Vec<Value>,
    phase: Phase,
}

/// One statement's dispatch row: which variable slot it writes and whether
/// it is an initializer.
#[derive(Debug, Clone, Copy)]
struct StmtRow {
    slot: usize,
    init: bool,
}

/// Evaluate statement `index` with the group's current variables in scope.
pub type StmtEval<'a> = dyn FnMut(usize, &[Value]) -> Value + 'a;

/// Runtime for one invariant block, tracking per-group training state.
/// Groups are keyed by their close-time labels (one lookup per group per
/// window close — never on the per-event path).
#[derive(Debug)]
pub struct InvariantRuntime {
    train_windows: usize,
    mode: InvariantMode,
    stmts: Vec<StmtRow>,
    n_vars: usize,
    groups: std::collections::HashMap<String, GroupInvariant>,
}

impl InvariantRuntime {
    /// Build from the block plus its resolved statement rows
    /// `(variable slot, is-init)` in block order (see
    /// [`saql_lang::resolve::ResolvedStmt`]).
    pub fn new(block: &InvariantBlock, stmts: Vec<(usize, bool)>, n_vars: usize) -> Self {
        InvariantRuntime {
            train_windows: block.train_windows,
            mode: block.mode,
            stmts: stmts
                .into_iter()
                .map(|(slot, init)| StmtRow { slot, init })
                .collect(),
            n_vars,
            groups: std::collections::HashMap::new(),
        }
    }

    /// Current phase of a group (groups appear on their first window).
    pub fn phase(&self, group: &str) -> Option<Phase> {
        self.groups.get(group).map(|g| g.phase)
    }

    /// Invariant variables of a group, slot-indexed. Empty while the group
    /// is unknown.
    pub fn vars(&self, group: &str) -> &[Value] {
        match self.groups.get(group) {
            Some(g) => &g.vars,
            None => &[],
        }
    }

    /// Observe one closed window for `group`, evaluating statements through
    /// `eval`.
    ///
    /// Returns `true` if the group is in detection mode **after** this
    /// window's bookkeeping — i.e. the caller should evaluate the alert
    /// condition. During training, updates run and no alert is possible.
    pub fn on_window(&mut self, group: &str, eval: &mut StmtEval<'_>) -> bool {
        let stmts = &self.stmts;
        let n_vars = self.n_vars;
        let entry = self.groups.entry(group.to_string()).or_insert_with(|| {
            // First sight of the group: run the `:=` initializers
            // (empty context — `eval` ignores the variables for them).
            let mut vars = vec![Value::Missing; n_vars];
            for (i, row) in stmts.iter().enumerate() {
                if row.init {
                    vars[row.slot] = eval(i, &vars);
                }
            }
            GroupInvariant {
                vars,
                phase: Phase::Training { seen: 0 },
            }
        });

        match entry.phase {
            Phase::Training { seen } => {
                run_updates(stmts, &mut entry.vars, eval);
                let seen = seen + 1;
                entry.phase = if seen >= self.train_windows {
                    Phase::Detecting
                } else {
                    Phase::Training { seen }
                };
                false
            }
            Phase::Detecting => true,
        }
    }

    /// In `online` mode, absorb a non-alerting detection window into the
    /// invariant (call after the alert evaluated false).
    pub fn absorb_online(&mut self, group: &str, eval: &mut StmtEval<'_>) {
        if self.mode != InvariantMode::Online {
            return;
        }
        if let Some(entry) = self.groups.get_mut(group) {
            if entry.phase == Phase::Detecting {
                run_updates(&self.stmts, &mut entry.vars, eval);
            }
        }
    }

    /// Capture per-group training state (engine checkpoints); rows sorted
    /// by group label so snapshots are deterministic. The block structure
    /// is static — recompiled from the query source.
    pub fn snapshot(&self) -> InvariantSnapshot {
        let mut groups: Vec<InvariantGroupSnapshot> = self
            .groups
            .iter()
            .map(|(label, g)| InvariantGroupSnapshot {
                label: label.clone(),
                vars: g.vars.clone(),
                phase: g.phase,
            })
            .collect();
        groups.sort_by(|a, b| a.label.cmp(&b.label));
        InvariantSnapshot { groups }
    }

    /// Restore the state captured by [`snapshot`](Self::snapshot) onto a
    /// freshly compiled runtime for the same block.
    pub fn restore(&mut self, snap: InvariantSnapshot) {
        self.groups = snap
            .groups
            .into_iter()
            .map(|g| {
                (
                    g.label,
                    GroupInvariant {
                        vars: g.vars,
                        phase: g.phase,
                    },
                )
            })
            .collect();
    }
}

/// One group's invariant state in an [`InvariantSnapshot`].
#[derive(Debug, Clone)]
pub struct InvariantGroupSnapshot {
    pub label: String,
    /// Invariant variables, slot-indexed.
    pub vars: Vec<Value>,
    pub phase: Phase,
}

/// Dynamic state of an [`InvariantRuntime`], exact under snapshot → restore.
#[derive(Debug, Clone)]
pub struct InvariantSnapshot {
    pub groups: Vec<InvariantGroupSnapshot>,
}

fn run_updates(stmts: &[StmtRow], vars: &mut [Value], eval: &mut StmtEval<'_>) {
    for (i, row) in stmts.iter().enumerate() {
        if row.init {
            continue;
        }
        // Update expressions see the current invariant variables; a
        // `Missing` result keeps the previous value (bad data never
        // erases a trained invariant).
        let next = eval(i, vars);
        if !next.is_missing() {
            vars[row.slot] = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saql_lang::parse;

    fn block(train: usize, mode: &str) -> InvariantBlock {
        let src = format!(
            "proc p1 start proc p2 as evt #time(10 s)\nstate ss {{ set_proc := set(p2.exe_name) }} group by p1\ninvariant[{train}][{mode}] {{\n a := empty_set\n a = a union ss.set_proc\n}}\nalert |ss.set_proc diff a| > 0\nreturn p1"
        );
        parse(&src).unwrap().invariants.remove(0)
    }

    fn runtime(train: usize, mode: &str) -> InvariantRuntime {
        // Statement rows of the block above: `a := empty_set`, `a = ...`.
        InvariantRuntime::new(&block(train, mode), vec![(0, true), (0, false)], 1)
    }

    /// Evaluator mirroring the block: init seeds the empty set, the update
    /// unions a fixed per-window set into `a`.
    fn eval_with<'a>(window_set: &'a [&'a str]) -> impl FnMut(usize, &[Value]) -> Value + 'a {
        move |stmt, vars| match stmt {
            0 => Value::empty_set(),
            _ => vars[0].union(&Value::set_from(window_set.iter().map(|s| s.to_string()))),
        }
    }

    #[test]
    fn trains_then_detects() {
        let mut inv = runtime(3, "offline");
        for i in 0..3 {
            let ready = inv.on_window("apache.exe", &mut eval_with(&["php.exe"]));
            assert!(!ready, "window {i} must still be training");
        }
        assert_eq!(inv.phase("apache.exe"), Some(Phase::Detecting));
        assert!(inv.on_window("apache.exe", &mut eval_with(&["php.exe"])));
        // The trained invariant contains the union of training windows.
        assert_eq!(inv.vars("apache.exe")[0].to_string(), "{php.exe}");
    }

    #[test]
    fn union_accumulates_across_training_windows() {
        let mut inv = runtime(2, "offline");
        inv.on_window("apache.exe", &mut eval_with(&["php.exe"]));
        inv.on_window("apache.exe", &mut eval_with(&["rotatelogs.exe"]));
        assert_eq!(
            inv.vars("apache.exe")[0].to_string(),
            "{php.exe, rotatelogs.exe}"
        );
    }

    #[test]
    fn offline_mode_freezes_after_training() {
        let mut inv = runtime(1, "offline");
        inv.on_window("g", &mut eval_with(&["php.exe"]));
        // Detection window with a new process; offline must not absorb it.
        assert!(inv.on_window("g", &mut eval_with(&["cmd.exe"])));
        inv.absorb_online("g", &mut eval_with(&["cmd.exe"]));
        assert_eq!(inv.vars("g")[0].to_string(), "{php.exe}");
    }

    #[test]
    fn online_mode_absorbs_after_training() {
        let mut inv = runtime(1, "online");
        inv.on_window("g", &mut eval_with(&["php.exe"]));
        assert!(inv.on_window("g", &mut eval_with(&["cgi.exe"])));
        inv.absorb_online("g", &mut eval_with(&["cgi.exe"]));
        assert_eq!(inv.vars("g")[0].to_string(), "{cgi.exe, php.exe}");
    }

    #[test]
    fn groups_train_independently() {
        let mut inv = runtime(2, "offline");
        inv.on_window("apache-1", &mut eval_with(&["php.exe"]));
        inv.on_window("apache-1", &mut eval_with(&["php.exe"]));
        // apache-2 appears later: still training while apache-1 detects.
        assert!(!inv.on_window("apache-2", &mut eval_with(&["perl.exe"])));
        assert!(inv.on_window("apache-1", &mut eval_with(&["php.exe"])));
        assert_eq!(inv.phase("apache-2"), Some(Phase::Training { seen: 1 }));
    }

    #[test]
    fn missing_update_keeps_previous_value() {
        let mut inv = runtime(2, "offline");
        inv.on_window("g", &mut eval_with(&["php.exe"]));
        inv.on_window("g", &mut |stmt, _| match stmt {
            0 => Value::empty_set(),
            _ => Value::Missing,
        });
        assert_eq!(inv.vars("g")[0].to_string(), "{php.exe}");
    }

    #[test]
    fn unknown_group_has_no_vars() {
        let inv = runtime(2, "offline");
        assert!(inv.vars("nobody").is_empty());
        assert_eq!(inv.phase("nobody"), None);
    }
}
