//! Source-driven run sessions: the ingestion half of the engine's control
//! plane.
//!
//! PR 3 made *queries* first-class citizens of a running engine
//! (register/deregister/pause/subscribe); a [`RunSession`] does the same for
//! *inputs*. Instead of the caller pushing a pre-merged iterator into
//! [`Engine::run`], the session owns a watermarked K-way merge of pluggable
//! [`EventSource`]s — streamed store selections, paced replays, JSON-lines
//! pipes, push-handle channels — and **pumps** the engine from them:
//! sources attach and detach mid-stream, per-source progress (events, lag,
//! dropped-late) is observable, and the merged order is a deterministic
//! function of the per-source event sequences, so serial and parallel
//! backends agree on multi-source runs.
//!
//! **[`RunSession`] is the primary run entry point.** The classic entry
//! points survive as thin wrappers with the same `Result<_, EngineError>`
//! contract on both backends: `Engine::run` and `run_with_sink` are a
//! session with one [`Lateness::ArrivalOrder`] iterator source, which is an
//! exact pass-through — existing callers see identical behavior — and
//! `Engine::process`/`process_batch` are the single-step data-plane calls
//! the pump itself uses. Anything beyond a one-shot pre-merged stream —
//! multi-source merges, live feeds, mid-stream control-plane changes, and
//! durable checkpoints ([`RunSession::enable_checkpoints`]) — talks to the
//! session directly.

use std::path::PathBuf;

use saql_stream::merge::{
    Lateness, MergeConfig, MergeStatus, SourceId, SourceStats, WatermarkMerge,
};
use saql_stream::source::EventSource;
use saql_stream::{EventBatch, SharedEvent};

use crate::alert::Alert;
use crate::checkpoint::Checkpoint;
use crate::engine::Engine;
use crate::error::EngineError;
use crate::sink::AlertSink;

/// Cadence and destination for automatic checkpoints
/// ([`RunSession::enable_checkpoints`]).
#[derive(Debug, Clone)]
pub struct CheckpointConfig {
    /// Directory the checkpoint file lives in (created if absent). Each
    /// checkpoint atomically replaces the previous one.
    pub dir: PathBuf,
    /// Take a checkpoint after at least this many events since the last
    /// one, at the next pump-round boundary. Zero disables the cadence
    /// (only explicit [`RunSession::checkpoint_now`] calls write).
    pub every_events: u64,
}

/// Checkpoint bookkeeping inside a session.
struct CheckpointState {
    config: CheckpointConfig,
    /// Events fed since the last checkpoint (cadence trigger).
    since_last: u64,
    /// Offset of the last checkpoint written, if any.
    last_offset: Option<u64>,
    /// The first cadence failure; auto-checkpointing stops on it (an
    /// explicit [`RunSession::checkpoint_now`] retries and clears it).
    failure: Option<EngineError>,
}

/// Progress of a [`RunSession::pump`] round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionStatus {
    /// Events flowed (or are imminently available).
    Active,
    /// No source had anything to deliver; live feeds are waiting on
    /// external producers. Back off briefly before pumping again.
    Idle,
    /// Every attached source reached end-of-stream and drained.
    Done,
}

/// What one pump round produced.
#[derive(Debug)]
pub struct Pump {
    /// Alerts raised by the events processed this round (on the parallel
    /// backend, alerts surface as workers deliver them — everything is in
    /// once [`Engine::finish`] ran, which [`RunSession::drain`] does).
    pub alerts: Vec<Alert>,
    /// Events fed to the engine this round.
    pub events: u64,
    /// Session progress after the round.
    pub status: SessionStatus,
}

/// A pump-driven engine run over attachable event sources.
///
/// Created by [`Engine::session`]. Attach sources, then either call
/// [`pump`](Self::pump) yourself (interleaving control-plane calls through
/// [`engine`](Self::engine) at exact stream positions) or let
/// [`drain`](Self::drain)/[`drain_into`](Self::drain_into) run the stream
/// to completion and flush.
///
/// ```
/// use saql_engine::{Engine, EngineConfig};
/// use saql_model::event::EventBuilder;
/// use saql_model::ProcessInfo;
/// use saql_stream::source::{push_source, IterSource};
/// use std::sync::Arc;
///
/// let start = |id: u64, host: &str, ts: u64| Arc::new(
///     EventBuilder::new(id, host, ts)
///         .subject(ProcessInfo::new(1, "cmd.exe", "u"))
///         .starts_process(ProcessInfo::new(2, "osql.exe", "u"))
///         .build(),
/// );
///
/// let mut engine = Engine::new(EngineConfig::default());
/// engine
///     .register("watch", "proc p1[\"%cmd.exe\"] start proc p2 as e\nreturn p1, p2")
///     .unwrap();
///
/// // One stored feed and one live push feed, merged by watermark.
/// let (push, live) = push_source("agent-live", 64);
/// let mut session = engine.session();
/// let stored = session.attach(IterSource::new(
///     "agent-stored",
///     vec![start(1, "h1", 10), start(2, "h1", 30)],
/// ));
/// session.attach(live);
///
/// push.push(start(3, "h2", 20));
/// drop(push); // close the live feed
///
/// let alerts = session.drain();
/// assert_eq!(alerts.len(), 3);
/// // The merge interleaved by event time across sources.
/// assert_eq!(
///     alerts.iter().map(|a| a.ts.as_millis()).collect::<Vec<_>>(),
///     vec![10, 20, 30],
/// );
/// # let _ = stored;
/// ```
pub struct RunSession<'e> {
    engine: &'e mut Engine,
    merge: WatermarkMerge<'e>,
    batch: Vec<SharedEvent>,
    processed: u64,
    /// Stream offset this session started at: `0` for a fresh run, the
    /// checkpoint's offset after [`resume_at`](Self::resume_at) — so
    /// [`offset`](Self::offset) is always a *global* store position.
    base_offset: u64,
    /// Merge frontier carried over from a resumed checkpoint.
    base_frontier: saql_model::Timestamp,
    checkpoints: Option<CheckpointState>,
}

impl Engine {
    /// Open a source-driven run session with default merge settings.
    pub fn session(&mut self) -> RunSession<'_> {
        self.session_with(MergeConfig::default())
    }

    /// Open a source-driven run session with explicit merge settings
    /// (default lateness bound, pull batch size).
    pub fn session_with(&mut self, config: MergeConfig) -> RunSession<'_> {
        RunSession {
            engine: self,
            merge: WatermarkMerge::new(config),
            batch: Vec::new(),
            processed: 0,
            base_offset: 0,
            base_frontier: saql_model::Timestamp::ZERO,
            checkpoints: None,
        }
    }
}

impl<'e> RunSession<'e> {
    /// Attach a source under the session's default lateness bound. Sources
    /// can attach at any time, including after pumping has started.
    pub fn attach<S: EventSource + 'e>(&mut self, source: S) -> SourceId {
        self.merge.attach(Box::new(source))
    }

    /// Attach a source with an explicit ordering contract (see
    /// [`Lateness`]).
    pub fn attach_with<S: EventSource + 'e>(&mut self, source: S, lateness: Lateness) -> SourceId {
        self.merge.attach_with(Box::new(source), lateness)
    }

    /// Detach a source mid-stream: it stops feeding (buffered events are
    /// discarded) and stops gating the merge frontier; its final stats are
    /// returned. The id is retired, never reused.
    pub fn detach(&mut self, id: SourceId) -> Result<SourceStats, EngineError> {
        self.merge.detach(id).ok_or(EngineError::UnknownSource(id))
    }

    /// The engine under the session — the query control plane stays fully
    /// available mid-pump (register/deregister/pause/resume/subscribe land
    /// at the current stream position).
    pub fn engine(&mut self) -> &mut Engine {
        self.engine
    }

    /// One pump round with the default per-round event budget.
    pub fn pump(&mut self) -> Pump {
        self.pump_max(usize::MAX)
    }

    /// One pump round, feeding at most `max` merged events to the engine.
    /// Bounding the budget lets callers interleave control-plane changes at
    /// exact stream positions (see the CLI's staged lifecycle flags).
    ///
    /// Merged events are fed in [`EventBatch`]es of the engine's execution
    /// batch size ([`Engine::batch_size`] — the one
    /// [`crate::EngineConfig::batch_size`] knob), so the session pump and
    /// the vectorized execution path agree on chunking.
    ///
    /// If the engine was explicitly finished mid-session (via
    /// [`engine`](Self::engine) on a parallel backend), the round ends
    /// immediately with [`SessionStatus::Done`] — a finished engine can
    /// absorb no more events.
    pub fn pump_max(&mut self, max: usize) -> Pump {
        self.pump_tapped(max, &mut |_, _| {})
    }

    /// [`pump_max`](Self::pump_max) with a write-ahead tap: `tap` is called
    /// once per non-empty round with the absolute stream offset of the
    /// round's first event and the round's merged events, *before* any of
    /// them reach the engine. This is the durable-serving hook — appending
    /// the tapped slice to an event store persists exactly the engine's
    /// consumption order, so a store offset and [`offset`](Self::offset)
    /// denote the same position and checkpoints taken at round boundaries
    /// line up with the store ahead of the state they describe.
    pub fn pump_tapped(&mut self, max: usize, tap: &mut dyn FnMut(u64, &[SharedEvent])) -> Pump {
        self.batch.clear();
        let status = self.merge.poll(&mut self.batch, max);
        if !self.batch.is_empty() {
            tap(self.base_offset + self.processed, &self.batch);
        }
        let mut alerts = Vec::new();
        let mut fed = 0u64;
        for chunk in self.batch.chunks(self.engine.batch_size()) {
            match self
                .engine
                .process_batch(&EventBatch::from_events(chunk.to_vec()))
            {
                Ok(fresh) => {
                    fed += chunk.len() as u64;
                    alerts.extend(fresh);
                }
                Err(_) => {
                    self.processed += fed;
                    return Pump {
                        alerts,
                        events: fed,
                        status: SessionStatus::Done,
                    };
                }
            }
        }
        let events = fed;
        self.processed += events;
        // Cadence checkpoints land here — a pump-round boundary, so the
        // engine is between `process_batch` calls and the captured state
        // corresponds exactly to `offset()` events consumed.
        if let Some(ck) = self.checkpoints.as_mut() {
            ck.since_last += events;
            if ck.config.every_events > 0
                && ck.since_last >= ck.config.every_events
                && ck.failure.is_none()
            {
                if let Err(e) = self.checkpoint_now() {
                    // Remember the first failure instead of failing the
                    // pump: the stream keeps flowing, explicit
                    // `checkpoint_now` retries.
                    if let Some(ck) = self.checkpoints.as_mut() {
                        ck.failure = Some(e);
                    }
                }
            }
        }
        Pump {
            alerts,
            events,
            status: match status {
                MergeStatus::Active => SessionStatus::Active,
                MergeStatus::Idle => SessionStatus::Idle,
                MergeStatus::Done => SessionStatus::Done,
            },
        }
    }

    /// Pump until every source ends, then flush the engine
    /// ([`Engine::finish`]); returns all alerts. Idle rounds (live sources
    /// waiting on producers) sleep briefly instead of spinning.
    pub fn drain(mut self) -> Vec<Alert> {
        let mut alerts = Vec::new();
        loop {
            let round = self.pump();
            alerts.extend(round.alerts);
            match round.status {
                SessionStatus::Done => break,
                SessionStatus::Active => {}
                SessionStatus::Idle => std::thread::sleep(std::time::Duration::from_millis(1)),
            }
        }
        alerts.extend(self.engine.finish());
        alerts
    }

    /// Pump until every source ends, delivering each alert to `sink` as it
    /// fires, then flush engine and sink; returns the alert count.
    pub fn drain_into(mut self, sink: &mut dyn AlertSink) -> u64 {
        let mut n = 0u64;
        loop {
            let round = self.pump();
            for alert in &round.alerts {
                n += 1;
                sink.deliver(alert);
            }
            match round.status {
                SessionStatus::Done => break,
                SessionStatus::Active => {}
                SessionStatus::Idle => std::thread::sleep(std::time::Duration::from_millis(1)),
            }
        }
        for alert in self.engine.finish() {
            n += 1;
            sink.deliver(&alert);
        }
        sink.flush();
        n
    }

    // ------------------------------------------------------------------
    // Checkpoint / resume
    // ------------------------------------------------------------------

    /// Write a checkpoint into `config.dir` every `config.every_events`
    /// events, at pump-round boundaries. Combine with a durable store
    /// source so the recorded offsets are replayable (see
    /// [`resume_at`](Self::resume_at) for the restart side).
    pub fn enable_checkpoints(&mut self, config: CheckpointConfig) {
        self.checkpoints = Some(CheckpointState {
            config,
            since_last: 0,
            last_offset: None,
            failure: None,
        });
    }

    /// Prime a resumed session with the stream position of the checkpoint
    /// its engine was [restored from](Engine::resume_from): subsequent
    /// [`offset`](Self::offset)s, [`frontier`](Self::frontier)s, and
    /// checkpoints continue the original run's numbering. Attach the event
    /// suffix with
    /// [`StoreSource::open_at`](saql_stream::source::StoreSource::open_at)
    /// at `checkpoint.offset`.
    pub fn resume_at(&mut self, checkpoint: &Checkpoint) {
        self.resume_at_position(checkpoint.offset, checkpoint.frontier);
    }

    /// [`resume_at`](Self::resume_at) from a bare position — for callers
    /// that consumed the checkpoint in [`Engine::resume_from`] and kept
    /// only its coordinates.
    pub fn resume_at_position(&mut self, offset: u64, frontier: saql_model::Timestamp) {
        self.base_offset = offset;
        self.base_frontier = frontier;
    }

    /// Take a checkpoint right now (regardless of cadence) and write it
    /// atomically into the configured directory. Requires
    /// [`enable_checkpoints`](Self::enable_checkpoints); clears any
    /// recorded cadence [`checkpoint_failure`](Self::checkpoint_failure)
    /// on success.
    pub fn checkpoint_now(&mut self) -> Result<std::path::PathBuf, EngineError> {
        let Some(ck) = self.checkpoints.as_ref() else {
            return Err(EngineError::Checkpoint(
                "checkpoints are not enabled on this session \
                 (call enable_checkpoints first)"
                    .to_string(),
            ));
        };
        let dir = ck.config.dir.clone();
        let offset = self.offset();
        let frontier = self.frontier();
        let checkpoint = self.engine.checkpoint(offset, frontier)?;
        let path = checkpoint.write_atomic(&dir)?;
        let ck = self.checkpoints.as_mut().expect("checked above");
        ck.since_last = 0;
        ck.last_offset = Some(offset);
        ck.failure = None;
        Ok(path)
    }

    /// Stream offset of the last checkpoint written by this session.
    pub fn last_checkpoint(&self) -> Option<u64> {
        self.checkpoints.as_ref().and_then(|c| c.last_offset)
    }

    /// The first cadence-checkpoint failure, if any. Automatic
    /// checkpointing pauses on failure (the stream itself keeps running);
    /// a successful [`checkpoint_now`](Self::checkpoint_now) clears it and
    /// re-arms the cadence.
    pub fn checkpoint_failure(&self) -> Option<&EngineError> {
        self.checkpoints.as_ref().and_then(|c| c.failure.as_ref())
    }

    /// Events fed to the engine so far *by this session* (excludes events
    /// a resumed run's predecessor processed; see [`offset`](Self::offset)
    /// for the global position).
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Global stream position: events processed across this run and every
    /// checkpointed predecessor — the index of the next unprocessed event
    /// in the durable store.
    pub fn offset(&self) -> u64 {
        self.base_offset + self.processed
    }

    /// Timestamp of the last event released by the merge — or, on a
    /// resumed session that hasn't passed it yet, the checkpoint's
    /// carried-over frontier.
    pub fn frontier(&self) -> saql_model::Timestamp {
        self.merge.frontier().max(self.base_frontier)
    }

    /// Whether every attached source has ended and drained.
    pub fn is_done(&self) -> bool {
        self.merge.is_done()
    }

    /// Sources still attached and not ended.
    pub fn live_sources(&self) -> usize {
        self.merge.live_sources()
    }

    /// Per-source progress: events merged, watermark, lag behind the
    /// leading source, and dropped-late counts — in attach order, detached
    /// sources included with their final counters.
    pub fn source_stats(&self) -> Vec<(SourceId, SourceStats)> {
        self.merge.source_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use saql_model::event::EventBuilder;
    use saql_model::{Duration, ProcessInfo};
    use saql_stream::source::{push_source, IterSource};
    use std::sync::Arc;

    fn start(id: u64, host: &str, ts: u64, parent: &str, child: &str) -> SharedEvent {
        Arc::new(
            EventBuilder::new(id, host, ts)
                .subject(ProcessInfo::new(1, parent, "u"))
                .starts_process(ProcessInfo::new(2, child, "u"))
                .build(),
        )
    }

    const WATCH: &str = "proc p1[\"%cmd.exe\"] start proc p2 as e\nreturn p1, p2";

    #[test]
    fn multi_source_session_merges_by_event_time() {
        for workers in [0usize, 2] {
            let mut engine = Engine::with_workers(EngineConfig::default(), workers);
            engine.register("watch", WATCH).unwrap();
            let mut session = engine.session();
            session.attach(IterSource::new(
                "h1",
                vec![
                    start(1, "h1", 10, "cmd.exe", "a.exe"),
                    start(3, "h1", 30, "cmd.exe", "c.exe"),
                ],
            ));
            session.attach(IterSource::new(
                "h2",
                vec![
                    start(2, "h2", 20, "cmd.exe", "b.exe"),
                    start(4, "h2", 40, "cmd.exe", "d.exe"),
                ],
            ));
            let mut alerts = session.drain();
            let mut children: Vec<String> = alerts
                .drain(..)
                .map(|a| a.get("p2").unwrap().to_string())
                .collect();
            children.sort();
            assert_eq!(
                children,
                vec!["a.exe", "b.exe", "c.exe", "d.exe"],
                "workers={workers}"
            );
        }
    }

    #[test]
    fn serial_session_preserves_merged_emission_order() {
        let mut engine = Engine::new(EngineConfig::default());
        engine.register("watch", WATCH).unwrap();
        let mut session = engine.session();
        session.attach(IterSource::new(
            "h1",
            vec![start(1, "h1", 100, "cmd.exe", "x.exe")],
        ));
        session.attach(IterSource::new(
            "h2",
            vec![start(2, "h2", 50, "cmd.exe", "y.exe")],
        ));
        let alerts = session.drain();
        let ts: Vec<u64> = alerts.iter().map(|a| a.ts.as_millis()).collect();
        assert_eq!(ts, vec![50, 100], "event-time order across sources");
    }

    #[test]
    fn pump_interleaves_with_query_control_plane() {
        let mut engine = Engine::new(EngineConfig::default());
        let first = engine.register("watch", WATCH).unwrap();
        let mut session = engine.session();
        session.attach(IterSource::new(
            "feed",
            (0..10u64)
                .map(|i| start(i + 1, "h", (i + 1) * 10, "cmd.exe", "p.exe"))
                .collect::<Vec<_>>(),
        ));
        let mut alerts = Vec::new();
        // Pump half the stream, swap the deployment live, pump the rest.
        while session.processed() < 5 {
            alerts.extend(session.pump_max(1).alerts);
        }
        session.engine().deregister(first).unwrap();
        let rest = session.drain();
        assert_eq!(alerts.len(), 5, "first half watched");
        assert!(rest.is_empty(), "second half unwatched");
    }

    #[test]
    fn sources_attach_and_detach_mid_pump() {
        let mut engine = Engine::new(EngineConfig::default());
        engine.register("watch", WATCH).unwrap();
        let mut session = engine.session_with(MergeConfig {
            lateness: Duration::ZERO,
            ..MergeConfig::default()
        });
        let (push, live) = push_source("live", 8);
        let live_id = session.attach(live);
        push.push(start(1, "h2", 5, "cmd.exe", "l.exe"));
        let mut got = 0;
        while got < 1 {
            got += session.pump().alerts.len();
        }
        // A second source attached mid-run; the silent live source would
        // gate it, so detach the live feed and let the iterator finish.
        session.attach(IterSource::new(
            "late-batch",
            vec![start(2, "h1", 50, "cmd.exe", "m.exe")],
        ));
        let stats = session.detach(live_id).unwrap();
        assert_eq!(stats.events, 1);
        assert!(matches!(
            session.detach(live_id),
            Err(EngineError::UnknownSource(id)) if id == live_id
        ));
        let alerts = session.drain();
        assert_eq!(alerts.len(), 1);
        drop(push);
    }

    #[test]
    fn session_source_stats_track_drops_and_progress() {
        let mut engine = Engine::new(EngineConfig::default());
        engine.register("watch", WATCH).unwrap();
        let mut session = engine.session();
        // 40ms straggler within the default 1s bound; a 8s straggler beyond
        // it is dropped-late.
        let id = session.attach(IterSource::new(
            "wobbly",
            vec![
                start(1, "h", 10_000, "cmd.exe", "a.exe"),
                start(2, "h", 9_960, "cmd.exe", "b.exe"),
                start(3, "h", 2_000, "cmd.exe", "c.exe"),
            ],
        ));
        let mut alerts = Vec::new();
        loop {
            let round = session.pump();
            alerts.extend(round.alerts);
            if round.status == SessionStatus::Done {
                break;
            }
        }
        assert_eq!(alerts.len(), 2, "straggler re-sorted, too-late dropped");
        assert_eq!(session.processed(), 2);
        assert_eq!(session.frontier().as_millis(), 10_000);
        assert!(session.is_done());
        let stats = &session.source_stats()[id.index()].1;
        assert_eq!(stats.pulled, 3);
        assert_eq!(stats.events, 2);
        assert_eq!(stats.dropped_late, 1);
        assert!(stats.done);
        alerts.extend(session.engine().finish());
        assert_eq!(alerts.len(), 2);
    }

    #[test]
    fn checkpoint_cadence_and_exact_resume() {
        let dir = std::env::temp_dir().join(format!("saql-session-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let stateful = "proc p write ip i as evt #time(1 min)\n\
                        state ss { n := count() } group by p\n\
                        return p, ss[0].n";
        let write = |id: u64, ts: u64, exe: &str| -> SharedEvent {
            Arc::new(
                EventBuilder::new(id, "h", ts)
                    .subject(ProcessInfo::new(1, exe, "u"))
                    .sends(saql_model::NetworkInfo::new(
                        "10.0.0.2", 44000, "1.1.1.1", 443, "tcp",
                    ))
                    .amount(5)
                    .build(),
            )
        };
        let events: Vec<SharedEvent> = (0..20u64)
            .map(|i| {
                write(
                    i + 1,
                    (i + 1) * 20_000,
                    if i % 2 == 0 { "a.exe" } else { "b.exe" },
                )
            })
            .collect();

        // Uninterrupted reference run.
        let mut full = Engine::new(EngineConfig::default());
        full.register("w", stateful).unwrap();
        let full_alerts: Vec<String> = full
            .run(events.clone())
            .unwrap()
            .iter()
            .map(|a| a.to_string())
            .collect();

        // Interrupted run: checkpoint every 4 events, stop after 11.
        let mut first = Engine::new(EngineConfig::default());
        first.register("w", stateful).unwrap();
        let mut session = first.session();
        session.enable_checkpoints(CheckpointConfig {
            dir: dir.clone(),
            every_events: 4,
        });
        session.attach_with(
            IterSource::new("feed", events.clone()),
            Lateness::ArrivalOrder,
        );
        while session.processed() < 11 {
            session.pump_max(1);
        }
        assert_eq!(session.checkpoint_failure(), None);
        assert_eq!(
            session.last_checkpoint(),
            Some(8),
            "cadence fired at 4 and 8"
        );
        drop(session);
        drop(first); // the "crash": engine dropped, never finished

        // Resume from the on-disk checkpoint and replay the suffix.
        let ckpt = Checkpoint::load(&dir).unwrap();
        assert_eq!(ckpt.offset, 8);
        let mut resumed = Engine::resume_from(ckpt.clone(), EngineConfig::default()).unwrap();
        assert_eq!(resumed.query_names(), vec!["w".to_string()]);
        let mut session = resumed.session();
        session.resume_at(&ckpt);
        assert_eq!(session.offset(), 8, "position carries over");
        session.attach_with(
            IterSource::new("feed", events[ckpt.offset as usize..].to_vec()),
            Lateness::ArrivalOrder,
        );
        let resumed_alerts: Vec<String> = session.drain().iter().map(|a| a.to_string()).collect();

        // The resumed stream must equal the uninterrupted run's suffix:
        // alerts from the checkpoint prefix (events 1..=8 through a fresh,
        // un-finished engine) plus the resumed alerts reproduce the full
        // run exactly, in order.
        let mut combined: Vec<String> = Vec::new();
        let mut pre = Engine::new(EngineConfig::default());
        pre.register("w", stateful).unwrap();
        let mut pre_session = pre.session();
        pre_session.attach_with(
            IterSource::new("feed", events[..8].to_vec()),
            Lateness::ArrivalOrder,
        );
        let mut fed = 0;
        while fed < 8 {
            let round = pre_session.pump_max(8);
            fed += round.events;
            combined.extend(round.alerts.iter().map(|a| a.to_string()));
        }
        combined.extend(resumed_alerts);
        assert_eq!(combined, full_alerts, "prefix + resumed suffix == full run");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_now_requires_enablement() {
        let mut engine = Engine::new(EngineConfig::default());
        let mut session = engine.session();
        let err = session.checkpoint_now().unwrap_err();
        assert!(err.to_string().contains("not enabled"), "{err}");
        assert_eq!(session.last_checkpoint(), None);
    }

    #[test]
    fn run_wrapper_matches_manual_session() {
        // The thin wrapper and an explicit arrival-order session agree even
        // on an unsorted caller-push stream (run's historic contract).
        let events = vec![
            start(1, "h", 300, "cmd.exe", "a.exe"),
            start(2, "h", 100, "cmd.exe", "b.exe"),
            start(3, "h", 200, "cmd.exe", "c.exe"),
        ];
        let mut direct = Engine::new(EngineConfig::default());
        direct.register("watch", WATCH).unwrap();
        let via_run: Vec<String> = direct
            .run(events.clone())
            .unwrap()
            .iter()
            .map(|a| a.to_string())
            .collect();
        let mut manual = Engine::new(EngineConfig::default());
        manual.register("watch", WATCH).unwrap();
        let mut session = manual.session();
        session.attach_with(IterSource::new("run", events), Lateness::ArrivalOrder);
        let via_session: Vec<String> = session.drain().iter().map(|a| a.to_string()).collect();
        assert_eq!(via_run.len(), 3);
        assert_eq!(via_run, via_session);
    }
}
