//! Source-driven run sessions: the ingestion half of the engine's control
//! plane.
//!
//! PR 3 made *queries* first-class citizens of a running engine
//! (register/deregister/pause/subscribe); a [`RunSession`] does the same for
//! *inputs*. Instead of the caller pushing a pre-merged iterator into
//! [`Engine::run`], the session owns a watermarked K-way merge of pluggable
//! [`EventSource`]s — streamed store selections, paced replays, JSON-lines
//! pipes, push-handle channels — and **pumps** the engine from them:
//! sources attach and detach mid-stream, per-source progress (events, lag,
//! dropped-late) is observable, and the merged order is a deterministic
//! function of the per-source event sequences, so serial and parallel
//! backends agree on multi-source runs.
//!
//! The classic entry points survive as thin wrappers: `Engine::run` and
//! `run_with_sink` are a session with one [`Lateness::ArrivalOrder`]
//! iterator source, which is an exact pass-through — existing callers see
//! identical behavior.

use saql_stream::merge::{
    Lateness, MergeConfig, MergeStatus, SourceId, SourceStats, WatermarkMerge,
};
use saql_stream::source::EventSource;
use saql_stream::{EventBatch, SharedEvent};

use crate::alert::Alert;
use crate::engine::Engine;
use crate::error::EngineError;
use crate::sink::AlertSink;

/// Progress of a [`RunSession::pump`] round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionStatus {
    /// Events flowed (or are imminently available).
    Active,
    /// No source had anything to deliver; live feeds are waiting on
    /// external producers. Back off briefly before pumping again.
    Idle,
    /// Every attached source reached end-of-stream and drained.
    Done,
}

/// What one pump round produced.
#[derive(Debug)]
pub struct Pump {
    /// Alerts raised by the events processed this round (on the parallel
    /// backend, alerts surface as workers deliver them — everything is in
    /// once [`Engine::finish`] ran, which [`RunSession::drain`] does).
    pub alerts: Vec<Alert>,
    /// Events fed to the engine this round.
    pub events: u64,
    /// Session progress after the round.
    pub status: SessionStatus,
}

/// A pump-driven engine run over attachable event sources.
///
/// Created by [`Engine::session`]. Attach sources, then either call
/// [`pump`](Self::pump) yourself (interleaving control-plane calls through
/// [`engine`](Self::engine) at exact stream positions) or let
/// [`drain`](Self::drain)/[`drain_into`](Self::drain_into) run the stream
/// to completion and flush.
///
/// ```
/// use saql_engine::{Engine, EngineConfig};
/// use saql_model::event::EventBuilder;
/// use saql_model::ProcessInfo;
/// use saql_stream::source::{push_source, IterSource};
/// use std::sync::Arc;
///
/// let start = |id: u64, host: &str, ts: u64| Arc::new(
///     EventBuilder::new(id, host, ts)
///         .subject(ProcessInfo::new(1, "cmd.exe", "u"))
///         .starts_process(ProcessInfo::new(2, "osql.exe", "u"))
///         .build(),
/// );
///
/// let mut engine = Engine::new(EngineConfig::default());
/// engine
///     .register("watch", "proc p1[\"%cmd.exe\"] start proc p2 as e\nreturn p1, p2")
///     .unwrap();
///
/// // One stored feed and one live push feed, merged by watermark.
/// let (push, live) = push_source("agent-live", 64);
/// let mut session = engine.session();
/// let stored = session.attach(IterSource::new(
///     "agent-stored",
///     vec![start(1, "h1", 10), start(2, "h1", 30)],
/// ));
/// session.attach(live);
///
/// push.push(start(3, "h2", 20));
/// drop(push); // close the live feed
///
/// let alerts = session.drain();
/// assert_eq!(alerts.len(), 3);
/// // The merge interleaved by event time across sources.
/// assert_eq!(
///     alerts.iter().map(|a| a.ts.as_millis()).collect::<Vec<_>>(),
///     vec![10, 20, 30],
/// );
/// # let _ = stored;
/// ```
pub struct RunSession<'e> {
    engine: &'e mut Engine,
    merge: WatermarkMerge<'e>,
    batch: Vec<SharedEvent>,
    processed: u64,
}

impl Engine {
    /// Open a source-driven run session with default merge settings.
    pub fn session(&mut self) -> RunSession<'_> {
        self.session_with(MergeConfig::default())
    }

    /// Open a source-driven run session with explicit merge settings
    /// (default lateness bound, pull batch size).
    pub fn session_with(&mut self, config: MergeConfig) -> RunSession<'_> {
        RunSession {
            engine: self,
            merge: WatermarkMerge::new(config),
            batch: Vec::new(),
            processed: 0,
        }
    }
}

impl<'e> RunSession<'e> {
    /// Attach a source under the session's default lateness bound. Sources
    /// can attach at any time, including after pumping has started.
    pub fn attach<S: EventSource + 'e>(&mut self, source: S) -> SourceId {
        self.merge.attach(Box::new(source))
    }

    /// Attach a source with an explicit ordering contract (see
    /// [`Lateness`]).
    pub fn attach_with<S: EventSource + 'e>(&mut self, source: S, lateness: Lateness) -> SourceId {
        self.merge.attach_with(Box::new(source), lateness)
    }

    /// Detach a source mid-stream: it stops feeding (buffered events are
    /// discarded) and stops gating the merge frontier; its final stats are
    /// returned. The id is retired, never reused.
    pub fn detach(&mut self, id: SourceId) -> Result<SourceStats, EngineError> {
        self.merge.detach(id).ok_or(EngineError::UnknownSource(id))
    }

    /// The engine under the session — the query control plane stays fully
    /// available mid-pump (register/deregister/pause/resume/subscribe land
    /// at the current stream position).
    pub fn engine(&mut self) -> &mut Engine {
        self.engine
    }

    /// One pump round with the default per-round event budget.
    pub fn pump(&mut self) -> Pump {
        self.pump_max(usize::MAX)
    }

    /// One pump round, feeding at most `max` merged events to the engine.
    /// Bounding the budget lets callers interleave control-plane changes at
    /// exact stream positions (see the CLI's staged lifecycle flags).
    ///
    /// Merged events are fed in [`EventBatch`]es of the engine's execution
    /// batch size ([`Engine::batch_size`] — the one
    /// [`crate::EngineConfig::batch_size`] knob), so the session pump and
    /// the vectorized execution path agree on chunking.
    ///
    /// If the engine was explicitly finished mid-session (via
    /// [`engine`](Self::engine) on a parallel backend), the round ends
    /// immediately with [`SessionStatus::Done`] — a finished engine can
    /// absorb no more events.
    pub fn pump_max(&mut self, max: usize) -> Pump {
        self.batch.clear();
        let status = self.merge.poll(&mut self.batch, max);
        let mut alerts = Vec::new();
        let mut fed = 0u64;
        for chunk in self.batch.chunks(self.engine.batch_size()) {
            match self
                .engine
                .process_batch(&EventBatch::from_events(chunk.to_vec()))
            {
                Ok(fresh) => {
                    fed += chunk.len() as u64;
                    alerts.extend(fresh);
                }
                Err(_) => {
                    self.processed += fed;
                    return Pump {
                        alerts,
                        events: fed,
                        status: SessionStatus::Done,
                    };
                }
            }
        }
        let events = fed;
        self.processed += events;
        Pump {
            alerts,
            events,
            status: match status {
                MergeStatus::Active => SessionStatus::Active,
                MergeStatus::Idle => SessionStatus::Idle,
                MergeStatus::Done => SessionStatus::Done,
            },
        }
    }

    /// Pump until every source ends, then flush the engine
    /// ([`Engine::finish`]); returns all alerts. Idle rounds (live sources
    /// waiting on producers) sleep briefly instead of spinning.
    pub fn drain(mut self) -> Vec<Alert> {
        let mut alerts = Vec::new();
        loop {
            let round = self.pump();
            alerts.extend(round.alerts);
            match round.status {
                SessionStatus::Done => break,
                SessionStatus::Active => {}
                SessionStatus::Idle => std::thread::sleep(std::time::Duration::from_millis(1)),
            }
        }
        alerts.extend(self.engine.finish());
        alerts
    }

    /// Pump until every source ends, delivering each alert to `sink` as it
    /// fires, then flush engine and sink; returns the alert count.
    pub fn drain_into(mut self, sink: &mut dyn AlertSink) -> u64 {
        let mut n = 0u64;
        loop {
            let round = self.pump();
            for alert in &round.alerts {
                n += 1;
                sink.deliver(alert);
            }
            match round.status {
                SessionStatus::Done => break,
                SessionStatus::Active => {}
                SessionStatus::Idle => std::thread::sleep(std::time::Duration::from_millis(1)),
            }
        }
        for alert in self.engine.finish() {
            n += 1;
            sink.deliver(&alert);
        }
        sink.flush();
        n
    }

    /// Events fed to the engine so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Timestamp of the last event released by the merge.
    pub fn frontier(&self) -> saql_model::Timestamp {
        self.merge.frontier()
    }

    /// Whether every attached source has ended and drained.
    pub fn is_done(&self) -> bool {
        self.merge.is_done()
    }

    /// Sources still attached and not ended.
    pub fn live_sources(&self) -> usize {
        self.merge.live_sources()
    }

    /// Per-source progress: events merged, watermark, lag behind the
    /// leading source, and dropped-late counts — in attach order, detached
    /// sources included with their final counters.
    pub fn source_stats(&self) -> Vec<(SourceId, SourceStats)> {
        self.merge.source_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use saql_model::event::EventBuilder;
    use saql_model::{Duration, ProcessInfo};
    use saql_stream::source::{push_source, IterSource};
    use std::sync::Arc;

    fn start(id: u64, host: &str, ts: u64, parent: &str, child: &str) -> SharedEvent {
        Arc::new(
            EventBuilder::new(id, host, ts)
                .subject(ProcessInfo::new(1, parent, "u"))
                .starts_process(ProcessInfo::new(2, child, "u"))
                .build(),
        )
    }

    const WATCH: &str = "proc p1[\"%cmd.exe\"] start proc p2 as e\nreturn p1, p2";

    #[test]
    fn multi_source_session_merges_by_event_time() {
        for workers in [0usize, 2] {
            let mut engine = Engine::with_workers(EngineConfig::default(), workers);
            engine.register("watch", WATCH).unwrap();
            let mut session = engine.session();
            session.attach(IterSource::new(
                "h1",
                vec![
                    start(1, "h1", 10, "cmd.exe", "a.exe"),
                    start(3, "h1", 30, "cmd.exe", "c.exe"),
                ],
            ));
            session.attach(IterSource::new(
                "h2",
                vec![
                    start(2, "h2", 20, "cmd.exe", "b.exe"),
                    start(4, "h2", 40, "cmd.exe", "d.exe"),
                ],
            ));
            let mut alerts = session.drain();
            let mut children: Vec<String> = alerts
                .drain(..)
                .map(|a| a.get("p2").unwrap().to_string())
                .collect();
            children.sort();
            assert_eq!(
                children,
                vec!["a.exe", "b.exe", "c.exe", "d.exe"],
                "workers={workers}"
            );
        }
    }

    #[test]
    fn serial_session_preserves_merged_emission_order() {
        let mut engine = Engine::new(EngineConfig::default());
        engine.register("watch", WATCH).unwrap();
        let mut session = engine.session();
        session.attach(IterSource::new(
            "h1",
            vec![start(1, "h1", 100, "cmd.exe", "x.exe")],
        ));
        session.attach(IterSource::new(
            "h2",
            vec![start(2, "h2", 50, "cmd.exe", "y.exe")],
        ));
        let alerts = session.drain();
        let ts: Vec<u64> = alerts.iter().map(|a| a.ts.as_millis()).collect();
        assert_eq!(ts, vec![50, 100], "event-time order across sources");
    }

    #[test]
    fn pump_interleaves_with_query_control_plane() {
        let mut engine = Engine::new(EngineConfig::default());
        let first = engine.register("watch", WATCH).unwrap();
        let mut session = engine.session();
        session.attach(IterSource::new(
            "feed",
            (0..10u64)
                .map(|i| start(i + 1, "h", (i + 1) * 10, "cmd.exe", "p.exe"))
                .collect::<Vec<_>>(),
        ));
        let mut alerts = Vec::new();
        // Pump half the stream, swap the deployment live, pump the rest.
        while session.processed() < 5 {
            alerts.extend(session.pump_max(1).alerts);
        }
        session.engine().deregister(first).unwrap();
        let rest = session.drain();
        assert_eq!(alerts.len(), 5, "first half watched");
        assert!(rest.is_empty(), "second half unwatched");
    }

    #[test]
    fn sources_attach_and_detach_mid_pump() {
        let mut engine = Engine::new(EngineConfig::default());
        engine.register("watch", WATCH).unwrap();
        let mut session = engine.session_with(MergeConfig {
            lateness: Duration::ZERO,
            ..MergeConfig::default()
        });
        let (push, live) = push_source("live", 8);
        let live_id = session.attach(live);
        push.push(start(1, "h2", 5, "cmd.exe", "l.exe"));
        let mut got = 0;
        while got < 1 {
            got += session.pump().alerts.len();
        }
        // A second source attached mid-run; the silent live source would
        // gate it, so detach the live feed and let the iterator finish.
        session.attach(IterSource::new(
            "late-batch",
            vec![start(2, "h1", 50, "cmd.exe", "m.exe")],
        ));
        let stats = session.detach(live_id).unwrap();
        assert_eq!(stats.events, 1);
        assert!(matches!(
            session.detach(live_id),
            Err(EngineError::UnknownSource(id)) if id == live_id
        ));
        let alerts = session.drain();
        assert_eq!(alerts.len(), 1);
        drop(push);
    }

    #[test]
    fn session_source_stats_track_drops_and_progress() {
        let mut engine = Engine::new(EngineConfig::default());
        engine.register("watch", WATCH).unwrap();
        let mut session = engine.session();
        // 40ms straggler within the default 1s bound; a 8s straggler beyond
        // it is dropped-late.
        let id = session.attach(IterSource::new(
            "wobbly",
            vec![
                start(1, "h", 10_000, "cmd.exe", "a.exe"),
                start(2, "h", 9_960, "cmd.exe", "b.exe"),
                start(3, "h", 2_000, "cmd.exe", "c.exe"),
            ],
        ));
        let mut alerts = Vec::new();
        loop {
            let round = session.pump();
            alerts.extend(round.alerts);
            if round.status == SessionStatus::Done {
                break;
            }
        }
        assert_eq!(alerts.len(), 2, "straggler re-sorted, too-late dropped");
        assert_eq!(session.processed(), 2);
        assert_eq!(session.frontier().as_millis(), 10_000);
        assert!(session.is_done());
        let stats = &session.source_stats()[id.index()].1;
        assert_eq!(stats.pulled, 3);
        assert_eq!(stats.events, 2);
        assert_eq!(stats.dropped_late, 1);
        assert!(stats.done);
        alerts.extend(session.engine().finish());
        assert_eq!(alerts.len(), 2);
    }

    #[test]
    fn run_wrapper_matches_manual_session() {
        // The thin wrapper and an explicit arrival-order session agree even
        // on an unsorted caller-push stream (run's historic contract).
        let events = vec![
            start(1, "h", 300, "cmd.exe", "a.exe"),
            start(2, "h", 100, "cmd.exe", "b.exe"),
            start(3, "h", 200, "cmd.exe", "c.exe"),
        ];
        let mut direct = Engine::new(EngineConfig::default());
        direct.register("watch", WATCH).unwrap();
        let via_run: Vec<String> = direct
            .run(events.clone())
            .unwrap()
            .iter()
            .map(|a| a.to_string())
            .collect();
        let mut manual = Engine::new(EngineConfig::default());
        manual.register("watch", WATCH).unwrap();
        let mut session = manual.session();
        session.attach_with(IterSource::new("run", events), Lateness::ArrivalOrder);
        let via_session: Vec<String> = session.drain().iter().map(|a| a.to_string()).collect();
        assert_eq!(via_run.len(), 3);
        assert_eq!(via_run, via_session);
    }
}
