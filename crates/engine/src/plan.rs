//! Compile-once query plans: flat register-based expression programs.
//!
//! The resolved AST ([`saql_lang::resolve`]) says *what* every name refers
//! to; this module lowers each resolved expression into a [`Program`] — a
//! flat op array over virtual registers plus a constant pool — and bundles
//! a query's programs into its [`QueryPlan`]. At runtime the engine
//! executes programs with [`crate::eval::run_program`] against an
//! [`ExecCtx`] of fixed slot arrays: no per-evaluation `HashMap`s, no
//! string probing, no AST recursion on the per-event path.
//!
//! The tree-walking interpreter ([`crate::eval::eval`]) stays alive as the
//! differential-testing oracle; both execution paths share one binary-op
//! kernel ([`crate::eval`]'s `combine`), so they cannot drift on operator
//! semantics.

use std::fmt::Write as _;

use saql_lang::ast::BinOp;
use saql_lang::resolve::{Binding, ClusterField, ResolvedExpr, ResolvedGroupKey, ResolvedQuery};
use saql_lang::semantic::CheckedQuery;
use saql_model::{AttrId, AttrValue, Entity, EntityType, Event, ProcessInfo};

use crate::eval::{ClusterOutcome, StateSlots};
use crate::value::Value;

/// One instruction of a compiled expression program. `dst` is always a
/// fresh register (straight-line SSA), so programs need no control flow:
/// `&&`/`||` lower to an eager [`Op::Bin`] whose kernel reproduces the
/// interpreter's short-circuit *values* exactly (evaluation is total and
/// effect-free, so evaluating both sides cannot change the result).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Op {
    /// `r[dst] = consts[idx]` (literals, the empty set).
    Const { dst: u16, idx: u16 },
    /// `r[dst] = Missing` (statically unresolvable reference).
    Missing { dst: u16 },
    /// `r[dst] = id of the event in alias slot` (bare alias reference).
    EventId { dst: u16, slot: u16 },
    /// `r[dst] = event-level attribute of the event in alias slot`.
    EventAttr { dst: u16, slot: u16, attr: AttrId },
    /// `r[dst] = attribute of the entity in variable slot`.
    EntityAttr { dst: u16, slot: u16, attr: AttrId },
    /// `r[dst] = state field, `back` windows before the current one.
    State { dst: u16, back: u16, field: u16 },
    /// `r[dst] = group-key value of the group in scope`.
    GroupKey { dst: u16, slot: u16 },
    /// `r[dst] = invariant variable of the group in scope`.
    Invariant { dst: u16, slot: u16 },
    /// `r[dst] = cluster outcome field of the group in scope`.
    Cluster { dst: u16, field: ClusterField },
    /// Logical not (`Missing` propagates).
    Not { dst: u16, src: u16 },
    /// Numeric negation.
    Neg { dst: u16, src: u16 },
    /// `|x|`: set cardinality / numeric absolute value.
    Card { dst: u16, src: u16 },
    /// Binary operator through the shared kernel.
    Bin {
        dst: u16,
        op: BinOp,
        lhs: u16,
        rhs: u16,
    },
}

/// A compiled expression: op array + constant pool. The last op's `dst`
/// holds the result.
#[derive(Debug, Clone, Default)]
pub struct Program {
    pub ops: Vec<Op>,
    pub consts: Vec<Value>,
    /// Registers the program needs (callers size one reusable scratch).
    pub regs: usize,
}

impl Op {
    /// The destination register this op writes.
    pub fn dst(&self) -> u16 {
        match *self {
            Op::Const { dst, .. }
            | Op::Missing { dst }
            | Op::EventId { dst, .. }
            | Op::EventAttr { dst, .. }
            | Op::EntityAttr { dst, .. }
            | Op::State { dst, .. }
            | Op::GroupKey { dst, .. }
            | Op::Invariant { dst, .. }
            | Op::Cluster { dst, .. }
            | Op::Not { dst, .. }
            | Op::Neg { dst, .. }
            | Op::Card { dst, .. }
            | Op::Bin { dst, .. } => dst,
        }
    }
}

impl Program {
    /// Lower one resolved expression.
    pub fn compile(expr: &ResolvedExpr) -> Program {
        let mut p = Program::default();
        let result = p.emit(expr);
        debug_assert_eq!(result as usize + 1, p.regs);
        p
    }

    fn alloc(&mut self) -> u16 {
        let r = self.regs as u16;
        self.regs += 1;
        r
    }

    fn push_const(&mut self, v: Value) -> u16 {
        // The pool is tiny; linear dedup keeps repeated literals shared.
        if let Some(i) = self.consts.iter().position(|c| match (c, &v) {
            (Value::Attr(a), Value::Attr(b)) => a.loose_eq(b) && a.type_name() == b.type_name(),
            (Value::Set(a), Value::Set(b)) => a == b,
            _ => false,
        }) {
            return i as u16;
        }
        self.consts.push(v);
        (self.consts.len() - 1) as u16
    }

    fn emit(&mut self, expr: &ResolvedExpr) -> u16 {
        match expr {
            ResolvedExpr::Const(v) => {
                let idx = self.push_const(Value::Attr(v.clone()));
                let dst = self.alloc();
                self.ops.push(Op::Const { dst, idx });
                dst
            }
            ResolvedExpr::EmptySet => {
                let idx = self.push_const(Value::empty_set());
                let dst = self.alloc();
                self.ops.push(Op::Const { dst, idx });
                dst
            }
            ResolvedExpr::Load(binding) => {
                let dst = self.alloc();
                self.ops.push(match *binding {
                    Binding::EventAlias { slot } => Op::EventId {
                        dst,
                        slot: slot as u16,
                    },
                    Binding::EventAttr { slot, attr } => Op::EventAttr {
                        dst,
                        slot: slot as u16,
                        attr,
                    },
                    Binding::EntityAttr { slot, attr } => Op::EntityAttr {
                        dst,
                        slot: slot as u16,
                        attr,
                    },
                    Binding::State { back, field } => Op::State {
                        dst,
                        back: back as u16,
                        field: field as u16,
                    },
                    Binding::GroupKey { slot } => Op::GroupKey {
                        dst,
                        slot: slot as u16,
                    },
                    Binding::Invariant { slot } => Op::Invariant {
                        dst,
                        slot: slot as u16,
                    },
                    Binding::Cluster { field } => Op::Cluster { dst, field },
                    Binding::Missing => Op::Missing { dst },
                });
                dst
            }
            ResolvedExpr::Unary { op, expr } => {
                let src = self.emit(expr);
                let dst = self.alloc();
                self.ops.push(match op {
                    saql_lang::ast::UnaryOp::Not => Op::Not { dst, src },
                    saql_lang::ast::UnaryOp::Neg => Op::Neg { dst, src },
                });
                dst
            }
            ResolvedExpr::Card(expr) => {
                let src = self.emit(expr);
                let dst = self.alloc();
                self.ops.push(Op::Card { dst, src });
                dst
            }
            ResolvedExpr::Binary { op, lhs, rhs } => {
                let l = self.emit(lhs);
                let r = self.emit(rhs);
                let dst = self.alloc();
                self.ops.push(Op::Bin {
                    dst,
                    op: *op,
                    lhs: l,
                    rhs: r,
                });
                dst
            }
        }
    }

    /// Program listing for `saql explain` (one op per line, indented).
    pub fn listing(&self, plan: &QueryPlan) -> String {
        let mut out = String::new();
        for op in &self.ops {
            let _ = writeln!(out, "    {}", self.render_op(op, plan));
        }
        out
    }

    fn render_op(&self, op: &Op, plan: &QueryPlan) -> String {
        let alias = |slot: u16| -> &str {
            plan.aliases
                .get(slot as usize)
                .map(String::as_str)
                .unwrap_or("?")
        };
        let var = |slot: u16| -> &str {
            plan.entity_vars
                .get(slot as usize)
                .map(|(v, _)| v.as_str())
                .unwrap_or("?")
        };
        match *op {
            Op::Const { dst, idx } => format!("r{dst} <- const {}", self.consts[idx as usize]),
            Op::Missing { dst } => format!("r{dst} <- missing"),
            Op::EventId { dst, slot } => {
                format!("r{dst} <- event[{slot}:{}].id", alias(slot))
            }
            Op::EventAttr { dst, slot, attr } => {
                format!("r{dst} <- event[{slot}:{}].{}", alias(slot), attr.name())
            }
            Op::EntityAttr { dst, slot, attr } => {
                format!("r{dst} <- entity[{slot}:{}].{}", var(slot), attr.name())
            }
            Op::State { dst, back, field } => {
                let name = plan
                    .state_field_names
                    .get(field as usize)
                    .map(String::as_str)
                    .unwrap_or("?");
                format!("r{dst} <- state[{back}].{field}:{name}")
            }
            Op::GroupKey { dst, slot } => {
                let spelled = plan
                    .group_keys
                    .get(slot as usize)
                    .and_then(|k| k.spellings.first())
                    .map(String::as_str)
                    .unwrap_or("?");
                format!("r{dst} <- group_key[{slot}:{spelled}]")
            }
            Op::Invariant { dst, slot } => {
                let name = plan
                    .invariant_vars
                    .get(slot as usize)
                    .map(String::as_str)
                    .unwrap_or("?");
                format!("r{dst} <- invariant[{slot}:{name}]")
            }
            Op::Cluster { dst, field } => format!("r{dst} <- cluster.{}", field.name()),
            Op::Not { dst, src } => format!("r{dst} <- !r{src}"),
            Op::Neg { dst, src } => format!("r{dst} <- -r{src}"),
            Op::Card { dst, src } => format!("r{dst} <- |r{src}|"),
            Op::Bin { dst, op, lhs, rhs } => {
                format!("r{dst} <- r{lhs} {} r{rhs}", op.symbol())
            }
        }
    }
}

/// A bound entity in an execution context. The stateful per-event path
/// binds the subject directly from the event (no `Entity::Process` clone).
#[derive(Debug, Clone, Copy)]
pub enum EntityBind<'a> {
    Entity(&'a Entity),
    Subject(&'a ProcessInfo),
}

impl EntityBind<'_> {
    /// Owned attribute by id (strings clone the shared `Arc` handle).
    pub fn attr_value(&self, id: AttrId) -> Option<AttrValue> {
        match self {
            EntityBind::Entity(e) => e.attr_value(id),
            EntityBind::Subject(p) => p.attr_value(id),
        }
    }
}

/// The fixed slot arrays a program executes against — the compiled
/// counterpart of [`crate::eval::Scope`]. Slices a context does not supply
/// stay empty; loads from them yield `Missing`, exactly like the
/// interpreter's scope probing.
pub struct ExecCtx<'a> {
    /// Matched events by alias slot.
    pub events: &'a [Option<&'a Event>],
    /// Bound entities by variable slot.
    pub entities: &'a [Option<EntityBind<'a>>],
    /// Group-key values by key slot (window-close contexts).
    pub group_keys: &'a [AttrValue],
    /// State history by `(back, field)` index.
    pub states: &'a dyn StateSlots,
    /// Invariant variables by slot.
    pub invariants: &'a [Value],
    /// Cluster outcome of the group in scope.
    pub cluster: Option<ClusterOutcome>,
}

impl<'a> ExecCtx<'a> {
    /// A context that resolves nothing (invariant initializers).
    pub fn empty() -> ExecCtx<'a> {
        ExecCtx {
            events: &[],
            entities: &[],
            group_keys: &[],
            states: &crate::eval::NoSlots,
            invariants: &[],
            cluster: None,
        }
    }
}

/// The compiled execution plan of one query: slot tables plus every
/// expression lowered to a [`Program`].
#[derive(Debug, Clone, Default)]
pub struct QueryPlan {
    /// Event-alias slot table (slot = pattern index).
    pub aliases: Vec<String>,
    /// Entity-variable slot table (the matcher binds by these slots).
    pub entity_vars: Vec<(String, EntityType)>,
    /// Per pattern: (subject slot, object slot).
    pub pattern_slots: Vec<(usize, usize)>,
    /// Resolved group-by keys (sources + group-context spellings).
    pub group_keys: Vec<ResolvedGroupKey>,
    /// State-field names, in declaration order (for listings).
    pub state_field_names: Vec<String>,
    /// State-field argument programs (event context), in field order.
    pub field_programs: Vec<Program>,
    /// Invariant statements: (variable slot, is-init, program).
    pub invariant_programs: Vec<(usize, bool, Program)>,
    /// Invariant-variable names by slot.
    pub invariant_vars: Vec<String>,
    /// Cluster point programs (group context).
    pub cluster_programs: Vec<Program>,
    /// Alert-condition program.
    pub alert: Option<Program>,
    /// Return items: (label, program).
    pub ret: Vec<(String, Program)>,
    /// Largest register file any program needs (size one shared scratch).
    pub scratch_regs: usize,
}

impl QueryPlan {
    /// Compile the plan of a checked query.
    pub fn compile(checked: &CheckedQuery) -> QueryPlan {
        let r: &ResolvedQuery = &checked.resolved;
        let mut plan = QueryPlan {
            aliases: r.aliases.clone(),
            entity_vars: r.entity_vars.clone(),
            pattern_slots: r.pattern_slots.clone(),
            group_keys: r.group_keys.clone(),
            state_field_names: r.state_fields.iter().map(|f| f.name.clone()).collect(),
            field_programs: r
                .state_fields
                .iter()
                .map(|f| Program::compile(&f.arg))
                .collect(),
            invariant_programs: r
                .invariant_stmts
                .iter()
                .map(|s| (s.slot, s.init, Program::compile(&s.expr)))
                .collect(),
            invariant_vars: r.invariant_vars.clone(),
            cluster_programs: r.cluster_points.iter().map(Program::compile).collect(),
            alert: r.alert.as_ref().map(Program::compile),
            ret: r
                .ret
                .iter()
                .map(|item| (item.label.clone(), Program::compile(&item.expr)))
                .collect(),
            scratch_regs: 0,
        };
        plan.scratch_regs = plan.programs().map(|p| p.regs).max().unwrap_or(0);
        plan
    }

    /// The plan-shape half of the partitionability analysis: whether every
    /// stateful evaluation this plan performs is scoped to a single group,
    /// so the group population can be hash-sharded across workers with no
    /// cross-shard state. `Err` names the coupling that forbids it.
    /// Query-level conditions (kind, distinct, pipeline role, exec mode)
    /// are layered on top by `RunningQuery::partition_decision`.
    pub fn key_partition_safe(&self) -> Result<(), &'static str> {
        if self.group_keys.is_empty() {
            return Err("no `group by`: all state lives in one global group");
        }
        if self.field_programs.is_empty() {
            return Err("no keyed state to shard");
        }
        if !self.cluster_programs.is_empty() {
            return Err("cluster stage compares all groups at window close");
        }
        if !self.invariant_programs.is_empty() {
            return Err("invariant models train across the whole window close");
        }
        Ok(())
    }

    /// Every program of the plan (for sizing and listings).
    pub fn programs(&self) -> impl Iterator<Item = &Program> {
        self.field_programs
            .iter()
            .chain(self.invariant_programs.iter().map(|(_, _, p)| p))
            .chain(self.cluster_programs.iter())
            .chain(self.alert.iter())
            .chain(self.ret.iter().map(|(_, p)| p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::run_program;

    fn plan(src: &str) -> QueryPlan {
        QueryPlan::compile(&saql_lang::compile(src).unwrap())
    }

    #[test]
    fn literal_program_evaluates_without_context() {
        let p = plan("proc p start proc q as e\nalert 1 + 2 * 3 > 5\nreturn p");
        let alert = p.alert.as_ref().unwrap();
        let mut scratch = Vec::new();
        let v = run_program(alert, &ExecCtx::empty(), &mut scratch);
        assert!(v.truthy());
        // Constant pool deduplicates repeated literals.
        let q = Program::compile(&ResolvedExpr::Binary {
            op: BinOp::Add,
            lhs: Box::new(ResolvedExpr::Const(AttrValue::Int(7))),
            rhs: Box::new(ResolvedExpr::Const(AttrValue::Int(7))),
        });
        assert_eq!(q.consts.len(), 1);
    }

    #[test]
    fn slot_tables_follow_declaration_order() {
        let p = plan(
            "proc a start proc b as e1\nproc b write ip i as e2\nwith e1 -> e2\nreturn a, b, i",
        );
        assert_eq!(p.aliases, vec!["e1", "e2"]);
        assert_eq!(p.pattern_slots, vec![(0, 1), (1, 2)]);
        assert_eq!(p.scratch_regs, 1, "single-load return items");
        assert_eq!(p.ret.len(), 3);
    }

    #[test]
    fn listing_is_deterministic_and_named() {
        let p = plan(
            "proc p write ip i as evt #time(10 min)\nstate[3] ss { avg_amount := avg(evt.amount) } group by p\nalert ss[0].avg_amount > 10000\nreturn p, ss[0].avg_amount",
        );
        let alert = p.alert.as_ref().unwrap().listing(&p);
        assert!(alert.contains("state[0].0:avg_amount"), "{alert}");
        assert!(alert.contains("const 10000"), "{alert}");
        assert!(alert.contains(" > "), "{alert}");
        let key = p.ret[0].1.listing(&p);
        assert!(key.contains("group_key[0:p]"), "{key}");
    }
}
