//! Shard workers for the parallel runtime: each shard owns a disjoint
//! subset of scheduler groups and drives them with its own
//! [`Scheduler`].
//!
//! The unit of distribution is the *compatibility group*, not the query:
//! splitting a group across shards would force every shard to run its own
//! master check for the same shape, duplicating exactly the work the
//! master–dependent-query scheme exists to share. The runtime therefore
//! assigns whole groups round-robin, and every shard observes the full
//! event stream (group state depends on stream time, so windows must
//! advance on every shard regardless of which groups matched).
//!
//! Shards are plain values until the runtime moves them onto worker
//! threads, which is why this module carries the compile-time guarantee
//! that all group state — queries, matchers, window drivers, invariant
//! models — is [`Send`].

use crossbeam::channel::{Receiver, Sender};
use saql_stream::EventBatch;

use crate::query::{QueryStats, RunningQuery};
use crate::scheduler::{Scheduler, SchedulerStats};
use crate::sink::{AlertSink, ChannelSink};

/// One worker's slice of the engine: a scheduler over a subset of groups.
pub struct Shard {
    id: usize,
    scheduler: Scheduler,
}

/// End-of-stream summary a shard sends back to the runtime on drain.
#[derive(Debug)]
pub struct ShardReport {
    /// Which shard produced this report.
    pub id: usize,
    /// The shard scheduler's execution counters.
    pub stats: SchedulerStats,
    /// Per-query `(name, stats)` for the queries this shard hosted.
    pub query_stats: Vec<(String, QueryStats)>,
    /// Total runtime errors across the shard's queries.
    pub error_count: u64,
    /// Recent runtime error messages, `name: message` formatted.
    pub recent_errors: Vec<String>,
    /// Alerts this shard failed to forward (receiver hung up).
    pub dropped_alerts: u64,
}

impl Shard {
    pub fn new(id: usize) -> Self {
        Shard {
            id,
            scheduler: Scheduler::new(),
        }
    }

    pub fn id(&self) -> usize {
        self.id
    }

    /// Host a query on this shard. Compatible queries assigned to the same
    /// shard regroup under one master, exactly as in the serial scheduler.
    pub fn assign(&mut self, query: RunningQuery) {
        self.scheduler.add(query);
    }

    /// Compatibility groups hosted here.
    pub fn group_count(&self) -> usize {
        self.scheduler.group_count()
    }

    /// Queries hosted here.
    pub fn query_count(&self) -> usize {
        self.scheduler.query_count()
    }

    /// Push one batch through the shard's groups, forwarding every alert.
    pub fn process_batch(&mut self, batch: &EventBatch, sink: &mut dyn AlertSink) {
        for event in batch {
            for alert in self.scheduler.process(event) {
                sink.deliver(&alert);
            }
        }
    }

    /// End of stream: flush remaining windows and summarize.
    pub fn finish(mut self, sink: &mut dyn AlertSink) -> ShardReport {
        for alert in self.scheduler.finish() {
            sink.deliver(&alert);
        }
        sink.flush();
        ShardReport {
            id: self.id,
            stats: self.scheduler.stats(),
            query_stats: self
                .scheduler
                .queries()
                .map(|q| (q.name().to_string(), q.stats()))
                .collect(),
            error_count: self.scheduler.queries().map(|q| q.errors().total()).sum(),
            recent_errors: self
                .scheduler
                .queries()
                .flat_map(|q| {
                    q.errors()
                        .recent()
                        .map(move |e| format!("{}: {e}", q.name()))
                })
                .collect(),
            dropped_alerts: 0,
        }
    }
}

/// The worker-thread body: drain batches until the runtime closes the
/// channel, then flush and report. The runtime owns thread spawning; this
/// stays a plain function so tests can drive a worker synchronously.
pub(crate) fn run_worker(
    mut shard: Shard,
    batches: Receiver<EventBatch>,
    mut sink: ChannelSink,
    reports: Sender<ShardReport>,
) {
    while let Ok(batch) = batches.recv() {
        shard.process_batch(&batch, &mut sink);
    }
    let mut report = shard.finish(&mut sink);
    report.dropped_alerts = sink.dropped;
    // The runtime may already be gone (engine dropped mid-stream); a lost
    // report is fine then.
    let _ = reports.send(report);
}

// The architectural unlock this module asserts: a shard (scheduler groups
// and everything inside them) can move to another thread.
#[allow(dead_code)]
fn assert_send<T: Send>() {}
const _: fn() = assert_send::<Shard>;
const _: fn() = assert_send::<ShardReport>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QueryConfig;
    use crate::sink::CollectSink;
    use saql_model::event::EventBuilder;
    use saql_model::ProcessInfo;
    use saql_stream::SharedEvent;
    use std::sync::Arc;

    fn rq(name: &str, src: &str) -> RunningQuery {
        RunningQuery::compile(name, src, QueryConfig::default()).unwrap()
    }

    fn start(id: u64, ts: u64, parent: &str, child: &str) -> SharedEvent {
        Arc::new(
            EventBuilder::new(id, "h", ts)
                .subject(ProcessInfo::new(1, parent, "u"))
                .starts_process(ProcessInfo::new(2, child, "u"))
                .build(),
        )
    }

    #[test]
    fn shard_processes_batches_and_reports() {
        let mut shard = Shard::new(3);
        shard.assign(rq(
            "q",
            "proc p1[\"%cmd.exe\"] start proc p2 as e\nreturn p1, p2",
        ));
        assert_eq!(shard.group_count(), 1);
        let mut batch = EventBatch::with_capacity(4);
        batch.push(start(1, 10, "cmd.exe", "osql.exe"));
        batch.push(start(2, 20, "explorer.exe", "notepad.exe"));
        let mut sink = CollectSink::default();
        shard.process_batch(&batch, &mut sink);
        assert_eq!(sink.alerts.len(), 1);
        let report = shard.finish(&mut sink);
        assert_eq!(report.id, 3);
        assert_eq!(report.stats.events, 2);
        assert_eq!(report.query_stats.len(), 1);
        assert_eq!(report.error_count, 0);
    }

    #[test]
    fn worker_drains_channel_then_reports() {
        let mut shard = Shard::new(0);
        shard.assign(rq("q", "proc p start proc q as e\nreturn p, q"));
        let (batch_tx, batch_rx) = crossbeam::channel::bounded::<EventBatch>(4);
        let (sink, alerts_rx) = ChannelSink::new(64);
        let (report_tx, report_rx) = crossbeam::channel::bounded::<ShardReport>(1);
        let handle = std::thread::spawn(move || run_worker(shard, batch_rx, sink, report_tx));
        let mut batch = EventBatch::with_capacity(2);
        batch.push(start(1, 10, "a.exe", "b.exe"));
        batch_tx.send(batch).unwrap();
        drop(batch_tx);
        handle.join().unwrap();
        let alerts: Vec<_> = alerts_rx.into_iter().collect();
        assert_eq!(alerts.len(), 1);
        let report = report_rx.recv().unwrap();
        assert_eq!(report.stats.events, 1);
        assert_eq!(report.dropped_alerts, 0);
    }
}
