//! Shard workers for the parallel runtime: each shard owns a disjoint
//! subset of scheduler groups and drives them with its own
//! [`Scheduler`].
//!
//! The unit of distribution is the *compatibility group*, not the query:
//! splitting a group across shards would force every shard to run its own
//! master check for the same shape, duplicating exactly the work the
//! master–dependent-query scheme exists to share. The runtime therefore
//! assigns whole groups round-robin, and every shard observes the full
//! event stream (group state depends on stream time, so windows must
//! advance on every shard regardless of which groups matched).
//!
//! Shards are plain values until the runtime moves them onto worker
//! threads, which is why this module carries the compile-time guarantee
//! that all group state — queries, matchers, window drivers, invariant
//! models — is [`Send`].

use crossbeam::channel::{Receiver, Sender};
use saql_stream::EventBatch;

use crate::query::{QueryId, QuerySnapshot, QueryStats, RunningQuery};
use crate::scheduler::{Scheduler, SchedulerStats};
use crate::sink::{AlertSink, ChannelSink};

/// A query-lifecycle operation applied by a shard worker between batches.
///
/// Control messages travel on the same bounded channel as event batches, so
/// each worker observes a *total order* of batches and controls: everything
/// dispatched before the control is processed first, everything after is
/// processed later. That is what makes mid-stream lifecycle changes
/// deterministic — the operation takes effect at an exact stream position,
/// identical to performing it on the serial scheduler at that position.
pub enum ControlMsg {
    /// Host a new query (it joins an existing compatibility group on this
    /// shard when its compat key matches, sharing that group's master).
    AddQuery(Box<RunningQuery>),
    /// Deregister a query: flush its pending window state to the alert
    /// sink, then drop it (dissolving its group if it was the last member).
    RemoveQuery(QueryId),
    /// Detach a query from the stream until resumed.
    Pause(QueryId),
    /// Re-attach a paused query.
    Resume(QueryId),
    /// Capture every hosted query's dynamic state and send it back on the
    /// reply channel. Because this travels in-band with event batches, the
    /// snapshot lands at an exact stream position (engine checkpoints).
    Snapshot(Sender<Vec<(QueryId, QuerySnapshot)>>),
    /// Flush one query's open windows *in place* (it stays registered) and
    /// send the flushed alerts back on the reply channel — the pipeline
    /// layered drain. Alerts travel on the reply, not the shard sink, so
    /// the coordinator can route them to dependents at a known point.
    Flush(QueryId, Sender<Vec<crate::alert::Alert>>),
    /// Pure barrier: acknowledge once every batch queued before this
    /// message has been processed. The pipeline wiring syncs before
    /// punctuating a derived stream — a punctuation must not outrun alerts
    /// still being computed on the workers.
    Sync(Sender<()>),
}

impl std::fmt::Debug for ControlMsg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            // A running query is a live pipeline, not a printable value.
            ControlMsg::AddQuery(q) => write!(f, "AddQuery({} `{}`)", q.id(), q.name()),
            ControlMsg::RemoveQuery(id) => write!(f, "RemoveQuery({id})"),
            ControlMsg::Pause(id) => write!(f, "Pause({id})"),
            ControlMsg::Resume(id) => write!(f, "Resume({id})"),
            ControlMsg::Snapshot(_) => write!(f, "Snapshot"),
            ControlMsg::Flush(id, _) => write!(f, "Flush({id})"),
            ControlMsg::Sync(_) => write!(f, "Sync"),
        }
    }
}

/// What the runtime ships to a shard worker: event batches interleaved with
/// control messages, processed strictly in arrival order.
#[derive(Debug)]
pub enum ShardMsg {
    Events(EventBatch),
    Control(ControlMsg),
}

/// One worker's slice of the engine: a scheduler over a subset of groups.
pub struct Shard {
    id: usize,
    scheduler: Scheduler,
}

/// End-of-stream summary a shard sends back to the runtime on drain.
#[derive(Debug)]
pub struct ShardReport {
    /// Which shard produced this report.
    pub id: usize,
    /// The shard scheduler's execution counters.
    pub stats: SchedulerStats,
    /// Per-query `(id, name, stats)` for the queries this shard hosted.
    /// The id lets the runtime fold the per-shard rows of a partitioned
    /// query (one replica per shard, same id) back into one.
    pub query_stats: Vec<(QueryId, String, QueryStats)>,
    /// Total runtime errors across the shard's queries.
    pub error_count: u64,
    /// Recent runtime error messages, `name: message` formatted.
    pub recent_errors: Vec<String>,
    /// Alerts this shard failed to forward (receiver hung up).
    pub dropped_alerts: u64,
    /// Forwarding drops attributed to the emitting query.
    pub dropped_by_query: Vec<(QueryId, u64)>,
    /// Per-event latency histogram (ns), when tracking was enabled.
    pub latency: Option<saql_analytics::Histogram>,
}

impl Shard {
    pub fn new(id: usize) -> Self {
        Shard {
            id,
            scheduler: Scheduler::new(),
        }
    }

    pub fn id(&self) -> usize {
        self.id
    }

    /// Record per-event processing latency on this shard's scheduler
    /// (forces the per-event execution path; see
    /// [`Scheduler::enable_latency_tracking`]).
    pub fn enable_latency_tracking(&mut self) {
        self.scheduler.enable_latency_tracking();
    }

    /// Host a query on this shard. Compatible queries assigned to the same
    /// shard regroup under one master, exactly as in the serial scheduler.
    pub fn assign(&mut self, query: RunningQuery) {
        self.scheduler.add(query);
    }

    /// Compatibility groups hosted here.
    pub fn group_count(&self) -> usize {
        self.scheduler.group_count()
    }

    /// Queries hosted here.
    pub fn query_count(&self) -> usize {
        self.scheduler.query_count()
    }

    /// Push one batch through the shard's groups batch-at-a-time (see
    /// [`Scheduler::process_batch`]), forwarding every alert.
    pub fn process_batch(&mut self, batch: &EventBatch, sink: &mut dyn AlertSink) {
        for alert in self.scheduler.process_batch(batch) {
            sink.deliver(&alert);
        }
    }

    /// Apply one control message at the current batch boundary. Removal
    /// flushes the departing query's window state through the sink, so a
    /// deregistered query's last alerts are delivered, not lost.
    pub fn apply(&mut self, msg: ControlMsg, sink: &mut dyn AlertSink) {
        match msg {
            ControlMsg::AddQuery(query) => {
                self.scheduler.add(*query);
            }
            ControlMsg::RemoveQuery(id) => {
                if let Some(mut query) = self.scheduler.remove(id) {
                    for alert in query.finish() {
                        sink.deliver(&alert);
                    }
                }
            }
            ControlMsg::Pause(id) => {
                self.scheduler.pause(id);
            }
            ControlMsg::Resume(id) => {
                self.scheduler.resume(id);
            }
            ControlMsg::Snapshot(reply) => {
                // The coordinator may have hung up (engine dropped
                // mid-checkpoint); a lost snapshot is fine then.
                let _ = reply.send(self.scheduler.query_snapshots());
            }
            ControlMsg::Flush(id, reply) => {
                let alerts = self.scheduler.flush_member(id).unwrap_or_default();
                let _ = reply.send(alerts);
            }
            ControlMsg::Sync(reply) => {
                // In-band: everything queued before this is already applied.
                let _ = reply.send(());
            }
        }
    }

    /// End of stream: flush remaining windows and summarize.
    pub fn finish(mut self, sink: &mut dyn AlertSink) -> ShardReport {
        for alert in self.scheduler.finish() {
            sink.deliver(&alert);
        }
        sink.flush();
        ShardReport {
            id: self.id,
            stats: self.scheduler.stats(),
            query_stats: self
                .scheduler
                .queries()
                .map(|q| (q.id(), q.name().to_string(), q.stats()))
                .collect(),
            error_count: self.scheduler.queries().map(|q| q.errors().total()).sum(),
            recent_errors: self
                .scheduler
                .queries()
                .flat_map(|q| {
                    q.errors()
                        .recent()
                        .map(move |e| format!("{}: {e}", q.name()))
                })
                .collect(),
            dropped_alerts: 0,
            dropped_by_query: Vec::new(),
            latency: self.scheduler.latency().cloned(),
        }
    }
}

/// The worker-thread body: drain batches and control messages in arrival
/// order until the runtime closes the channel, then flush and report. The
/// runtime owns thread spawning; this stays a plain function so tests can
/// drive a worker synchronously.
pub(crate) fn run_worker(
    mut shard: Shard,
    messages: Receiver<ShardMsg>,
    mut sink: ChannelSink,
    reports: Sender<ShardReport>,
) {
    while let Ok(msg) = messages.recv() {
        match msg {
            ShardMsg::Events(batch) => shard.process_batch(&batch, &mut sink),
            ShardMsg::Control(control) => shard.apply(control, &mut sink),
        }
    }
    let mut report = shard.finish(&mut sink);
    report.dropped_alerts = sink.dropped;
    report.dropped_by_query = sink.dropped_by_query.into_iter().collect();
    // The runtime may already be gone (engine dropped mid-stream); a lost
    // report is fine then.
    let _ = reports.send(report);
}

// The architectural unlock this module asserts: a shard (scheduler groups
// and everything inside them) can move to another thread.
#[allow(dead_code)]
fn assert_send<T: Send>() {}
const _: fn() = assert_send::<Shard>;
const _: fn() = assert_send::<ShardReport>;
const _: fn() = assert_send::<ShardMsg>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QueryConfig;
    use crate::sink::CollectSink;
    use saql_model::event::EventBuilder;
    use saql_model::ProcessInfo;
    use saql_stream::SharedEvent;
    use std::sync::Arc;

    fn rq(name: &str, src: &str) -> RunningQuery {
        RunningQuery::compile(name, src, QueryConfig::default()).unwrap()
    }

    fn start(id: u64, ts: u64, parent: &str, child: &str) -> SharedEvent {
        Arc::new(
            EventBuilder::new(id, "h", ts)
                .subject(ProcessInfo::new(1, parent, "u"))
                .starts_process(ProcessInfo::new(2, child, "u"))
                .build(),
        )
    }

    #[test]
    fn shard_processes_batches_and_reports() {
        let mut shard = Shard::new(3);
        shard.assign(rq(
            "q",
            "proc p1[\"%cmd.exe\"] start proc p2 as e\nreturn p1, p2",
        ));
        assert_eq!(shard.group_count(), 1);
        let mut batch = EventBatch::with_capacity(4);
        batch.push(start(1, 10, "cmd.exe", "osql.exe"));
        batch.push(start(2, 20, "explorer.exe", "notepad.exe"));
        let mut sink = CollectSink::default();
        shard.process_batch(&batch, &mut sink);
        assert_eq!(sink.alerts.len(), 1);
        let report = shard.finish(&mut sink);
        assert_eq!(report.id, 3);
        assert_eq!(report.stats.events, 2);
        assert_eq!(report.query_stats.len(), 1);
        assert_eq!(report.error_count, 0);
    }

    #[test]
    fn worker_drains_channel_then_reports() {
        let mut shard = Shard::new(0);
        shard.assign(rq("q", "proc p start proc q as e\nreturn p, q"));
        let (msg_tx, msg_rx) = crossbeam::channel::bounded::<ShardMsg>(4);
        let (sink, alerts_rx) = ChannelSink::new(64);
        let (report_tx, report_rx) = crossbeam::channel::bounded::<ShardReport>(1);
        let handle = std::thread::spawn(move || run_worker(shard, msg_rx, sink, report_tx));
        let mut batch = EventBatch::with_capacity(2);
        batch.push(start(1, 10, "a.exe", "b.exe"));
        msg_tx.send(ShardMsg::Events(batch)).unwrap();
        drop(msg_tx);
        handle.join().unwrap();
        let alerts: Vec<_> = alerts_rx.into_iter().collect();
        assert_eq!(alerts.len(), 1);
        let report = report_rx.recv().unwrap();
        assert_eq!(report.stats.events, 1);
        assert_eq!(report.dropped_alerts, 0);
    }

    #[test]
    fn control_messages_apply_at_batch_boundaries() {
        let mut id_counter = 0usize;
        let mut rq_id = |name: &str, src: &str| {
            let mut q = rq(name, src);
            q.set_id(QueryId::new(id_counter));
            id_counter += 1;
            q
        };
        let mut shard = Shard::new(0);
        shard.assign(rq_id("a", "proc p start proc q as e\nreturn p, q"));
        let mut sink = CollectSink::default();

        // Add a second compatible query mid-stream: it joins the group.
        shard.apply(
            ControlMsg::AddQuery(Box::new(rq_id("b", "proc p start proc q as e\nreturn q"))),
            &mut sink,
        );
        assert_eq!(shard.group_count(), 1);
        assert_eq!(shard.query_count(), 2);

        let mut batch = EventBatch::with_capacity(2);
        batch.push(start(1, 10, "a.exe", "b.exe"));
        shard.process_batch(&batch, &mut sink);
        assert_eq!(sink.alerts.len(), 2, "both queries fire");

        // Pause `a`, deliver another event: only `b` fires.
        shard.apply(ControlMsg::Pause(QueryId::new(0)), &mut sink);
        let mut batch = EventBatch::with_capacity(2);
        batch.push(start(2, 20, "a.exe", "b.exe"));
        shard.process_batch(&batch, &mut sink);
        assert_eq!(sink.alerts.len(), 3);
        assert_eq!(sink.alerts[2].query, "b");

        // Resume + remove: removal of the last member dissolves the group.
        shard.apply(ControlMsg::Resume(QueryId::new(0)), &mut sink);
        shard.apply(ControlMsg::RemoveQuery(QueryId::new(1)), &mut sink);
        shard.apply(ControlMsg::RemoveQuery(QueryId::new(0)), &mut sink);
        assert_eq!(shard.group_count(), 0);
        assert_eq!(shard.query_count(), 0);
    }

    #[test]
    fn remove_flushes_pending_windows_to_sink() {
        let mut shard = Shard::new(0);
        let mut q = rq(
            "w",
            "proc p write ip i as evt #time(1 min)\nstate ss { n := count() } group by p\nreturn p, ss[0].n",
        );
        q.set_id(QueryId::new(5));
        shard.assign(q);
        let mut batch = EventBatch::with_capacity(1);
        batch.push(Arc::new(
            EventBuilder::new(1, "h", 1_000)
                .subject(ProcessInfo::new(1, "x.exe", "u"))
                .sends(saql_model::NetworkInfo::new(
                    "10.0.0.2", 44000, "1.1.1.1", 443, "tcp",
                ))
                .amount(5)
                .build(),
        ));
        let mut sink = CollectSink::default();
        shard.process_batch(&batch, &mut sink);
        assert!(sink.alerts.is_empty(), "window still open");
        shard.apply(ControlMsg::RemoveQuery(QueryId::new(5)), &mut sink);
        assert_eq!(sink.alerts.len(), 1, "removal flushed the open window");
        assert_eq!(sink.alerts[0].query_id, QueryId::new(5));
    }
}
