//! The cluster stage: outlier-based anomaly models.
//!
//! At every window close, an outlier query gathers one *comparison point*
//! per group (the `points=all(...)` expressions evaluated on each group's
//! state) and clusters them with the configured method. Points that fall in
//! no dense cluster (DBSCAN noise, or tiny k-means clusters) set
//! `cluster.outlier` for their group's alert evaluation.

use saql_analytics::{dbscan, kmeans, DbscanScratch, Metric};
use saql_lang::ast::{ClusterMethod, ClusterSpec, Distance};

use crate::eval::{eval, ClusterOutcome, Scope};

/// Reusable buffers for the cluster stage, held per running query and
/// recycled across window closes: the DBSCAN working set (visited flags,
/// BFS queue, neighbour lists, sort order), cluster-size tallies, and the
/// gathered comparison points themselves.
#[derive(Debug, Default)]
pub struct ClusterScratch {
    dbscan: DbscanScratch,
    sizes: Vec<usize>,
    /// Comparison points for the current window close, one per group that
    /// produced every dimension.
    pub points: Vec<Vec<f64>>,
    /// Indices (into the close's group list) aligned with `points`.
    pub point_groups: Vec<usize>,
}

impl ClusterScratch {
    /// Reset the per-close point buffers (capacity is retained).
    pub fn begin_close(&mut self) {
        self.points.clear();
        self.point_groups.clear();
    }
}

/// Convert the language-level distance to the analytics metric.
pub fn metric_of(d: Distance) -> Metric {
    match d {
        Distance::Euclidean => Metric::Euclidean,
        Distance::Manhattan => Metric::Manhattan,
    }
}

/// Evaluate a group's comparison point. `None` if any dimension is missing
/// or non-numeric (the group then skips clustering and cannot be an
/// outlier this window).
pub fn point_of(spec: &ClusterSpec, scope: &Scope<'_>) -> Option<Vec<f64>> {
    spec.points
        .iter()
        .map(|e| eval(e, scope).as_f64())
        .collect()
}

/// Cluster the groups' points and produce one outcome per point, in input
/// order.
///
/// * DBSCAN: noise points are outliers; cluster size = population of the
///   point's cluster.
/// * k-means: clusters smaller than half the uniform share are outliers
///   (peer-comparison smallness), k-means has no native noise notion.
///
/// Seeded deterministically (`window id` as seed) so replays reproduce.
///
/// Allocates fresh scratch; the engine's hot path holds a
/// [`ClusterScratch`] per query and calls [`run_cluster_with`].
pub fn run_cluster(spec: &ClusterSpec, points: &[Vec<f64>], seed: u64) -> Vec<ClusterOutcome> {
    let mut scratch = ClusterScratch::default();
    scratch.points.extend(points.iter().cloned());
    run_cluster_with(spec, seed, &mut scratch)
}

/// [`run_cluster`] over `scratch.points`, reusing the scratch's DBSCAN
/// working set and size tallies across calls.
pub fn run_cluster_with(
    spec: &ClusterSpec,
    seed: u64,
    scratch: &mut ClusterScratch,
) -> Vec<ClusterOutcome> {
    let ClusterScratch {
        dbscan: db,
        sizes,
        points,
        ..
    } = scratch;
    let points: &[Vec<f64>] = points;
    let metric = metric_of(spec.distance);
    match &spec.method {
        ClusterMethod::Dbscan { eps, min_pts } => {
            let labels = dbscan::dbscan_with(points, *eps, *min_pts, metric, db);
            sizes.clear();
            for l in labels {
                if let Some(id) = l.cluster_id() {
                    if sizes.len() <= id {
                        sizes.resize(id + 1, 0);
                    }
                    sizes[id] += 1;
                }
            }
            labels
                .iter()
                .map(|l| match l.cluster_id() {
                    Some(id) => ClusterOutcome {
                        outlier: false,
                        cluster_id: Some(id),
                        size: sizes[id],
                    },
                    None => ClusterOutcome {
                        outlier: true,
                        cluster_id: None,
                        size: 1,
                    },
                })
                .collect()
        }
        ClusterMethod::KMeans { k } => {
            let result = kmeans::kmeans(points, *k, metric, seed);
            let outliers = result.outliers(0.5);
            let sizes = result.sizes();
            result
                .assignment
                .iter()
                .zip(outliers)
                .map(|(&a, outlier)| ClusterOutcome {
                    outlier,
                    cluster_id: Some(a),
                    size: sizes[a],
                })
                .collect()
        }
        ClusterMethod::ZScore { threshold } => {
            // Robust 1-D outlier test over the first point dimension:
            // peers = everyone, outlier = modified z-score above threshold.
            // When the MAD is zero (a unanimous peer group), any deviation
            // from the median is an outlier — the strictest peer comparison.
            let xs: Vec<f64> = points.iter().map(|p| p[0]).collect();
            let median = saql_analytics::robust::median(&xs);
            let inliers = xs.len();
            points
                .iter()
                .map(|p| {
                    let outlier = match saql_analytics::robust::modified_zscore(&xs, p[0]) {
                        Some(z) => z > *threshold,
                        None => matches!(median, Some(m) if p[0] != m),
                    };
                    ClusterOutcome {
                        outlier,
                        cluster_id: if outlier { None } else { Some(0) },
                        size: if outlier { 1 } else { inliers },
                    }
                })
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saql_lang::parse;

    fn spec(method: &str) -> ClusterSpec {
        let src = format!(
            "proc p read || write ip i as evt #time(10 min)\nstate ss {{ amt := sum(evt.amount) }} group by i.dstip\ncluster(points=all(ss.amt), distance=\"ed\", method=\"{method}\")\nalert cluster.outlier\nreturn i.dstip"
        );
        parse(&src).unwrap().cluster.unwrap()
    }

    fn pts(xs: &[f64]) -> Vec<Vec<f64>> {
        xs.iter().map(|&x| vec![x]).collect()
    }

    #[test]
    fn dbscan_flags_exfiltration_volume() {
        // Query-4 scenario: ordinary per-ip byte counts plus one huge dump.
        let spec = spec("DBSCAN(100000, 5)");
        let points = pts(&[
            40_000.0,
            55_000.0,
            48_000.0,
            61_000.0,
            52_000.0,
            45_000.0,
            58_000.0,
            2_000_000_000.0,
        ]);
        let outcomes = run_cluster(&spec, &points, 0);
        assert!(outcomes[..7].iter().all(|o| !o.outlier));
        assert!(outcomes[7].outlier);
        assert_eq!(outcomes[7].size, 1);
        assert_eq!(outcomes[0].size, 7);
    }

    #[test]
    fn kmeans_flags_tiny_cluster() {
        let spec = spec("KMEANS(2)");
        let mut xs: Vec<f64> = (0..12).map(|i| 1000.0 + i as f64 * 10.0).collect();
        xs.push(5_000_000.0);
        let outcomes = run_cluster(&spec, &pts(&xs), 42);
        assert!(outcomes[12].outlier, "{outcomes:?}");
        assert!(outcomes[..12].iter().all(|o| !o.outlier), "{outcomes:?}");
    }

    #[test]
    fn deterministic_across_runs() {
        let spec = spec("KMEANS(3)");
        let points = pts(&[1.0, 2.0, 50.0, 51.0, 100.0, 101.0]);
        let a = run_cluster(&spec, &points, 9);
        let b = run_cluster(&spec, &points, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_points() {
        let spec = spec("DBSCAN(10, 2)");
        assert!(run_cluster(&spec, &[], 0).is_empty());
    }

    #[test]
    fn point_of_requires_numeric_dimensions() {
        let spec = spec("DBSCAN(10, 2)");
        let scope = Scope::empty();
        // `ss.amt` unresolvable in an empty scope → Missing → no point.
        assert_eq!(point_of(&spec, &scope), None);
    }
}
