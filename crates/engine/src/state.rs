//! The state maintainer: per-group, per-window incremental aggregation with
//! window history.
//!
//! For a block like
//!
//! ```text
//! state[3] ss { avg_amount := avg(evt.amount) } group by p
//! ```
//!
//! the maintainer folds each matching event into the accumulators of its
//! group (here: the subject process) within each window the event belongs
//! to. When a window closes, the group states are *snapshotted* into a
//! bounded history (3 windows here) that alert expressions index as
//! `ss[0].avg_amount` (current), `ss[1]...` (previous), etc.
//!
//! Groups absent from a past window read that field's *neutral value*
//! (0 for counts/sums/averages, the empty set for `set(...)`) once the
//! stream has produced at least that window; indexes reaching before the
//! stream began yield `Missing`, which keeps alerts quiet during warm-up.

use std::collections::{BTreeMap, HashMap, VecDeque};

use saql_lang::ast::{AggFunc, Expr, GroupKey, StateBlock};
use saql_model::AttrValue;

use crate::eval::{eval, Scope, StateLookup};
use crate::value::{SetValues, Value};

/// One field's in-window accumulator.
#[derive(Debug, Clone)]
enum FieldAccum {
    Stats(saql_analytics::OnlineStats),
    Set(SetValues),
    /// Order-statistic aggregates (median/percentile) must buffer.
    Buffer(Vec<f64>),
}

impl FieldAccum {
    fn new(agg: AggFunc) -> FieldAccum {
        match agg {
            AggFunc::Set | AggFunc::DistinctCount => FieldAccum::Set(SetValues::new()),
            AggFunc::Median | AggFunc::Percentile(_) => FieldAccum::Buffer(Vec::new()),
            _ => FieldAccum::Stats(saql_analytics::OnlineStats::new()),
        }
    }

    fn fold(&mut self, value: &Value) {
        match self {
            FieldAccum::Stats(stats) => {
                if let Some(x) = value.as_f64() {
                    stats.push(x);
                }
            }
            FieldAccum::Buffer(buf) => {
                if let Some(x) = value.as_f64() {
                    buf.push(x);
                }
            }
            FieldAccum::Set(set) => match value {
                Value::Attr(a) => {
                    set.insert(a.to_string());
                }
                Value::Set(s) => {
                    set.extend(s.iter().cloned());
                }
                Value::Missing => {}
            },
        }
    }

    fn finalize(self, agg: AggFunc) -> Value {
        match (agg, self) {
            (AggFunc::Count, FieldAccum::Stats(s)) => Value::int(s.count() as i64),
            (AggFunc::Sum, FieldAccum::Stats(s)) => Value::float(s.sum()),
            (AggFunc::Avg, FieldAccum::Stats(s)) => Value::float(s.mean()),
            (AggFunc::Stddev, FieldAccum::Stats(s)) => Value::float(s.stddev()),
            (AggFunc::Min, FieldAccum::Stats(s)) => match s.min() {
                Some(x) => Value::float(x),
                None => Value::Missing,
            },
            (AggFunc::Max, FieldAccum::Stats(s)) => match s.max() {
                Some(x) => Value::float(x),
                None => Value::Missing,
            },
            (AggFunc::Set, FieldAccum::Set(s)) => Value::Set(std::sync::Arc::new(s)),
            (AggFunc::DistinctCount, FieldAccum::Set(s)) => Value::int(s.len() as i64),
            (AggFunc::Median, FieldAccum::Buffer(buf)) => {
                match saql_analytics::robust::median(&buf) {
                    Some(m) => Value::float(m),
                    None => Value::Missing,
                }
            }
            (AggFunc::Percentile(q), FieldAccum::Buffer(buf)) => {
                match saql_analytics::robust::percentile(&buf, q as f64) {
                    Some(p) => Value::float(p),
                    None => Value::Missing,
                }
            }
            _ => unreachable!("accumulator kind always matches the aggregate"),
        }
    }
}

/// Neutral value of an aggregate over an empty (absent) window.
fn neutral(agg: AggFunc) -> Value {
    match agg {
        AggFunc::Count | AggFunc::DistinctCount => Value::int(0),
        AggFunc::Sum | AggFunc::Avg | AggFunc::Stddev => Value::float(0.0),
        AggFunc::Min | AggFunc::Max | AggFunc::Median | AggFunc::Percentile(_) => Value::Missing,
        AggFunc::Set => Value::empty_set(),
    }
}

/// Snapshot of one group's state at a window close.
#[derive(Debug, Clone)]
pub struct GroupSnapshot {
    /// Group-key spellings and values (`"p"` / `"p.exe_name"` →
    /// `"sqlservr.exe"`); used to build evaluation scopes and alert labels.
    pub keys: Vec<(String, AttrValue)>,
    /// Field values in block declaration order.
    pub values: Vec<Value>,
}

impl GroupSnapshot {
    /// Human-readable group id (key values joined).
    pub fn group_id(&self) -> String {
        group_id_of(&self.keys)
    }
}

fn group_id_of(keys: &[(String, AttrValue)]) -> String {
    let mut parts: Vec<String> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for (_, v) in keys {
        let s = v.to_string();
        if seen.insert(s.clone()) {
            parts.push(s);
        }
    }
    if parts.is_empty() {
        "<all>".to_string()
    } else {
        parts.join("|")
    }
}

#[derive(Debug, Clone)]
struct GroupAccum {
    keys: Vec<(String, AttrValue)>,
    accums: Vec<FieldAccum>,
}

/// The state maintainer for one `state[...]` block.
#[derive(Debug)]
pub struct StateMaintainer {
    name: String,
    history_len: usize,
    fields: Vec<(String, AggFunc, Expr)>,
    group_by: Vec<GroupKey>,
    /// Accumulators for currently open windows: window id → group id → accum.
    open: BTreeMap<u64, HashMap<String, GroupAccum>>,
    /// Closed-window history: group id → recent (window id, snapshot),
    /// newest at the back, bounded by `history_len`.
    history: HashMap<String, VecDeque<(u64, GroupSnapshot)>>,
    /// First window id ever observed (warm-up boundary for neutral values).
    first_window: Option<u64>,
}

impl StateMaintainer {
    pub fn new(block: &StateBlock) -> Self {
        StateMaintainer {
            name: block.name.clone(),
            history_len: block.history,
            fields: block
                .fields
                .iter()
                .map(|f| (f.name.clone(), f.agg, f.arg.clone()))
                .collect(),
            group_by: block.group_by.clone(),
            open: BTreeMap::new(),
            history: HashMap::new(),
            first_window: None,
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    /// Names of the declared fields, in order.
    pub fn field_names(&self) -> impl Iterator<Item = &str> {
        self.fields.iter().map(|(n, _, _)| n.as_str())
    }

    /// Fold one matching event (already wrapped in an evaluation scope) into
    /// the given windows. Returns `false` if the group key could not be
    /// computed from this event's bindings.
    pub fn observe(&mut self, windows: &[u64], scope: &Scope<'_>) -> bool {
        let Some(keys) = self.group_keys_from(scope) else {
            return false;
        };
        let group = group_id_of(&keys);
        // Evaluate field arguments once; fold into every containing window.
        let folded: Vec<Value> = self
            .fields
            .iter()
            .map(|(_, _, arg)| eval(arg, scope))
            .collect();
        for &k in windows {
            if self.first_window.is_none() || Some(k) < self.first_window {
                self.first_window = Some(match self.first_window {
                    Some(f) => f.min(k),
                    None => k,
                });
            }
            let groups = self.open.entry(k).or_default();
            let accum = groups.entry(group.clone()).or_insert_with(|| GroupAccum {
                keys: keys.clone(),
                accums: self
                    .fields
                    .iter()
                    .map(|(_, agg, _)| FieldAccum::new(*agg))
                    .collect(),
            });
            for (acc, v) in accum.accums.iter_mut().zip(&folded) {
                acc.fold(v);
            }
        }
        true
    }

    /// Compute the group-key spellings/values for an event scope.
    ///
    /// `group by p` binds both `p` and `p.<default_attr>`; `group by i.dstip`
    /// binds `i.dstip`. An empty `group by` produces the global group.
    fn group_keys_from(&self, scope: &Scope<'_>) -> Option<Vec<(String, AttrValue)>> {
        let mut keys = Vec::with_capacity(self.group_by.len() + 1);
        for gk in &self.group_by {
            let expr = Expr::Ref(saql_lang::ast::Ref {
                base: gk.var.clone(),
                index: None,
                attr: gk.attr.clone(),
                span: gk.span,
            });
            let value = match eval(&expr, scope) {
                Value::Attr(a) => a,
                _ => return None,
            };
            match &gk.attr {
                Some(attr) => keys.push((format!("{}.{}", gk.var, attr), value)),
                None => {
                    // Bind the bare var and its default-attribute spelling.
                    keys.push((gk.var.clone(), value.clone()));
                    if let Some(entity) = scope.entities.get(gk.var.as_str()) {
                        let attr = entity.entity_type().default_attr();
                        keys.push((format!("{}.{}", gk.var, attr), value));
                    }
                }
            }
        }
        Some(keys)
    }

    /// Close window `k`: snapshot every group that observed events in it,
    /// push the snapshots into history, and return them sorted by group id.
    pub fn close(&mut self, k: u64) -> Vec<(String, GroupSnapshot)> {
        let groups = self.open.remove(&k).unwrap_or_default();
        let mut out: Vec<(String, GroupSnapshot)> = groups
            .into_iter()
            .map(|(gid, accum)| {
                let values: Vec<Value> = accum
                    .accums
                    .into_iter()
                    .zip(&self.fields)
                    .map(|(acc, (_, agg, _))| acc.finalize(*agg))
                    .collect();
                (
                    gid,
                    GroupSnapshot {
                        keys: accum.keys,
                        values,
                    },
                )
            })
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        for (gid, snap) in &out {
            let hist = self.history.entry(gid.clone()).or_default();
            hist.push_back((k, snap.clone()));
            // Keep enough history to serve `ss[history_len - 1]` even with
            // sliding windows: entries older than the reachable range drop.
            while hist.len() > self.history_len {
                hist.pop_front();
            }
        }
        out
    }

    /// Resolve `name[back].field` for `group` with window `k` as current.
    pub fn lookup(&self, group: &str, k: u64, back: usize, field: Option<&str>) -> Value {
        if back >= self.history_len {
            return Value::Missing;
        }
        let Some(target) = k.checked_sub(back as u64) else {
            return Value::Missing;
        };
        let field_idx = match field {
            Some(f) => match self.fields.iter().position(|(n, _, _)| n == f) {
                Some(i) => i,
                None => return Value::Missing,
            },
            // A bare state reference (`ss`) with exactly one field refers to
            // it (Query 3's `ss.set_proc` style always names the field, but
            // invariant updates may use the shorthand).
            None => {
                if self.fields.len() == 1 {
                    0
                } else {
                    return Value::Missing;
                }
            }
        };
        if let Some(hist) = self.history.get(group) {
            if let Some((_, snap)) = hist.iter().rev().find(|(wk, _)| *wk == target) {
                return snap.values[field_idx].clone();
            }
        }
        // Absent window: neutral value once past warm-up.
        match self.first_window {
            Some(first) if target >= first => neutral(self.fields[field_idx].1),
            _ => Value::Missing,
        }
    }
}

/// [`StateLookup`] view for evaluating expressions of one group at the close
/// of window `k`.
pub struct StateView<'a> {
    pub maintainer: &'a StateMaintainer,
    pub group: &'a str,
    pub current_window: u64,
}

impl StateLookup for StateView<'_> {
    fn state_value(&self, name: &str, back: usize, field: Option<&str>) -> Value {
        if name != self.maintainer.name() {
            return Value::Missing;
        }
        self.maintainer
            .lookup(self.group, self.current_window, back, field)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saql_lang::parse;
    use saql_model::event::EventBuilder;
    use saql_model::{Entity, NetworkInfo, ProcessInfo};

    fn block(src: &str) -> StateBlock {
        parse(src).unwrap().states.remove(0)
    }

    fn net_event(id: u64, ts: u64, exe: &str, dst: &str, amount: u64) -> saql_model::Event {
        EventBuilder::new(id, "db-server", ts)
            .subject(ProcessInfo::new(1, exe, "svc"))
            .sends(NetworkInfo::new("10.0.0.5", 50000, dst, 443, "tcp"))
            .amount(amount)
            .build()
    }

    /// Scope for a matched `proc p write ip i as evt` event.
    fn scope<'a>(event: &'a saql_model::Event, subject: &'a Entity) -> Scope<'a> {
        let mut s = Scope::empty();
        s.events.insert("evt", event);
        s.entities.insert("p", subject);
        s.entities.insert("i", &event.object);
        s
    }

    const QUERY2_STATE: &str = "proc p write ip i as evt #time(10 min)\nstate[3] ss { avg_amount := avg(evt.amount) } group by p\nreturn p";

    #[test]
    fn per_group_average_over_one_window() {
        let mut m = StateMaintainer::new(&block(QUERY2_STATE));
        for (i, amount) in [100u64, 200, 300].into_iter().enumerate() {
            let e = net_event(i as u64, 1000, "sqlservr.exe", "10.0.0.9", amount);
            let subj = Entity::Process(e.subject.clone());
            assert!(m.observe(&[0], &scope(&e, &subj)));
        }
        let e = net_event(9, 1500, "chrome.exe", "8.8.8.8", 50);
        let subj = Entity::Process(e.subject.clone());
        m.observe(&[0], &scope(&e, &subj));

        let snaps = m.close(0);
        assert_eq!(snaps.len(), 2);
        let sql = snaps.iter().find(|(g, _)| g == "sqlservr.exe").unwrap();
        assert_eq!(sql.1.values[0].as_f64(), Some(200.0));
        let chrome = snaps.iter().find(|(g, _)| g == "chrome.exe").unwrap();
        assert_eq!(chrome.1.values[0].as_f64(), Some(50.0));
    }

    #[test]
    fn history_lookup_and_warmup() {
        let mut m = StateMaintainer::new(&block(QUERY2_STATE));
        for k in 0..4u64 {
            let e = net_event(k, k * 600_000, "sqlservr.exe", "10.0.0.9", (k + 1) * 100);
            let subj = Entity::Process(e.subject.clone());
            m.observe(&[k], &scope(&e, &subj));
            m.close(k);
        }
        // At window 3: ss[0]=400, ss[1]=300, ss[2]=200.
        assert_eq!(
            m.lookup("sqlservr.exe", 3, 0, Some("avg_amount")).as_f64(),
            Some(400.0)
        );
        assert_eq!(
            m.lookup("sqlservr.exe", 3, 1, Some("avg_amount")).as_f64(),
            Some(300.0)
        );
        assert_eq!(
            m.lookup("sqlservr.exe", 3, 2, Some("avg_amount")).as_f64(),
            Some(200.0)
        );
        // Beyond declared history: Missing.
        assert!(m
            .lookup("sqlservr.exe", 3, 3, Some("avg_amount"))
            .is_missing());
        // Before the stream began (window 0 is first): ss[1] at window 0.
        assert!(m
            .lookup("sqlservr.exe", 0, 1, Some("avg_amount"))
            .is_missing());
    }

    #[test]
    fn absent_window_reads_neutral_after_warmup() {
        let mut m = StateMaintainer::new(&block(QUERY2_STATE));
        let e = net_event(1, 0, "sqlservr.exe", "10.0.0.9", 500);
        let subj = Entity::Process(e.subject.clone());
        m.observe(&[0], &scope(&e, &subj));
        m.close(0);
        // Window 1 passes with no events for the group; window 2 has one.
        let e2 = net_event(2, 1_200_000, "sqlservr.exe", "10.0.0.9", 900);
        let subj2 = Entity::Process(e2.subject.clone());
        m.observe(&[2], &scope(&e2, &subj2));
        m.close(2);
        // ss[1] (window 1) is neutral 0.0, not Missing.
        assert_eq!(
            m.lookup("sqlservr.exe", 2, 1, Some("avg_amount")).as_f64(),
            Some(0.0)
        );
        assert_eq!(
            m.lookup("sqlservr.exe", 2, 2, Some("avg_amount")).as_f64(),
            Some(500.0)
        );
    }

    #[test]
    fn set_aggregation() {
        let src = "proc p1 start proc p2 as evt #time(10 s)\nstate ss { set_proc := set(p2.exe_name) } group by p1\nreturn p1";
        let mut m = StateMaintainer::new(&block(src));
        for (i, child) in ["php.exe", "rotatelogs.exe", "php.exe"].iter().enumerate() {
            let e = EventBuilder::new(i as u64, "web-server", 100)
                .subject(ProcessInfo::new(80, "apache.exe", "www"))
                .starts_process(ProcessInfo::new(100 + i as u32, *child, "www"))
                .build();
            let subj = Entity::Process(e.subject.clone());
            let mut s = Scope::empty();
            s.events.insert("evt", &e);
            s.entities.insert("p1", &subj);
            s.entities.insert("p2", &e.object);
            m.observe(&[0], &s);
        }
        let snaps = m.close(0);
        assert_eq!(snaps.len(), 1);
        assert_eq!(
            snaps[0].1.values[0].to_string(),
            "{php.exe, rotatelogs.exe}"
        );
    }

    #[test]
    fn group_key_spellings_bind_both_forms() {
        let mut m = StateMaintainer::new(&block(QUERY2_STATE));
        let e = net_event(1, 0, "cmd.exe", "10.0.0.9", 10);
        let subj = Entity::Process(e.subject.clone());
        m.observe(&[0], &scope(&e, &subj));
        let snaps = m.close(0);
        let keys = &snaps[0].1.keys;
        assert!(keys.iter().any(|(k, _)| k == "p"));
        assert!(keys.iter().any(|(k, _)| k == "p.exe_name"));
    }

    #[test]
    fn group_by_attr_key() {
        let src = "proc p write ip i as evt #time(10 min)\nstate ss { amt := sum(evt.amount) } group by i.dstip\nreturn i.dstip";
        let mut m = StateMaintainer::new(&block(src));
        for (i, (dst, amount)) in [("10.0.0.9", 100u64), ("10.0.0.9", 150), ("8.8.8.8", 70)]
            .into_iter()
            .enumerate()
        {
            let e = net_event(i as u64, 0, "sqlservr.exe", dst, amount);
            let subj = Entity::Process(e.subject.clone());
            m.observe(&[0], &scope(&e, &subj));
        }
        let snaps = m.close(0);
        assert_eq!(snaps.len(), 2);
        let by_ip: HashMap<String, f64> = snaps
            .iter()
            .map(|(g, s)| (g.clone(), s.values[0].as_f64().unwrap()))
            .collect();
        assert_eq!(by_ip["10.0.0.9"], 250.0);
        assert_eq!(by_ip["8.8.8.8"], 70.0);
    }

    #[test]
    fn state_view_implements_lookup() {
        let mut m = StateMaintainer::new(&block(QUERY2_STATE));
        let e = net_event(1, 0, "x.exe", "1.1.1.1", 42);
        let subj = Entity::Process(e.subject.clone());
        m.observe(&[0], &scope(&e, &subj));
        m.close(0);
        let view = StateView {
            maintainer: &m,
            group: "x.exe",
            current_window: 0,
        };
        assert_eq!(
            view.state_value("ss", 0, Some("avg_amount")).as_f64(),
            Some(42.0)
        );
        assert!(view
            .state_value("other", 0, Some("avg_amount"))
            .is_missing());
    }

    #[test]
    fn empty_group_by_uses_global_group() {
        let src = "proc p write ip i as evt #time(10 min)\nstate ss { n := count() }\nreturn p";
        let mut m = StateMaintainer::new(&block(src));
        for i in 0..3 {
            let e = net_event(i, 0, "a.exe", "1.1.1.1", 1);
            let subj = Entity::Process(e.subject.clone());
            m.observe(&[0], &scope(&e, &subj));
        }
        let snaps = m.close(0);
        assert_eq!(snaps.len(), 1);
        assert_eq!(snaps[0].0, "<all>");
        assert_eq!(snaps[0].1.values[0].as_f64(), Some(3.0));
    }
}
