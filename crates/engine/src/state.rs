//! The state maintainer: per-group, per-window incremental aggregation with
//! window history.
//!
//! For a block like
//!
//! ```text
//! state[3] ss { avg_amount := avg(evt.amount) } group by p
//! ```
//!
//! the maintainer folds each matching event into the accumulators of its
//! group (here: the subject process) within each window the event belongs
//! to. When a window closes, the group states are *snapshotted* into a
//! bounded history (3 windows here) that alert expressions index as
//! `ss[0].avg_amount` (current), `ss[1]...` (previous), etc.
//!
//! **Group identity is a value tuple.** On the per-event path groups are
//! keyed by a [`KeyTuple`] — the hashed tuple of interned key values — not
//! by a joined display string: no formatting, no string allocation per
//! event. The human-readable joined label survives only as a *lazy alert
//! label*, computed once per group when its window closes. (A tuple
//! distinguishes `Int(1)` from `"1"`, which the old display-string identity
//! conflated; key attributes have stable types, so real queries never see
//! the difference.)
//!
//! Key and field *evaluation* lives with the caller ([`crate::query`]),
//! which runs either compiled programs or the interpreter oracle —
//! [`StateMaintainer::observe`] is execution-mode agnostic.
//!
//! Groups absent from a past window read that field's *neutral value*
//! (0 for counts/sums/averages, the empty set for `set(...)`) once the
//! stream has produced at least that window; indexes reaching before the
//! stream began yield `Missing`, which keeps alerts quiet during warm-up.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::Arc;

use saql_lang::ast::{AggFunc, StateBlock};
use saql_model::AttrValue;

use crate::eval::{StateLookup, StateSlots};
use crate::value::{SetValues, Value};

/// FNV-1a: the group maps are internal analytics state (no untrusted-key
/// DoS surface), and the per-event path hashes a group key on every fold —
/// SipHash would be the single largest cost left on it.
struct Fnv(u64);

impl Default for Fnv {
    fn default() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for Fnv {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0100_0000_01b3);
        }
        self.0 = h;
    }
}

type GroupMap<V> = HashMap<KeyTuple, V, BuildHasherDefault<Fnv>>;

/// One hashable component of a group's identity. Strings share the event's
/// interned `Arc<str>`; floats key by bit pattern (stable identity, no Ord
/// headaches — the derived `Ord` over bit patterns is only used to make
/// checkpoint snapshots deterministic, never for value comparison).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum KeyAtom {
    Int(i64),
    Float(u64),
    Str(Arc<str>),
    Bool(bool),
}

impl KeyAtom {
    pub fn of(v: &AttrValue) -> KeyAtom {
        match v {
            AttrValue::Int(i) => KeyAtom::Int(*i),
            AttrValue::Float(f) => KeyAtom::Float(f.to_bits()),
            AttrValue::Str(s) => KeyAtom::Str(s.clone()),
            AttrValue::Bool(b) => KeyAtom::Bool(*b),
        }
    }

    /// Take ownership of an attribute value (moves the `Arc` handle — the
    /// hot path pays exactly one refcount per key).
    pub fn of_owned(v: AttrValue) -> KeyAtom {
        match v {
            AttrValue::Int(i) => KeyAtom::Int(i),
            AttrValue::Float(f) => KeyAtom::Float(f.to_bits()),
            AttrValue::Str(s) => KeyAtom::Str(s),
            AttrValue::Bool(b) => KeyAtom::Bool(b),
        }
    }

    /// Back to an attribute value (exact roundtrip; floats by bit pattern).
    pub fn to_attr(&self) -> AttrValue {
        match self {
            KeyAtom::Int(i) => AttrValue::Int(*i),
            KeyAtom::Float(bits) => AttrValue::Float(f64::from_bits(*bits)),
            KeyAtom::Str(s) => AttrValue::Str(s.clone()),
            KeyAtom::Bool(b) => AttrValue::Bool(*b),
        }
    }
}

/// A group's identity: one [`KeyAtom`] per group-by key. The empty tuple is
/// the global group of a `group by`-less state block.
pub type KeyTuple = Box<[KeyAtom]>;

/// Build the key tuple of a resolved key-value row.
pub fn key_tuple(values: &[AttrValue]) -> KeyTuple {
    values.iter().map(KeyAtom::of).collect()
}

/// The partition routing hash: which of `n` shards owns the group named by
/// this key tuple. The same FNV-1a hash as the group maps, folded over the
/// atoms in order, so the ownership decision is identical wherever it is
/// made — replica-side row filtering, checkpoint split, and checkpoint
/// merge all call this one function. `n = 0` clamps to one shard.
pub fn partition_of(atoms: &[KeyAtom], n: usize) -> usize {
    use std::hash::Hash;
    let mut h = Fnv::default();
    for atom in atoms {
        atom.hash(&mut h);
    }
    (h.finish() % n.max(1) as u64) as usize
}

/// The lazy alert label: key values joined by `|` with duplicate displays
/// collapsed (`group by p` shows `sqlservr.exe`, not `sqlservr.exe|...`).
pub fn group_label(values: &[AttrValue]) -> String {
    let mut parts: Vec<String> = Vec::new();
    for v in values {
        let s = v.to_string();
        if !parts.contains(&s) {
            parts.push(s);
        }
    }
    if parts.is_empty() {
        "<all>".to_string()
    } else {
        parts.join("|")
    }
}

/// One field's in-window accumulator.
#[derive(Debug, Clone)]
enum FieldAccum {
    Stats(saql_analytics::OnlineStats),
    Set(SetValues),
    /// Order-statistic aggregates (median/percentile) must buffer.
    Buffer(Vec<f64>),
}

impl FieldAccum {
    fn new(agg: AggFunc) -> FieldAccum {
        match agg {
            AggFunc::Set | AggFunc::DistinctCount => FieldAccum::Set(SetValues::new()),
            AggFunc::Median | AggFunc::Percentile(_) => FieldAccum::Buffer(Vec::new()),
            _ => FieldAccum::Stats(saql_analytics::OnlineStats::new()),
        }
    }

    fn fold(&mut self, value: &Value) {
        match self {
            FieldAccum::Stats(stats) => {
                if let Some(x) = value.as_f64() {
                    stats.push(x);
                }
            }
            FieldAccum::Buffer(buf) => {
                if let Some(x) = value.as_f64() {
                    buf.push(x);
                }
            }
            FieldAccum::Set(set) => match value {
                Value::Attr(a) => {
                    set.insert(a.to_string());
                }
                Value::Set(s) => {
                    set.extend(s.iter().cloned());
                }
                Value::Missing => {}
            },
        }
    }

    fn snapshot(&self) -> AccumSnapshot {
        match self {
            FieldAccum::Stats(s) => {
                let (count, sum, min, max, mean, m2) = s.raw_parts();
                AccumSnapshot::Stats {
                    count,
                    sum,
                    min,
                    max,
                    mean,
                    m2,
                }
            }
            FieldAccum::Set(s) => AccumSnapshot::Set(s.iter().cloned().collect()),
            FieldAccum::Buffer(b) => AccumSnapshot::Buffer(b.clone()),
        }
    }

    fn from_snapshot(snap: AccumSnapshot) -> FieldAccum {
        match snap {
            AccumSnapshot::Stats {
                count,
                sum,
                min,
                max,
                mean,
                m2,
            } => FieldAccum::Stats(saql_analytics::OnlineStats::from_raw_parts(
                count, sum, min, max, mean, m2,
            )),
            AccumSnapshot::Set(items) => FieldAccum::Set(items.into_iter().collect()),
            AccumSnapshot::Buffer(buf) => FieldAccum::Buffer(buf),
        }
    }

    fn finalize(self, agg: AggFunc) -> Value {
        match (agg, self) {
            (AggFunc::Count, FieldAccum::Stats(s)) => Value::int(s.count() as i64),
            (AggFunc::Sum, FieldAccum::Stats(s)) => Value::float(s.sum()),
            (AggFunc::Avg, FieldAccum::Stats(s)) => Value::float(s.mean()),
            (AggFunc::Stddev, FieldAccum::Stats(s)) => Value::float(s.stddev()),
            (AggFunc::Min, FieldAccum::Stats(s)) => match s.min() {
                Some(x) => Value::float(x),
                None => Value::Missing,
            },
            (AggFunc::Max, FieldAccum::Stats(s)) => match s.max() {
                Some(x) => Value::float(x),
                None => Value::Missing,
            },
            (AggFunc::Set, FieldAccum::Set(s)) => Value::Set(std::sync::Arc::new(s)),
            (AggFunc::DistinctCount, FieldAccum::Set(s)) => Value::int(s.len() as i64),
            (AggFunc::Median, FieldAccum::Buffer(buf)) => {
                match saql_analytics::robust::median(&buf) {
                    Some(m) => Value::float(m),
                    None => Value::Missing,
                }
            }
            (AggFunc::Percentile(q), FieldAccum::Buffer(buf)) => {
                match saql_analytics::robust::percentile(&buf, q as f64) {
                    Some(p) => Value::float(p),
                    None => Value::Missing,
                }
            }
            _ => unreachable!("accumulator kind always matches the aggregate"),
        }
    }
}

/// Neutral value of an aggregate over an empty (absent) window.
fn neutral(agg: AggFunc) -> Value {
    match agg {
        AggFunc::Count | AggFunc::DistinctCount => Value::int(0),
        AggFunc::Sum | AggFunc::Avg | AggFunc::Stddev => Value::float(0.0),
        AggFunc::Min | AggFunc::Max | AggFunc::Median | AggFunc::Percentile(_) => Value::Missing,
        AggFunc::Set => Value::empty_set(),
    }
}

#[derive(Debug, Clone)]
struct GroupAccum {
    /// Key values by group-by slot (what the close-time contexts read).
    key_vals: Vec<AttrValue>,
    accums: Vec<FieldAccum>,
}

/// One group at a window close: identity, lazily rendered label, key
/// values by slot, and finalized field values in declaration order.
#[derive(Debug, Clone)]
pub struct ClosedGroup {
    pub key: KeyTuple,
    /// The joined display label (alert origin, invariant keying).
    pub label: String,
    /// Key values by group-by slot.
    pub key_vals: Vec<AttrValue>,
    /// Field values in block declaration order.
    pub values: Vec<Value>,
}

/// The state maintainer for one `state[...]` block.
#[derive(Debug)]
pub struct StateMaintainer {
    name: String,
    history_len: usize,
    fields: Vec<(String, AggFunc)>,
    /// Accumulators for currently open windows: window id → group → accum.
    open: BTreeMap<u64, GroupMap<GroupAccum>>,
    /// Closed-window history: group → recent (window id, field values),
    /// newest at the back, bounded by `history_len`.
    history: GroupMap<VecDeque<(u64, Vec<Value>)>>,
    /// First window id ever observed (warm-up boundary for neutral values).
    first_window: Option<u64>,
}

impl StateMaintainer {
    pub fn new(block: &StateBlock) -> Self {
        StateMaintainer {
            name: block.name.clone(),
            history_len: block.history,
            fields: block
                .fields
                .iter()
                .map(|f| (f.name.clone(), f.agg))
                .collect(),
            open: BTreeMap::new(),
            history: GroupMap::default(),
            first_window: None,
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    /// Names of the declared fields, in order.
    pub fn field_names(&self) -> impl Iterator<Item = &str> {
        self.fields.iter().map(|(n, _)| n.as_str())
    }

    /// Fold one matching event's evaluated key atoms and field arguments
    /// into the given windows. The caller evaluated both (compiled program
    /// or interpreter); this only groups and folds. Allocation-free for
    /// groups that already exist (the common case): lookups hash the key
    /// *slice*, and a boxed tuple (plus its display values) is built only
    /// when a new group appears.
    pub fn observe(&mut self, windows: &[u64], key: &[KeyAtom], folded: &[Value]) {
        for &k in windows {
            if self.first_window.is_none() || Some(k) < self.first_window {
                self.first_window = Some(match self.first_window {
                    Some(f) => f.min(k),
                    None => k,
                });
            }
            let groups = self.open.entry(k).or_default();
            let accum = match groups.get_mut(key) {
                Some(accum) => accum,
                None => groups
                    .entry(key.to_vec().into_boxed_slice())
                    .or_insert_with(|| GroupAccum {
                        key_vals: key.iter().map(KeyAtom::to_attr).collect(),
                        accums: self
                            .fields
                            .iter()
                            .map(|(_, agg)| FieldAccum::new(*agg))
                            .collect(),
                    }),
            };
            for (acc, v) in accum.accums.iter_mut().zip(folded) {
                acc.fold(v);
            }
        }
    }

    /// Close window `k`: snapshot every group that observed events in it,
    /// push the field values into history, and return the groups sorted by
    /// their (lazily rendered) labels — the only point where labels exist.
    pub fn close(&mut self, k: u64) -> Vec<ClosedGroup> {
        let groups = self.open.remove(&k).unwrap_or_default();
        let mut out: Vec<ClosedGroup> = groups
            .into_iter()
            .map(|(key, accum)| {
                let values: Vec<Value> = accum
                    .accums
                    .into_iter()
                    .zip(&self.fields)
                    .map(|(acc, (_, agg))| acc.finalize(*agg))
                    .collect();
                ClosedGroup {
                    label: group_label(&accum.key_vals),
                    key,
                    key_vals: accum.key_vals,
                    values,
                }
            })
            .collect();
        out.sort_by(|a, b| a.label.cmp(&b.label));
        for group in &out {
            let hist = self.history.entry(group.key.clone()).or_default();
            hist.push_back((k, group.values.clone()));
            // Keep enough history to serve `ss[history_len - 1]` even with
            // sliding windows: entries older than the reachable range drop.
            while hist.len() > self.history_len {
                hist.pop_front();
            }
        }
        out
    }

    /// Resolve field `field_idx`, `back` windows before `k`, for `group`.
    pub fn lookup_idx(&self, group: &KeyTuple, k: u64, back: usize, field_idx: usize) -> Value {
        if back >= self.history_len || field_idx >= self.fields.len() {
            return Value::Missing;
        }
        let Some(target) = k.checked_sub(back as u64) else {
            return Value::Missing;
        };
        if let Some(hist) = self.history.get(group) {
            if let Some((_, values)) = hist.iter().rev().find(|(wk, _)| *wk == target) {
                return values[field_idx].clone();
            }
        }
        // Absent window: neutral value once past warm-up.
        match self.first_window {
            Some(first) if target >= first => neutral(self.fields[field_idx].1),
            _ => Value::Missing,
        }
    }

    /// Capture every group's dynamic state (engine checkpoints): open
    /// accumulators, closed-window history, and the warm-up boundary. Rows
    /// are key-sorted so snapshots are deterministic; the block structure
    /// is static and recompiled from the query source.
    pub fn snapshot(&self) -> StateSnapshot {
        let open = self
            .open
            .iter()
            .map(|(&k, groups)| {
                let mut rows: Vec<(&KeyTuple, &GroupAccum)> = groups.iter().collect();
                rows.sort_by(|a, b| a.0.cmp(b.0));
                let groups = rows
                    .into_iter()
                    .map(|(_, g)| GroupAccumSnapshot {
                        key_vals: g.key_vals.clone(),
                        accums: g.accums.iter().map(FieldAccum::snapshot).collect(),
                    })
                    .collect();
                (k, groups)
            })
            .collect();
        let mut hist: Vec<_> = self.history.iter().collect();
        hist.sort_by(|a, b| a.0.cmp(b.0));
        let history = hist
            .into_iter()
            .map(|(key, entries)| GroupHistorySnapshot {
                key_vals: key.iter().map(KeyAtom::to_attr).collect(),
                windows: entries.iter().cloned().collect(),
            })
            .collect();
        StateSnapshot {
            open,
            history,
            first_window: self.first_window,
        }
    }

    /// Restore the state captured by [`snapshot`](Self::snapshot) onto a
    /// freshly compiled maintainer for the same block.
    pub fn restore(&mut self, snap: StateSnapshot) {
        self.open = snap
            .open
            .into_iter()
            .map(|(k, groups)| {
                let map: GroupMap<GroupAccum> = groups
                    .into_iter()
                    .map(|g| {
                        (
                            key_tuple(&g.key_vals),
                            GroupAccum {
                                key_vals: g.key_vals,
                                accums: g
                                    .accums
                                    .into_iter()
                                    .map(FieldAccum::from_snapshot)
                                    .collect(),
                            },
                        )
                    })
                    .collect();
                (k, map)
            })
            .collect();
        self.history = snap
            .history
            .into_iter()
            .map(|g| (key_tuple(&g.key_vals), g.windows.into_iter().collect()))
            .collect();
        self.first_window = snap.first_window;
    }

    /// Resolve `name[back].field` by field *name* (the interpreter's view).
    /// A bare reference (`ss`) with exactly one field refers to it.
    pub fn lookup(&self, group: &KeyTuple, k: u64, back: usize, field: Option<&str>) -> Value {
        let field_idx = match field {
            Some(f) => match self.fields.iter().position(|(n, _)| n == f) {
                Some(i) => i,
                None => return Value::Missing,
            },
            None => {
                if self.fields.len() == 1 {
                    0
                } else {
                    return Value::Missing;
                }
            }
        };
        self.lookup_idx(group, k, back, field_idx)
    }
}

/// One field accumulator's contents in a [`StateSnapshot`]. `Stats` carries
/// the raw Welford parts (see [`saql_analytics::OnlineStats::raw_parts`]);
/// the round trip through restore is bit-exact.
#[derive(Debug, Clone)]
pub enum AccumSnapshot {
    Stats {
        count: u64,
        sum: f64,
        min: f64,
        max: f64,
        mean: f64,
        m2: f64,
    },
    Set(Vec<String>),
    Buffer(Vec<f64>),
}

/// One open group's accumulators in a [`StateSnapshot`]. The key tuple is
/// rebuilt from `key_vals` on restore (exact — floats key by bit pattern).
#[derive(Debug, Clone)]
pub struct GroupAccumSnapshot {
    pub key_vals: Vec<AttrValue>,
    /// Accumulators in field declaration order.
    pub accums: Vec<AccumSnapshot>,
}

/// One group's closed-window history in a [`StateSnapshot`].
#[derive(Debug, Clone)]
pub struct GroupHistorySnapshot {
    pub key_vals: Vec<AttrValue>,
    /// `(window id, finalized field values)`, oldest first.
    pub windows: Vec<(u64, Vec<Value>)>,
}

/// Dynamic state of a [`StateMaintainer`], exact under snapshot → restore.
#[derive(Debug, Clone)]
pub struct StateSnapshot {
    /// Open-window accumulators: `(window id, groups)`, windows ascending.
    pub open: Vec<(u64, Vec<GroupAccumSnapshot>)>,
    pub history: Vec<GroupHistorySnapshot>,
    pub first_window: Option<u64>,
}

impl StateSnapshot {
    /// Split a canonical snapshot into `n` disjoint per-partition snapshots
    /// for the key-partitioned runtime: every open group and every history
    /// row lands on exactly the shard [`partition_of`] names for its key
    /// tuple, and the warm-up boundary is replicated (it is a property of
    /// stream time, not of any group). Empty per-window group lists are
    /// dropped so each part is itself canonical.
    pub fn split(&self, n: usize) -> Vec<StateSnapshot> {
        let n = n.max(1);
        let mut parts: Vec<StateSnapshot> = (0..n)
            .map(|_| StateSnapshot {
                open: Vec::new(),
                history: Vec::new(),
                first_window: self.first_window,
            })
            .collect();
        for (k, groups) in &self.open {
            let mut per: Vec<Vec<GroupAccumSnapshot>> = vec![Vec::new(); n];
            for g in groups {
                per[partition_of(&key_tuple(&g.key_vals), n)].push(g.clone());
            }
            for (part, rows) in parts.iter_mut().zip(per) {
                if !rows.is_empty() {
                    part.open.push((*k, rows));
                }
            }
        }
        for g in &self.history {
            parts[partition_of(&key_tuple(&g.key_vals), n)]
                .history
                .push(g.clone());
        }
        parts
    }

    /// Merge disjoint per-partition snapshots back into the canonical form
    /// [`StateMaintainer::snapshot`] produces — open groups re-gathered per
    /// window id and key-sorted, history key-sorted — so a checkpoint taken
    /// from a partitioned run restores bit-identically on a serial (or
    /// differently sized) engine.
    pub fn merge(parts: Vec<StateSnapshot>) -> StateSnapshot {
        let mut open: BTreeMap<u64, Vec<GroupAccumSnapshot>> = BTreeMap::new();
        let mut history: Vec<GroupHistorySnapshot> = Vec::new();
        let mut first_window = None;
        for part in parts {
            for (k, groups) in part.open {
                open.entry(k).or_default().extend(groups);
            }
            history.extend(part.history);
            first_window = match (first_window, part.first_window) {
                (Some(a), Some(b)) => Some(std::cmp::min::<u64>(a, b)),
                (a, b) => a.or(b),
            };
        }
        let open = open
            .into_iter()
            .map(|(k, mut groups)| {
                groups.sort_by_key(|g| key_tuple(&g.key_vals));
                (k, groups)
            })
            .collect();
        history.sort_by_key(|g| key_tuple(&g.key_vals));
        StateSnapshot {
            open,
            history,
            first_window,
        }
    }
}

/// State access for evaluating one group at the close of window `k` —
/// implements both the interpreter's name-based [`StateLookup`] and the
/// compiled plans' index-based [`StateSlots`].
pub struct StateView<'a> {
    pub maintainer: &'a StateMaintainer,
    pub group: &'a KeyTuple,
    pub current_window: u64,
}

impl StateLookup for StateView<'_> {
    fn state_value(&self, name: &str, back: usize, field: Option<&str>) -> Value {
        if name != self.maintainer.name() {
            return Value::Missing;
        }
        self.maintainer
            .lookup(self.group, self.current_window, back, field)
    }
}

impl StateSlots for StateView<'_> {
    fn field(&self, back: usize, field: usize) -> Value {
        self.maintainer
            .lookup_idx(self.group, self.current_window, back, field)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saql_lang::parse;

    fn block(src: &str) -> StateBlock {
        parse(src).unwrap().states.remove(0)
    }

    fn keys(vals: &[&str]) -> Vec<AttrValue> {
        vals.iter().map(AttrValue::str).collect()
    }

    fn atoms(vals: &[&str]) -> Vec<KeyAtom> {
        keys(vals).iter().map(KeyAtom::of).collect()
    }

    const QUERY2_STATE: &str = "proc p write ip i as evt #time(10 min)\nstate[3] ss { avg_amount := avg(evt.amount) } group by p\nreturn p";

    #[test]
    fn per_group_average_over_one_window() {
        let mut m = StateMaintainer::new(&block(QUERY2_STATE));
        for amount in [100i64, 200, 300] {
            m.observe(&[0], &atoms(&["sqlservr.exe"]), &[Value::int(amount)]);
        }
        m.observe(&[0], &atoms(&["chrome.exe"]), &[Value::int(50)]);

        let snaps = m.close(0);
        assert_eq!(snaps.len(), 2);
        let sql = snaps.iter().find(|g| g.label == "sqlservr.exe").unwrap();
        assert_eq!(sql.values[0].as_f64(), Some(200.0));
        let chrome = snaps.iter().find(|g| g.label == "chrome.exe").unwrap();
        assert_eq!(chrome.values[0].as_f64(), Some(50.0));
    }

    #[test]
    fn history_lookup_and_warmup() {
        let mut m = StateMaintainer::new(&block(QUERY2_STATE));
        let group = key_tuple(&keys(&["sqlservr.exe"]));
        for k in 0..4u64 {
            m.observe(
                &[k],
                &atoms(&["sqlservr.exe"]),
                &[Value::int(((k + 1) * 100) as i64)],
            );
            m.close(k);
        }
        // At window 3: ss[0]=400, ss[1]=300, ss[2]=200.
        assert_eq!(
            m.lookup(&group, 3, 0, Some("avg_amount")).as_f64(),
            Some(400.0)
        );
        assert_eq!(
            m.lookup(&group, 3, 1, Some("avg_amount")).as_f64(),
            Some(300.0)
        );
        assert_eq!(
            m.lookup(&group, 3, 2, Some("avg_amount")).as_f64(),
            Some(200.0)
        );
        // Beyond declared history: Missing (by name or by index).
        assert!(m.lookup(&group, 3, 3, Some("avg_amount")).is_missing());
        assert!(m.lookup_idx(&group, 3, 3, 0).is_missing());
        assert!(m.lookup_idx(&group, 3, 0, 9).is_missing(), "bad field idx");
        // Before the stream began (window 0 is first): ss[1] at window 0.
        assert!(m.lookup(&group, 0, 1, Some("avg_amount")).is_missing());
    }

    #[test]
    fn absent_window_reads_neutral_after_warmup() {
        let mut m = StateMaintainer::new(&block(QUERY2_STATE));
        let group = key_tuple(&keys(&["sqlservr.exe"]));
        m.observe(&[0], &atoms(&["sqlservr.exe"]), &[Value::int(500)]);
        m.close(0);
        // Window 1 passes with no events for the group; window 2 has one.
        m.observe(&[2], &atoms(&["sqlservr.exe"]), &[Value::int(900)]);
        m.close(2);
        // ss[1] (window 1) is neutral 0.0, not Missing.
        assert_eq!(
            m.lookup(&group, 2, 1, Some("avg_amount")).as_f64(),
            Some(0.0)
        );
        assert_eq!(
            m.lookup(&group, 2, 2, Some("avg_amount")).as_f64(),
            Some(500.0)
        );
    }

    #[test]
    fn set_aggregation() {
        let src = "proc p1 start proc p2 as evt #time(10 s)\nstate ss { set_proc := set(p2.exe_name) } group by p1\nreturn p1";
        let mut m = StateMaintainer::new(&block(src));
        for child in ["php.exe", "rotatelogs.exe", "php.exe"] {
            m.observe(&[0], &atoms(&["apache.exe"]), &[Value::str(child)]);
        }
        let snaps = m.close(0);
        assert_eq!(snaps.len(), 1);
        assert_eq!(snaps[0].values[0].to_string(), "{php.exe, rotatelogs.exe}");
    }

    #[test]
    fn tuple_identity_and_lazy_label() {
        let mut m = StateMaintainer::new(&block(QUERY2_STATE));
        // Identical values, one group; per-event path never built a label.
        m.observe(&[0], &atoms(&["x.exe"]), &[Value::int(1)]);
        m.observe(&[0], &atoms(&["x.exe"]), &[Value::int(3)]);
        m.observe(&[0], &atoms(&["y.exe"]), &[Value::int(5)]);
        let snaps = m.close(0);
        assert_eq!(snaps.len(), 2);
        // Sorted by label.
        assert_eq!(snaps[0].label, "x.exe");
        assert_eq!(snaps[1].label, "y.exe");
        assert_eq!(snaps[0].values[0].as_f64(), Some(2.0));
        // Repeated key values collapse in the label, like the legacy
        // double-spelling join did.
        assert_eq!(group_label(&keys(&["a", "a"])), "a");
        assert_eq!(group_label(&keys(&["a", "b"])), "a|b");
        assert_eq!(group_label(&[]), "<all>");
    }

    #[test]
    fn empty_group_by_uses_global_group() {
        let src = "proc p write ip i as evt #time(10 min)\nstate ss { n := count() }\nreturn p";
        let mut m = StateMaintainer::new(&block(src));
        for _ in 0..3 {
            m.observe(&[0], &[], &[Value::int(1)]);
        }
        let snaps = m.close(0);
        assert_eq!(snaps.len(), 1);
        assert_eq!(snaps[0].label, "<all>");
        assert_eq!(snaps[0].values[0].as_f64(), Some(3.0));
    }

    #[test]
    fn partition_of_is_stable_and_in_range() {
        for n in 1..=8usize {
            for name in ["a.exe", "b.exe", "sqlservr.exe", "x", "y", "z"] {
                let a = atoms(&[name]);
                let owner = partition_of(&a, n);
                assert!(owner < n);
                assert_eq!(owner, partition_of(&a, n), "deterministic");
            }
        }
        // The empty tuple (global group) routes somewhere valid too.
        assert_eq!(partition_of(&[], 1), 0);
        assert!(partition_of(&[], 4) < 4);
        // n = 0 clamps rather than dividing by zero.
        assert_eq!(partition_of(&atoms(&["a"]), 0), 0);
        // Across many shards the populations spread: at least two owners
        // appear over a modest key set.
        let owners: std::collections::HashSet<usize> = (0..64)
            .map(|k| partition_of(&[KeyAtom::Int(k)], 8))
            .collect();
        assert!(owners.len() > 1, "hash must actually spread groups");
    }

    #[test]
    fn snapshot_split_merge_roundtrips_canonical_form() {
        let mut m = StateMaintainer::new(&block(QUERY2_STATE));
        // A few closed windows of history plus open state across two
        // windows, spread over enough groups that every part is non-empty.
        for k in 0..3u64 {
            for g in 0..16i64 {
                let name = format!("p{g}.exe");
                m.observe(&[k], &atoms(&[name.as_str()]), &[Value::int(g * 10 + k as i64)]);
            }
            m.close(k);
        }
        for g in 0..16i64 {
            let name = format!("p{g}.exe");
            m.observe(&[3, 4], &atoms(&[name.as_str()]), &[Value::int(g)]);
        }
        let canonical = m.snapshot();
        for n in [1usize, 2, 3, 8] {
            let parts = canonical.split(n);
            assert_eq!(parts.len(), n);
            // Disjoint: each open group / history row appears exactly once,
            // on the shard the routing hash names.
            for (idx, part) in parts.iter().enumerate() {
                for (_, groups) in &part.open {
                    assert!(!groups.is_empty(), "empty window rows are dropped");
                    for g in groups {
                        assert_eq!(partition_of(&key_tuple(&g.key_vals), n), idx);
                    }
                }
                for g in &part.history {
                    assert_eq!(partition_of(&key_tuple(&g.key_vals), n), idx);
                }
                assert_eq!(part.first_window, canonical.first_window);
            }
            let merged = StateSnapshot::merge(parts);
            assert_eq!(format!("{merged:?}"), format!("{canonical:?}"));
        }
        // Merging nothing yields the empty snapshot.
        let empty = StateSnapshot::merge(Vec::new());
        assert!(empty.open.is_empty() && empty.history.is_empty());
        assert_eq!(empty.first_window, None);
    }

    #[test]
    fn state_view_implements_both_lookups() {
        let mut m = StateMaintainer::new(&block(QUERY2_STATE));
        m.observe(&[0], &atoms(&["x.exe"]), &[Value::int(42)]);
        m.close(0);
        let group = key_tuple(&keys(&["x.exe"]));
        let view = StateView {
            maintainer: &m,
            group: &group,
            current_window: 0,
        };
        assert_eq!(
            view.state_value("ss", 0, Some("avg_amount")).as_f64(),
            Some(42.0)
        );
        assert!(view
            .state_value("other", 0, Some("avg_amount"))
            .is_missing());
        assert_eq!(StateSlots::field(&view, 0, 0).as_f64(), Some(42.0));
    }
}
