//! End-to-end pipeline tests: a two-stage `|>` pipeline running inside one
//! engine must produce exactly the alerts of two hand-chained engines —
//! stage 1 in the first, its alert stream adapted by hand and fed to
//! stage 2 in the second.

use std::sync::Arc;

use saql_engine::alert::AlertOrigin;
use saql_engine::pipeline::{
    deregister_pipeline, register_pipeline, register_pipeline_scoped, AlertAdapter, PipelineWiring,
};
use saql_engine::{Alert, Engine, EngineConfig, EngineError, SessionStatus};
use saql_model::event::EventBuilder;
use saql_model::{NetworkInfo, ProcessInfo, Timestamp};
use saql_stream::merge::Lateness;
use saql_stream::source::{push_source, IterSource};
use saql_stream::SharedEvent;

/// Tiered detection: stage 1 summarizes write bursts per host in 10 s
/// windows; stage 2 counts how many distinct hosts burst inside 30 s and
/// fires when the anomaly is enterprise-wide.
const TIERED: &str = "\
proc p write ip i as evt #time(10 s)
state ss { writes := count() } group by evt.agentid
alert ss[0].writes >= 3
return evt.agentid as host, ss[0].writes as amount
|>
from #time(30 s)
state es { hosts := distinct_count(_in.agentid) }
alert es[0].hosts >= 2
return es[0].hosts as hosts";

/// The two stage sources exactly as `split_stages` produces them, for the
/// hand-chained reference run.
fn stage_sources() -> (String, String) {
    let stages = saql_lang::split_stages("tiered", TIERED).expect("pipeline splits");
    assert_eq!(stages.len(), 2);
    (stages[0].source.clone(), stages[1].source.clone())
}

/// A burst trace: hosts web-1 and web-2 each write 4 times inside the
/// first 10 s window (both burst), web-3 writes once (quiet). A second
/// round 40 s later has only web-1 bursting (stage 2 must NOT fire).
fn trace() -> Vec<SharedEvent> {
    let mut events = Vec::new();
    let mut id = 0u64;
    let mut push = |host: &str, ts: u64| {
        id += 1;
        events.push(Arc::new(
            EventBuilder::new(id, host, ts)
                .subject(ProcessInfo::new(100, "worker", "svc"))
                .sends(NetworkInfo::new("10.0.0.1", 9999, "172.16.0.9", 443, "tcp"))
                .amount(1024)
                .build(),
        ));
    };
    for k in 0..4 {
        push("web-1", 1_000 + k * 2_000);
        push("web-2", 1_100 + k * 2_000);
    }
    push("web-3", 2_500);
    for k in 0..4 {
        push("web-1", 41_000 + k * 2_000);
    }
    push("web-2", 43_000);
    // Trailing quiet traffic moves the frontier so the 30 s correlation
    // window provably closes in-stream, not only at drain.
    push("web-3", 95_000);
    events
}

/// Salient alert identity, ignoring engine-local query ids.
fn key(a: &Alert) -> (String, u64, String, Vec<(String, String)>) {
    (
        a.query.clone(),
        a.ts.as_millis(),
        format!("{:?}", a.origin),
        a.rows.clone(),
    )
}

/// Run the pipeline inside one engine and return all alerts.
fn run_pipeline(config: EngineConfig) -> Vec<Alert> {
    let mut engine = Engine::new(config);
    register_pipeline(&mut engine, "tiered", TIERED).expect("registers");
    let mut session = engine.session();
    session.attach_with(IterSource::new("trace", trace()), Lateness::ArrivalOrder);
    let mut wiring = PipelineWiring::connect(&mut session).expect("wires");
    let mut alerts = Vec::new();
    loop {
        let round = session.pump_max(64);
        alerts.extend(round.alerts);
        let moved = wiring.transfer(&mut session);
        if round.events == 0 && moved == 0 && round.status != SessionStatus::Active {
            break;
        }
    }
    alerts.extend(wiring.finish_stages(&mut session));
    alerts.extend(session.drain());
    alerts
}

/// Hand-chain two engines: stage 1 alone in the first; its ordered alert
/// stream adapted (same adapter code) and fed to stage 2 in the second.
fn run_hand_chained(config: EngineConfig) -> Vec<Alert> {
    let (s1, s2) = stage_sources();
    // Engine 1: stage 1 only, fed the raw trace.
    let mut e1 = Engine::new(config);
    e1.register("tiered.s1", &s1).expect("stage 1 registers");
    let mut stage1 = Vec::new();
    for event in trace() {
        stage1.extend(e1.process(&event).expect("processes"));
    }
    stage1.extend(e1.finish());

    // Engine 2: stage 2, fed only the adapted alert stream. The upstream
    // must exist for `from query` to validate, so stage 1 rides along —
    // it never matches an adapted event, and with no raw traffic it never
    // alerts.
    let mut e2 = Engine::new(config);
    e2.register("tiered.s1", &s1).expect("upstream registers");
    let up = e2.find("tiered.s1").expect("registered");
    e2.register("tiered", &s2).expect("stage 2 registers");
    let mut adapter = AlertAdapter::new("tiered.s1", up);
    let mut out: Vec<Alert> = stage1.clone();
    for alert in &stage1 {
        let derived = adapter.adapt(alert);
        out.extend(e2.process(&derived).expect("processes"));
    }
    out.extend(e2.finish());
    out
}

#[test]
fn pipeline_matches_hand_chained_serial() {
    let config = EngineConfig::default();
    let piped = run_pipeline(config);
    let chained = run_hand_chained(config);

    let split = |alerts: &[Alert]| -> (Vec<_>, Vec<_>) {
        (
            alerts
                .iter()
                .filter(|a| a.query == "tiered.s1")
                .map(key)
                .collect(),
            alerts
                .iter()
                .filter(|a| a.query == "tiered")
                .map(key)
                .collect(),
        )
    };
    let (p1, p2) = split(&piped);
    let (c1, c2) = split(&chained);
    assert!(!p1.is_empty(), "stage 1 must fire on the burst trace");
    assert!(!p2.is_empty(), "stage 2 must fire on the correlated burst");
    assert_eq!(p1, c1, "stage 1 alert stream diverged");
    assert_eq!(p2, c2, "stage 2 alert stream diverged");
    // The second burst round involves one host only: stage 2 fired for
    // the first round alone.
    assert_eq!(p2.len(), 1);
    assert!(p2[0].3.iter().any(|(l, v)| l == "hosts" && v == "2"));
}

#[test]
fn pipeline_matches_hand_chained_parallel() {
    for workers in [1usize, 2, 4, 8] {
        let par = EngineConfig {
            workers,
            ..Default::default()
        };
        let mut piped: Vec<_> = run_pipeline(par).iter().map(key).collect();
        let mut chained: Vec<_> = run_hand_chained(EngineConfig::default())
            .iter()
            .map(key)
            .collect();
        piped.sort();
        chained.sort();
        assert_eq!(
            piped, chained,
            "parallel ({workers} workers) pipeline diverged from the serial hand-chained run"
        );
    }
}

#[test]
fn stage2_windows_close_in_stream_via_punctuation() {
    // Without end-of-stream flushes, the correlation window must still
    // close: the trailing quiet event advances the frontier past the 30 s
    // window, and the punctuation carries that time into stage 2.
    let mut engine = Engine::new(EngineConfig::default());
    register_pipeline(&mut engine, "tiered", TIERED).expect("registers");
    let mut session = engine.session();
    session.attach_with(IterSource::new("trace", trace()), Lateness::ArrivalOrder);
    let mut wiring = PipelineWiring::connect(&mut session).expect("wires");
    let mut stage2_before_drain = 0;
    loop {
        let round = session.pump_max(64);
        stage2_before_drain += round.alerts.iter().filter(|a| a.query == "tiered").count();
        let moved = wiring.transfer(&mut session);
        if round.events == 0 && moved == 0 && round.status != SessionStatus::Active {
            break;
        }
    }
    assert!(
        stage2_before_drain >= 1,
        "stage 2 should alert while the stream is still flowing"
    );
}

#[test]
fn advance_watermark_closes_windows_under_a_silent_upstream() {
    // A hand-wired topology whose upstream has gone quiet: nothing moves
    // the derived channel, so stage 2's open window would wait forever.
    // `AlertAdapter::advance_watermark` is the surfaced fix — it raises
    // the channel watermark (so the quiet channel never gates the merge)
    // and punctuates, carrying downstream time forward without an alert.
    let (s1, s2) = stage_sources();
    let mut engine = Engine::new(EngineConfig::default());
    engine
        .register("tiered.s1", &s1)
        .expect("upstream registers");
    let up = engine.find("tiered.s1").expect("registered");
    engine.register("tiered", &s2).expect("stage 2 registers");
    let mut session = engine.session();
    let (push, source) = push_source("pipe:tiered.s1", 64);
    session.attach_with(source, Lateness::ArrivalOrder);
    let mut adapter = AlertAdapter::new("tiered.s1", up);

    // Two distinct hosts burst inside stage 2's first 30 s window.
    for (host, ts) in [("web-1", 9_000u64), ("web-2", 11_000)] {
        let alert = Alert {
            query: "tiered.s1".into(),
            query_id: up,
            ts: Timestamp::from_millis(ts),
            origin: AlertOrigin::Window {
                start: Timestamp::from_millis(0),
                end: Timestamp::from_millis(ts),
                group: host.into(),
            },
            rows: vec![("host".into(), host.into()), ("amount".into(), "4".into())],
        };
        assert!(push.push(adapter.adapt(&alert)));
    }
    let mut alerts = Vec::new();
    loop {
        let round = session.pump();
        alerts.extend(round.alerts);
        if round.events == 0 {
            break;
        }
    }
    assert!(
        alerts.is_empty(),
        "the 30 s window cannot close while the upstream is silent"
    );

    assert!(adapter.advance_watermark(&push, Timestamp::from_millis(60_000)));
    loop {
        let round = session.pump();
        alerts.extend(round.alerts);
        if round.events == 0 {
            break;
        }
    }
    let stage2: Vec<_> = alerts.iter().filter(|a| a.query == "tiered").collect();
    assert_eq!(stage2.len(), 1, "the punctuation alone closed the window");
    assert!(stage2[0].rows.iter().any(|(l, v)| l == "hosts" && v == "2"));
}

/// Ordered per-stage alert keys: loss, duplication, and reordering within
/// a stage all show up as inequality.
fn per_stage(
    alerts: &[Alert],
) -> (
    Vec<impl Eq + std::fmt::Debug>,
    Vec<impl Eq + std::fmt::Debug>,
) {
    (
        alerts
            .iter()
            .filter(|a| a.query == "tiered.s1")
            .map(key)
            .collect(),
        alerts
            .iter()
            .filter(|a| a.query == "tiered")
            .map(key)
            .collect(),
    )
}

#[test]
fn pipeline_survives_checkpoint_crash_and_resume() {
    let uninterrupted = run_pipeline(EngineConfig::default());

    // Interrupted run: feed the first burst round only, checkpoint with
    // stage 1's window still OPEN (frontier 7.1 s < the 10 s close), then
    // drop everything — the "crash" — and resume into a fresh engine.
    let events = trace();
    let cut = 9;
    let mut alerts: Vec<Alert> = Vec::new();
    let checkpoint = {
        let mut engine = Engine::new(EngineConfig::default());
        register_pipeline(&mut engine, "tiered", TIERED).expect("registers");
        let mut session = engine.session();
        session.attach_with(
            IterSource::new("trace", events[..cut].to_vec()),
            Lateness::ArrivalOrder,
        );
        let mut wiring = PipelineWiring::connect(&mut session).expect("wires");
        loop {
            let round = session.pump_max(4);
            alerts.extend(round.alerts);
            let moved = wiring.transfer(&mut session);
            if round.events == 0 && moved == 0 && round.status != SessionStatus::Active {
                break;
            }
        }
        let (ck, more) = wiring.checkpoint(&mut session).expect("checkpoints");
        alerts.extend(more);
        assert_eq!(
            ck.offset, cut as u64,
            "checkpoint offset counts base events only, not derived ones"
        );
        assert!(!ck.adapters.is_empty(), "adapter positions are stamped");
        // Through the wire format, as a real restart would read it back.
        saql_engine::Checkpoint::decode(ck.encode()).expect("roundtrips")
    };

    let mut engine =
        Engine::resume_from(checkpoint.clone(), EngineConfig::default()).expect("resumes");
    let mut session = engine.session();
    session.resume_at(&checkpoint);
    session.attach_with(
        IterSource::new("trace", events[checkpoint.offset as usize..].to_vec()),
        Lateness::ArrivalOrder,
    );
    let mut wiring =
        PipelineWiring::connect_with(&mut session, &checkpoint.adapters).expect("rewires");
    loop {
        let round = session.pump_max(4);
        alerts.extend(round.alerts);
        let moved = wiring.transfer(&mut session);
        if round.events == 0 && moved == 0 && round.status != SessionStatus::Active {
            break;
        }
    }
    alerts.extend(wiring.finish_stages(&mut session));
    alerts.extend(session.drain());

    let (r1, r2) = per_stage(&alerts);
    let (u1, u2) = per_stage(&uninterrupted);
    assert_eq!(
        r1, u1,
        "stage 1 lost or duplicated alerts across the resume"
    );
    assert_eq!(
        r2, u2,
        "stage 2 lost or duplicated alerts across the resume"
    );
    assert_eq!(r2.len(), 1, "the enterprise-wide alert fires exactly once");
}

#[test]
fn dangling_from_query_is_rejected_with_span() {
    let mut engine = Engine::new(EngineConfig::default());
    let err = engine
        .register(
            "orphan",
            "from query ghost #time(10 s)\nstate ss { n := count() }\nalert ss[0].n > 0\nreturn ss[0].n as n",
        )
        .expect_err("dangling upstream must be rejected");
    let msg = err.to_string();
    assert!(msg.contains("ghost"), "names the missing upstream: {msg}");
}

#[test]
fn deregistering_a_live_upstream_is_refused() {
    let mut engine = Engine::new(EngineConfig::default());
    let stages = register_pipeline(&mut engine, "tiered", TIERED).expect("registers");
    let (up_id, down_id) = (stages[0].1, stages[1].1);
    match engine.deregister(up_id) {
        Err(EngineError::PipelineDependents { query, dependents }) => {
            assert_eq!(query, "tiered.s1");
            assert_eq!(dependents, vec!["tiered".to_string()]);
        }
        other => panic!("expected PipelineDependents, got {other:?}"),
    }
    // Dependents first, then the upstream: both succeed.
    engine.deregister(down_id).expect("dependent deregisters");
    engine.deregister(up_id).expect("then the upstream");
}

#[test]
fn cyclic_stage_batch_is_rejected() {
    let engine = Engine::new(EngineConfig::default());
    // Two stages naming each other: a |> chain cannot express this, but
    // explicit `from query` clauses can try.
    let a = "from query \"b\" #time(10 s)\nstate ss { n := count() }\nalert ss[0].n > 0\nreturn ss[0].n as n";
    let b = "from query \"a\" #time(10 s)\nstate ss { n := count() }\nalert ss[0].n > 0\nreturn ss[0].n as n";
    let stages = vec![
        saql_lang::Stage {
            name: "a".into(),
            source: a.into(),
            input: Some(("b".into(), Default::default())),
        },
        saql_lang::Stage {
            name: "b".into(),
            source: b.into(),
            input: Some(("a".into(), Default::default())),
        },
    ];
    let err = saql_engine::pipeline::validate_stages(&stages, &engine).expect_err("cycle");
    assert!(err.to_string().contains("cycle"), "{err}");
    // And a failed batch leaves the engine untouched.
    assert!(engine.query_names().is_empty());
}

/// Stage 1 of [`TIERED`] as a standalone upstream query.
const BURST: &str = "\
proc p write ip i as evt #time(10 s)
state ss { writes := count() } group by evt.agentid
alert ss[0].writes >= 3
return evt.agentid as host, ss[0].writes as amount";

/// A correlation stage consuming `upstream`'s alert stream explicitly.
fn correlation(upstream: &str) -> String {
    format!(
        "from query \"{upstream}\" #time(30 s)\n\
         state es {{ hosts := distinct_count(_in.agentid) }}\n\
         alert es[0].hosts >= 2\n\
         return es[0].hosts as hosts"
    )
}

#[test]
fn scoped_register_confines_explicit_refs_to_the_scope() {
    let mut engine = Engine::new(EngineConfig::default());
    register_pipeline_scoped(&mut engine, "acme/burst", BURST, "acme/")
        .expect("upstream registers");

    // A bare reference resolves under the caller's scope, and the stored
    // stage source is rewritten so recompiles resolve identically.
    let stages = register_pipeline_scoped(&mut engine, "acme/corr", &correlation("burst"), "acme/")
        .expect("bare in-scope reference resolves");
    assert_eq!(stages.len(), 1);
    assert!(
        stages[0].0.source.contains("from query \"acme/burst\""),
        "stage source is rewritten to the scoped name: {}",
        stages[0].0.source
    );
    let down = engine.find("acme/corr").expect("registered");
    assert_eq!(engine.input_of(down), Some("acme/burst"));

    // A reference spelling another scope's prefixed name is rejected, so
    // no tenant can consume another tenant's alert stream.
    let err = register_pipeline_scoped(
        &mut engine,
        "evil/corr",
        &correlation("acme/burst"),
        "evil/",
    )
    .expect_err("cross-scope reference must be rejected");
    assert!(err.message.contains("tenant scope"), "{}", err.message);
    assert!(engine.find("evil/corr").is_none(), "nothing was registered");

    // A bare name with no in-scope target dangles instead of resolving
    // across scopes.
    let err = register_pipeline_scoped(&mut engine, "evil/corr", &correlation("burst"), "evil/")
        .expect_err("an out-of-scope upstream must not resolve");
    assert!(
        err.message.contains("references neither"),
        "{}",
        err.message
    );
}

#[test]
fn rewire_detects_same_count_pipeline_replacement() {
    let mut engine = Engine::new(EngineConfig::default());
    register_pipeline(&mut engine, "tiered", TIERED).expect("registers");
    let mut session = engine.session();
    let mut wiring = PipelineWiring::connect(&mut session).expect("wires");
    assert!(!wiring.stale(&mut session), "freshly wired");

    // Replace the pipeline under the same name between wiring checks: the
    // edge *count* is unchanged, but the upstream ids are new — the old
    // wiring still subscribes to the removed queries.
    let head = session.engine().find("tiered").expect("head is live");
    deregister_pipeline(session.engine(), head).expect("deregisters");
    register_pipeline(session.engine(), "tiered", TIERED).expect("re-registers");
    assert!(
        wiring.stale(&mut session),
        "a same-count replacement must be detected"
    );
    wiring.reconnect(&mut session).expect("rewires");
    assert!(
        !wiring.stale(&mut session),
        "fresh edges match the registry"
    );
}
